"""Tests for repro.memory.cache, including conflict attribution."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig


class TestCacheConfig:
    def test_defaults(self):
        config = CacheConfig()
        assert config.num_sets == 128
        assert config.words_per_line == 4

    def test_power_of_two_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=100)
        with pytest.raises(ConfigurationError):
            CacheConfig(line_size=10)
        with pytest.raises(ConfigurationError):
            CacheConfig(associativity=3)

    def test_line_larger_than_cache(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=16, line_size=32)

    def test_set_must_fit(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=32, line_size=16, associativity=4)

    def test_map_line_modulo(self):
        config = CacheConfig(size=128, line_size=16, associativity=1)
        assert config.map_line(0) == 0
        assert config.map_line(8) == 0
        assert config.map_line(9) == 1


class TestDirectMapped:
    def make(self):
        return Cache(CacheConfig(size=64, line_size=16, associativity=1))

    def test_first_touch_is_compulsory_miss(self):
        cache = self.make()
        assert cache.access_line(0, "A") is False
        assert cache.compulsory_misses == 1
        assert cache.mo_compulsory["A"] == 1

    def test_second_access_hits(self):
        cache = self.make()
        cache.access_line(0, "A")
        assert cache.access_line(0, "A") is True
        assert cache.hits == 1

    def test_conflict_attribution(self):
        cache = self.make()  # 4 sets; lines 0 and 4 share set 0
        cache.access_line(0, "A")   # compulsory
        cache.access_line(4, "B")   # compulsory, evicts A's line
        cache.access_line(0, "A")   # conflict miss caused by B
        assert cache.conflict_misses[("A", "B")] == 1
        assert cache.conflict_miss_count == 1

    def test_self_conflict(self):
        cache = self.make()
        cache.access_line(0, "A")
        cache.access_line(4, "A")  # evicts own line
        cache.access_line(0, "A")
        assert cache.conflict_misses[("A", "A")] == 1

    def test_different_sets_do_not_conflict(self):
        cache = self.make()
        cache.access_line(0, "A")
        cache.access_line(1, "B")
        cache.access_line(0, "A")
        assert cache.hits == 1
        assert cache.conflict_miss_count == 0

    def test_contains_line(self):
        cache = self.make()
        cache.access_line(3, "A")
        assert cache.contains_line(3)
        assert not cache.contains_line(7)


class TestSetAssociative:
    def test_two_way_holds_two_conflicting_lines(self):
        cache = Cache(CacheConfig(size=64, line_size=16, associativity=2))
        # 2 sets; lines 0 and 2 map to set 0
        cache.access_line(0, "A")
        cache.access_line(2, "B")
        assert cache.access_line(0, "A") is True
        assert cache.access_line(2, "B") is True

    def test_lru_eviction_order(self):
        cache = Cache(CacheConfig(size=64, line_size=16, associativity=2))
        cache.access_line(0, "A")
        cache.access_line(2, "B")
        cache.access_line(4, "C")  # evicts A (LRU)
        assert cache.access_line(2, "B") is True
        assert cache.access_line(0, "A") is False
        assert cache.conflict_misses[("A", "C")] == 1

    def test_fifo_policy(self):
        cache = Cache(CacheConfig(size=64, line_size=16,
                                  associativity=2, policy="fifo"))
        cache.access_line(0, "A")
        cache.access_line(2, "B")
        cache.access_line(0, "A")  # hit; FIFO age unchanged
        cache.access_line(4, "C")  # evicts A (first in)
        assert cache.access_line(0, "A") is False


class TestBookkeeping:
    def test_accesses_total(self):
        cache = Cache(CacheConfig(size=64, line_size=16, associativity=1))
        for line in (0, 0, 4, 0):
            cache.access_line(line, "A")
        assert cache.accesses == 4
        assert cache.hits + cache.misses == 4

    def test_reset_statistics_keeps_contents(self):
        cache = Cache(CacheConfig(size=64, line_size=16, associativity=1))
        cache.access_line(0, "A")
        cache.reset_statistics()
        assert cache.misses == 0
        assert cache.access_line(0, "A") is True

    def test_flush_clears_contents_and_history(self):
        cache = Cache(CacheConfig(size=64, line_size=16, associativity=1))
        cache.access_line(0, "A")
        cache.access_line(4, "B")
        cache.flush()
        cache.reset_statistics()
        assert cache.access_line(0, "A") is False
        # after the flush the old eviction history must not attribute
        # this compulsory-after-flush miss to B
        assert cache.conflict_misses == {}
