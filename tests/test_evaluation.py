"""Tests for the evaluation harness (sweep, fig4, fig5, table1)."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.fig4 import run_fig4
from repro.evaluation.fig5 import run_fig5
from repro.evaluation.reporting import microjoules, percent, series_table
from repro.evaluation.sweep import make_workbench, run_sweep
from repro.evaluation.table1 import run_table1

SCALE = 0.05  # keep harness tests fast


class TestReporting:
    def test_percent(self):
        assert percent(12.345) == "12.3"

    def test_microjoules(self):
        assert microjoules(1234.5) == "1.23"

    def test_series_table_validates_lengths(self):
        with pytest.raises(ValueError):
            series_table("t", "m", [1, 2], {"x": [1.0]})

    def test_series_table_renders(self):
        text = series_table("caption", "metric", [64, 128],
                            {"Energy": [99.0, 88.5]})
        assert "caption" in text
        assert "64B" in text and "128B" in text
        assert "88.5" in text


class TestSweep:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep("tiny", algorithms=("casa", "zzz"), scale=SCALE)

    def test_points_sorted_by_size(self):
        points = run_sweep("adpcm", sizes=(128, 64),
                           algorithms=("steinke",), scale=SCALE)
        assert [p.spm_size for p in points] == [64, 128]

    def test_improvement_helper(self):
        points = run_sweep("adpcm", sizes=(64,),
                           algorithms=("casa", "steinke"), scale=SCALE)
        point = points[0]
        improvement = point.improvement("casa", "steinke")
        assert improvement == pytest.approx(
            (1 - point.energy("casa") / point.energy("steinke")) * 100
        )

    def test_workbench_cached(self):
        a = make_workbench("tiny", 1.0, 0)
        b = make_workbench("tiny", 1.0, 0)
        assert a[1] is b[1]


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4("adpcm", sizes=(64, 128), scale=SCALE)

    def test_row_metrics_positive(self, fig4):
        for row in fig4.rows:
            assert row.energy_pct > 0
            assert row.icache_access_pct > 0

    def test_casa_uses_spm_less_and_cache_more(self, fig4):
        """Figure 4's headline observation."""
        for row in fig4.rows:
            assert row.spm_access_pct <= 100.0 + 1e-9
            assert row.icache_access_pct >= 100.0 - 1e-9

    def test_render(self, fig4):
        text = fig4.render()
        assert "Figure 4" in text
        assert "I-cache misses" in text

    def test_sizes(self, fig4):
        assert fig4.sizes == (64, 128)

    def test_average(self, fig4):
        avg = fig4.average_energy_improvement
        per_row = [100 - row.energy_pct for row in fig4.rows]
        assert avg == pytest.approx(sum(per_row) / len(per_row))


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5("adpcm", sizes=(64, 128), scale=SCALE)

    def test_rows_complete(self, fig5):
        assert len(fig5.rows) == 2
        for row in fig5.rows:
            assert row.casa.report.spm_accesses >= 0
            assert row.ross.report.lc_controller_checks > 0

    def test_render(self, fig5):
        assert "loop cache" in fig5.render()

    def test_scratchpad_beats_loop_cache_on_energy(self, fig5):
        # the paper's overall claim; holds for adpcm at these sizes
        assert fig5.average_energy_improvement > 0


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(benchmarks=("adpcm",), scale=SCALE)

    def test_structure(self, table1):
        block = table1.benchmark("adpcm")
        assert [row.size for row in block.rows] == [64, 128, 256]
        assert block.code_size > 0

    def test_improvements_consistent(self, table1):
        for row in table1.benchmark("adpcm").rows:
            expected = (1 - row.casa_energy / row.steinke_energy) * 100
            assert row.casa_vs_steinke == pytest.approx(expected)

    def test_render_contains_columns(self, table1):
        text = table1.render()
        assert "SP (CASA) uJ" in text
        assert "overall" in text

    def test_overall_averages(self, table1):
        rows = table1.benchmark("adpcm").rows
        expected = sum(r.casa_vs_steinke for r in rows) / len(rows)
        assert table1.overall_vs_steinke == pytest.approx(expected)

    def test_unknown_benchmark_lookup(self, table1):
        with pytest.raises(KeyError):
            table1.benchmark("nope")
