"""Structured JSONL run logs and the run-id correlation machinery."""

from __future__ import annotations

import json

import pytest

from repro.obs.logging import (
    RunLog,
    active_log_spec,
    active_run_id,
    active_run_log,
    install_from_spec,
    log_event,
    new_run_id,
    set_run_log,
)


@pytest.fixture
def run_log(tmp_path):
    """An installed RunLog, closed and restored afterwards."""
    log = RunLog(str(tmp_path / "run.log"), run_id="cafe00112233")
    previous = set_run_log(log)
    yield log
    set_run_log(previous)
    log.close()


def read_lines(log: RunLog) -> list[dict]:
    with open(log.path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestRunId:
    def test_new_run_id_shape(self):
        run_id = new_run_id()
        assert len(run_id) == 12
        int(run_id, 16)  # hex
        assert new_run_id() != run_id


class TestRunLog:
    def test_event_lines_carry_envelope(self, run_log):
        run_log.event("stage.computed", stage="trace", seconds=0.25)
        run_log.event("run.done")
        first, second = read_lines(run_log)
        assert first["event"] == "stage.computed"
        assert first["run_id"] == "cafe00112233"
        assert first["source"] == "main"
        assert first["stage"] == "trace"
        assert first["seconds"] == 0.25
        assert second["event"] == "run.done"
        assert second["ts"] >= first["ts"]

    def test_close_is_idempotent_and_reopens_on_event(self, run_log):
        run_log.event("a")
        run_log.close()
        run_log.close()
        run_log.event("b")
        assert [r["event"] for r in read_lines(run_log)] == ["a", "b"]

    def test_no_file_until_first_event(self, tmp_path):
        log = RunLog(str(tmp_path / "lazy.log"))
        assert not (tmp_path / "lazy.log").exists()
        log.event("x")
        log.close()
        assert (tmp_path / "lazy.log").exists()


class TestModuleHelpers:
    def test_disabled_log_event_is_noop(self):
        assert active_run_log() is None
        assert active_run_id() is None
        assert active_log_spec() is None
        log_event("ignored", detail=1)

    def test_active_helpers(self, run_log):
        assert active_run_log() is run_log
        assert active_run_id() == "cafe00112233"
        assert active_log_spec() == (run_log.path, "cafe00112233")
        log_event("hello", n=2)
        [record] = read_lines(run_log)
        assert record["event"] == "hello" and record["n"] == 2

    def test_install_from_spec_appends_as_worker(self, run_log):
        run_log.event("parent")
        spec = active_log_spec()
        previous = set_run_log(None)
        try:
            install_from_spec(spec)
            log_event("child")
            worker_log = active_run_log()
            assert worker_log is not None
            assert worker_log.source.startswith("worker-")
            worker_log.close()
        finally:
            set_run_log(previous)
        parent, child = read_lines(run_log)
        assert parent["source"] == "main"
        assert child["source"].startswith("worker-")
        assert child["run_id"] == parent["run_id"]

    def test_install_from_none_spec_is_noop(self):
        previous = set_run_log(None)
        try:
            install_from_spec(None)
            assert active_run_log() is None
        finally:
            set_run_log(previous)
