"""End-to-end tests of the serve daemon, batching and health."""

from __future__ import annotations

import asyncio
import http.client
import json
import time

import pytest

from repro.api import Session
from repro.serve.daemon import start_in_thread
from repro.serve.loadgen import run_load
from repro.serve.schema import EvaluateRequest, SimulateRequest
from repro.serve.service import AllocationService, ServiceConfig


def _service(**overrides) -> AllocationService:
    defaults = dict(max_delay_s=0.05)
    defaults.update(overrides)
    return AllocationService(ServiceConfig(**defaults))


def _get(port: int, path: str) -> tuple[int, bytes]:
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=30)
    try:
        connection.request("GET", path)
        reply = connection.getresponse()
        return reply.status, reply.read()
    finally:
        connection.close()


def _post(port: int, path: str, payload) -> tuple[int, dict]:
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=60)
    try:
        body = payload if isinstance(payload, (bytes, str)) \
            else json.dumps(payload)
        connection.request("POST", path, body=body,
                           headers={"Content-Type":
                                    "application/json"})
        reply = connection.getresponse()
        return reply.status, json.loads(reply.read())
    finally:
        connection.close()


class TestDaemonEndToEnd:
    """Concurrent mixed requests against an ephemeral-port daemon."""

    def test_mixed_load_has_no_failures(self):
        handle = start_in_thread(_service())
        try:
            report = run_load(handle.url, requests=12, workers=3,
                              workload="tiny", scale=0.2)
        finally:
            handle.stop()
        assert report.requests == 12
        assert report.failures == 0
        assert set(report.statuses) <= {"ok", "retried"}
        assert report.latency["count"] == 12
        assert report.rps > 0

    def test_verbs_round_trip_over_http(self):
        service = _service()
        handle = start_in_thread(service)
        try:
            status, data = _post(
                handle.port, "/v1/simulate",
                {"schema_version": 1, "workload": "tiny",
                 "scale": 0.2})
            assert status == 200 and data["status"] == "ok"
            assert data["report"]["kind"] == "simulation_report"

            status, data = _post(
                handle.port, "/v1/conflict_graph",
                {"schema_version": 1, "workload": "tiny",
                 "scale": 0.2})
            assert status == 200
            assert data["graph"]["kind"] == "conflict_graph"
            assert data["run_id"] == service.run_id

            status, data = _post(
                handle.port, "/v1/sweep",
                {"schema_version": 1, "workload": "tiny",
                 "scale": 0.2, "spm_sizes": [64, 128]})
            assert status == 200
            assert data["spm_sizes"] == [64, 128]
            assert len(data["results"]) == 2
        finally:
            handle.stop()

    def test_http_error_paths(self):
        handle = start_in_thread(_service())
        try:
            status, body = _get(handle.port, "/nowhere")
            assert status == 404
            status, _ = _get(handle.port, "/v1/simulate")
            assert status == 405
            status, data = _post(handle.port, "/v1/simulate",
                                 b"not json")
            assert status == 400
            assert data["kind"] == "error.response"
            assert data["error"]["type"] == "MalformedRequest"
            status, data = _post(handle.port, "/v1/simulate",
                                 {"workload": "tiny"})
            assert status == 400
            assert data["kind"] == "error.response"
            assert "schema_version" in data["error"]["message"]
            status, data = _post(
                handle.port, "/v1/simulate",
                {"schema_version": 1, "workload": "tiny",
                 "kind": "evaluate"})
            assert status == 400
            assert data["status"] == "failed"
        finally:
            handle.stop()

    def test_metrics_endpoint_exposes_serve_counters(self):
        handle = start_in_thread(_service())
        try:
            run_load(handle.url, requests=6, workers=2,
                     mix="simulate=1", workload="tiny", scale=0.2)
            status, body = _get(handle.port, "/metrics")
        finally:
            handle.stop()
        text = body.decode("utf-8")
        assert status == 200
        assert "repro_serve_requests_simulate_total" in text


class TestBatching:
    """Compatible concurrent requests coalesce into shared chunks."""

    def test_concurrent_evaluates_share_one_chunk(self):
        service = _service(max_delay_s=0.2)
        service.start()
        # The upper sizes fit the whole working set, so their layouts
        # are identical and the shared chunk re-uses the compiled
        # stream's memoised probe expansion across capacity steps.
        axis = (256, 512, 1024)

        async def fire():
            requests = [
                EvaluateRequest("tiny", scale=0.2, spm_size=size)
                for size in axis
            ]
            return await asyncio.gather(
                *[service.handle(request) for request in requests])

        try:
            responses = asyncio.run(fire())
        finally:
            service.stop()
        assert all(r.status == "ok" for r in responses)
        results = [Session.from_response(r) for r in responses]
        assert len({r.allocation.capacity for r in results}) == len(axis)
        # All requests joined one group: one flush, N-1 coalesced.
        assert service.registry.value("serve.batch.coalesced") == \
            len(axis) - 1
        assert service.registry.value("serve.batch.flushes") == 1
        # The shared chunk replayed one probe stream across the axis.
        assert service.registry.value("sim.kernel.stream_reuse") > 0

    def test_incompatible_requests_do_not_coalesce(self):
        service = _service(max_delay_s=0.2)
        service.start()

        async def fire():
            return await asyncio.gather(
                service.handle(EvaluateRequest("tiny", scale=0.2,
                                               spm_size=64)),
                service.handle(EvaluateRequest(
                    "tiny", scale=0.2, spm_size=64,
                    algorithm="steinke")),
            )

        try:
            responses = asyncio.run(fire())
        finally:
            service.stop()
        assert all(r.status == "ok" for r in responses)
        assert service.registry.value("serve.batch.coalesced") == 0


class TestResilience:
    """Fault-injected solves come back degraded-but-valid."""

    def test_injected_fault_yields_valid_response(self):
        service = _service(fault_spec="worker.exec:error@nth=1")
        service.start()
        try:
            response = asyncio.run(service.handle(
                EvaluateRequest("tiny", scale=0.2, spm_size=64)))
        finally:
            service.stop()
        assert response.status in ("retried", "degraded")
        assert response.attempts >= 2
        result = Session.from_response(response)
        assert result.energy.total > 0

    def test_bad_workload_becomes_error_response(self):
        service = _service()
        service.start()
        try:
            response = asyncio.run(service.handle(
                SimulateRequest("no-such-workload")))
        finally:
            service.stop()
        assert response.status == "failed"
        assert response.error is not None
        assert service.registry.value("serve.requests.failed") == 1


class TestHealth:
    """``/healthz`` flips to 503 while a worker is stalled."""

    def test_healthz_flips_on_stalled_worker(self):
        service = _service(stall_timeout=0.05)
        handle = start_in_thread(service)
        try:
            status, body = _get(handle.port, "/healthz")
            assert status == 200
            assert json.loads(body)["healthy"] is True

            service.bus.unit_started("wedged-solve")
            time.sleep(0.12)
            # Probe briefly: a straggler thread from an earlier test
            # can momentarily clear the wedged unit via the global
            # progress sink before the stall becomes visible.
            deadline = time.monotonic() + 2.0
            while True:
                status, body = _get(handle.port, "/healthz")
                if status == 503 or time.monotonic() >= deadline:
                    break
                service.bus.unit_started("wedged-solve")
                time.sleep(0.12)
            assert status == 503
            assert json.loads(body)["healthy"] is False

            service.bus.unit_finished("wedged-solve", 0.12)
            status, _ = _get(handle.port, "/healthz")
            assert status == 200
        finally:
            handle.stop()


class TestTenantSharding:
    """Each tenant gets its own artifact-store shard."""

    def test_tenant_stores_are_distinct(self):
        service = _service()
        store_a = service.tenant_store("team-a")
        store_b = service.tenant_store("team-b")
        assert store_a is not store_b
        assert service.tenant_store("team-a") is store_a

    def test_disk_tenants_get_subdirectories(self, tmp_path):
        service = _service(store_backend="disk",
                           store_root=tmp_path)
        store = service.tenant_store("team-a")
        assert store.cache_dir == tmp_path / "team-a"

    def test_tenant_requests_fill_their_own_shard(self):
        service = _service()
        service.start()
        try:
            asyncio.run(service.handle(
                SimulateRequest("tiny", scale=0.2,
                                tenant="team-a")))
        finally:
            service.stop()
        filled, _ = service.tenant_store("team-a").memory_backend \
            .usage()
        assert filled > 0
        assert service.tenant_store("team-b").memory_backend \
            .usage() == (0, 0)


@pytest.mark.parametrize("verb", ["simulate", "allocate"])
def test_loadgen_single_verb_mixes(verb):
    handle = start_in_thread(_service())
    try:
        report = run_load(handle.url, requests=4, workers=2,
                          mix=f"{verb}=1", workload="tiny",
                          scale=0.2)
    finally:
        handle.stop()
    assert report.failures == 0
    assert report.requests == 4
