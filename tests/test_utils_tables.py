"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[1] == "| a  | bb |"
        assert "| 33 | 4  |" in lines
        # all rows share one width
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="caption")
        assert text.splitlines()[0] == "caption"

    def test_wide_cells_stretch_columns(self):
        text = format_table(["h"], [["wide-cell-content"]])
        assert "wide-cell-content" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_body(self):
        text = format_table(["a"], [])
        assert "| a |" in text

    def test_cells_stringified(self):
        text = format_table(["v"], [[3.5], [None]])
        assert "3.5" in text and "None" in text
