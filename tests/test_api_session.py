"""Tests for repro.api (the Session facade)."""

import pytest

from repro import Session, get_workload
from repro.api import EVALUATE_METHODS
from repro.core.allocation import Allocation
from repro.core.conflict_graph import ConflictGraph
from repro.errors import ConfigurationError
from repro.memory.stats import SimulationReport


@pytest.fixture(scope="module")
def session():
    return Session("tiny")


class TestVerbs:
    def test_simulate_returns_baseline_report(self, session):
        report = session.simulate()
        assert isinstance(report, SimulationReport)
        assert report.total_fetches > 0
        assert report.spm_accesses == 0

    def test_conflict_graph(self, session):
        graph = session.conflict_graph()
        assert isinstance(graph, ConflictGraph)
        assert graph.num_nodes > 0

    def test_allocate_returns_decision(self, session):
        decision = session.allocate("casa")
        assert isinstance(decision, Allocation)
        assert decision.algorithm == "casa"

    def test_evaluate_matches_workbench(self, session):
        result = session.evaluate("casa")
        expected = session.workbench.run_casa(session.spm_size)
        assert result.energy.total == expected.energy.total

    def test_evaluate_every_spm_method(self, session):
        baseline = session.evaluate("baseline").energy.total
        for method in ("casa", "steinke", "greedy", "anneal"):
            result = session.evaluate(method)
            assert 0 < result.energy.total <= baseline

    def test_evaluate_ross_accepts_options(self, session):
        result = session.evaluate("ross", max_regions=2)
        assert result.allocation.algorithm == "ross"

    def test_unknown_method_raises(self, session):
        with pytest.raises(ConfigurationError, match="choose from"):
            session.evaluate("magic")
        assert "casa" in EVALUATE_METHODS


class TestDefaults:
    def test_spm_size_defaults_to_workload_smallest(self, session):
        workload = get_workload("tiny")
        assert session.spm_size == min(workload.spm_sizes)

    def test_explicit_spm_size_wins(self):
        session = Session("tiny", spm_size=128)
        assert session.spm_size == 128
        result = session.evaluate("casa")
        assert result.allocation.capacity == 128

    def test_per_call_size_override(self, session):
        result = session.evaluate("casa", spm_size=128)
        assert result.allocation.capacity == 128

    def test_repr_names_the_workload(self, session):
        assert "tiny" in repr(session)


class TestBackends:
    def test_vector_session_matches_reference(self):
        reference = Session("tiny", backend="reference")
        vector = Session("tiny", backend="vector")
        assert vector.evaluate("casa").energy.total == \
            reference.evaluate("casa").energy.total
        ref_report = reference.simulate()
        vec_report = vector.simulate()
        assert vec_report.mo_stats == ref_report.mo_stats

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            Session("tiny", backend="warp").simulate()


class TestRawProgram:
    def test_program_session(self):
        workload = get_workload("tiny")
        session = Session(workload.program, workload.cache, 64)
        result = session.evaluate("casa")
        assert result.energy.total > 0

    def test_program_session_without_size_raises(self):
        workload = get_workload("tiny")
        session = Session(workload.program, workload.cache)
        with pytest.raises(ConfigurationError, match="spm_size"):
            session.evaluate("casa")

    def test_program_session_simulate_needs_no_size(self):
        workload = get_workload("tiny")
        session = Session(workload.program, workload.cache)
        assert session.simulate().total_fetches > 0
