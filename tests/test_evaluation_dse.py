"""Tests for the area model and design-space exploration."""

import pytest

from repro.energy.area import (
    cache_area,
    hierarchy_area,
    scratchpad_area,
)
from repro.errors import ConfigurationError
from repro.evaluation.dse import (
    explore,
    render_design_points,
)
from repro.memory.cache import CacheConfig


class TestAreaModel:
    def test_scratchpad_smaller_than_cache_same_capacity(self):
        """Banakar's relation: no tags, no comparators, no miss logic."""
        for size in (256, 1024, 4096):
            cache = CacheConfig(size=size, line_size=16,
                                associativity=1)
            assert scratchpad_area(size) < cache_area(cache)

    def test_area_monotone_in_size(self):
        areas = [
            cache_area(CacheConfig(size=s, line_size=16,
                                   associativity=1))
            for s in (128, 256, 512, 1024)
        ]
        assert areas == sorted(areas)

    def test_associativity_costs_comparators(self):
        dm = cache_area(CacheConfig(size=1024, line_size=16,
                                    associativity=1))
        two_way = cache_area(CacheConfig(size=1024, line_size=16,
                                         associativity=2))
        assert two_way > dm

    def test_hierarchy_area_sums(self):
        cache = CacheConfig(size=512, line_size=16, associativity=1)
        assert hierarchy_area(cache, 256) == pytest.approx(
            cache_area(cache) + scratchpad_area(256)
        )
        assert hierarchy_area(None, 256) == pytest.approx(
            scratchpad_area(256)
        )

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            scratchpad_area(0)


class TestExplore:
    def test_budget_respected(self):
        points = explore("adpcm", area_budget=25_000, scale=0.05)
        for point in points:
            assert point.area <= 25_000

    def test_sorted_by_energy(self):
        points = explore("adpcm", area_budget=25_000, scale=0.05)
        energies = [p.energy for p in points]
        assert energies == sorted(energies)

    def test_infeasible_budget(self):
        with pytest.raises(ConfigurationError):
            explore("adpcm", area_budget=10.0, scale=0.05)

    def test_spm_zero_points_included(self):
        points = explore("adpcm", area_budget=40_000, scale=0.05)
        assert any(p.spm_size == 0 for p in points)
        assert any(p.spm_size > 0 for p in points)

    def test_mixed_split_beats_pure_cache_on_thrashy_workload(self):
        """adpcm thrashes small caches: spending part of the budget on
        a CASA-managed scratchpad must beat the cache-only point."""
        points = explore("adpcm", area_budget=30_000, scale=0.1)
        best = points[0]
        best_pure_cache = min(
            (p for p in points if p.spm_size == 0),
            key=lambda p: p.energy,
        )
        assert best.spm_size > 0
        assert best.energy < best_pure_cache.energy

    def test_render(self):
        points = explore("adpcm", area_budget=25_000, scale=0.05)
        text = render_design_points(points, top=5)
        assert "area budget" in text
        assert text.count("\n") <= 10


class TestParetoFrontier:
    def test_frontier_properties(self):
        from repro.evaluation.dse import DesignPoint, pareto_frontier
        points = [
            DesignPoint(128, 0, area=100, energy=50, misses=10),
            DesignPoint(256, 0, area=200, energy=40, misses=8),
            DesignPoint(128, 64, area=150, energy=60, misses=9),  # dominated
            DesignPoint(512, 0, area=400, energy=45, misses=7),   # dominated
        ]
        frontier = pareto_frontier(points)
        assert [p.area for p in frontier] == [100, 200]

    def test_frontier_of_real_exploration(self):
        from repro.evaluation.dse import explore, pareto_frontier
        points = explore("adpcm", area_budget=30_000, scale=0.05)
        frontier = pareto_frontier(points)
        assert frontier
        # sorted by area, energies strictly decreasing along it
        energies = [p.energy for p in frontier]
        assert energies == sorted(energies, reverse=True)

    def test_single_point(self):
        from repro.evaluation.dse import DesignPoint, pareto_frontier
        only = DesignPoint(128, 0, area=1, energy=1, misses=0)
        assert pareto_frontier([only]) == [only]
