"""Tests for conflict-aware code placement."""

import pytest

from repro.core.placement import ConflictAwarePlacer
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.traces.layout import LinkedImage


def simulate_order(bench, order):
    image = LinkedImage(bench.program, order)
    return simulate(
        image,
        HierarchyConfig(cache=bench.config.cache),
        bench.block_sequence,
    )


class TestPlacement:
    def test_empty_rejected(self):
        placer = ConflictAwarePlacer(CacheConfig(size=128))
        from repro.core.conflict_graph import ConflictGraph
        with pytest.raises(ConfigurationError):
            placer.place([], ConflictGraph())

    def test_order_is_permutation(self, adpcm_workbench):
        bench = adpcm_workbench
        placer = ConflictAwarePlacer(bench.config.cache)
        result = placer.place(bench.memory_objects,
                              bench.conflict_graph)
        assert sorted(mo.name for mo in result.order) == sorted(
            mo.name for mo in bench.memory_objects
        )

    def test_hot_objects_first_among_hot(self, adpcm_workbench):
        bench = adpcm_workbench
        placer = ConflictAwarePlacer(bench.config.cache)
        result = placer.place(bench.memory_objects,
                              bench.conflict_graph)
        graph = bench.conflict_graph
        hot_positions = [
            index for index, mo in enumerate(result.order)
            if graph.node(mo.name).fetches > 0
        ]
        # the hottest object is placed before most cold padding
        hottest = max(bench.memory_objects,
                      key=lambda mo: graph.node(mo.name).fetches)
        assert result.order.index(hottest) <= min(hot_positions) + 3

    def test_placed_layout_is_simulatable(self, adpcm_workbench):
        bench = adpcm_workbench
        placer = ConflictAwarePlacer(bench.config.cache)
        result = placer.place(bench.memory_objects,
                              bench.conflict_graph)
        report = simulate_order(bench, result.order)
        assert report.check_identities()
        assert report.total_fetches == \
            bench.baseline_report.total_fetches

    def test_placement_reduces_predicted_pressure(self, adpcm_workbench):
        """The greedy must not be worse than the original order under
        its own pressure metric."""
        bench = adpcm_workbench
        placer = ConflictAwarePlacer(bench.config.cache)
        placed = placer.place(bench.memory_objects,
                              bench.conflict_graph)

        from repro.analysis.setpressure import cache_set_pressure
        original_image = LinkedImage(bench.program,
                                     bench.memory_objects)
        original_pressure = sum(
            p.pressure for p in cache_set_pressure(
                original_image, bench.config.cache,
                bench.conflict_graph,
            )
        )
        assert placed.predicted_pressure <= original_pressure * 1.05

    def test_placement_helps_misses_on_thrashy_workload(
            self, adpcm_workbench):
        bench = adpcm_workbench
        placer = ConflictAwarePlacer(bench.config.cache)
        placed = placer.place(bench.memory_objects,
                              bench.conflict_graph)
        report = simulate_order(bench, placed.order)
        # placement alone should not dramatically worsen the cache
        baseline = bench.baseline_report.cache_misses
        assert report.cache_misses <= baseline * 1.2
