"""Edge-case and error-path tests across subsystems."""

import pytest

from repro.errors import (
    AllocationError,
    LayoutError,
    SimulationError,
    TraceError,
)
from repro.isa import make_alu, make_branch, make_jump, make_return
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import (
    HierarchyConfig,
    InstructionMemorySimulator,
)
from repro.program.basicblock import BasicBlock
from repro.program.behavior import FixedTrip
from repro.program.executor import execute_program
from repro.program.function import Function
from repro.program.program import Program
from repro.traces.layout import LinkedImage, Placement
from repro.traces.tracegen import (
    TraceGenConfig,
    fallthrough_chains,
    generate_traces,
)

from tests.conftest import make_loop_program


class TestTracegenEdges:
    def test_fallthrough_cycle_detected(self):
        # a -> b -> a via fallthrough is physically impossible
        blocks = [
            BasicBlock("f.a", [make_alu()], fallthrough="f.b"),
            BasicBlock("f.b", [make_alu()], fallthrough="f.a"),
            BasicBlock("f.c", [make_return()]),
        ]
        # Program-level validation allows it (it is a graph property);
        # trace generation must reject it.
        program = Program([Function("f", blocks)], entry="f")
        with pytest.raises(TraceError):
            fallthrough_chains(program)

    def test_every_block_covered_even_if_never_executed(self):
        program = make_loop_program(trip=2)
        execution = execute_program(program)
        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        covered = {
            fragment.block for mo in mos for fragment in mo.fragments
        }
        assert covered == {b.name for b in program.all_blocks()}


class TestLayoutEdges:
    def make_mos(self, program):
        execution = execute_program(program)
        return generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )

    def test_overlapping_regions_rejected(self):
        program = make_loop_program(trip=2)
        mos = self.make_mos(program)
        with pytest.raises(LayoutError):
            LinkedImage(
                program, mos,
                spm_resident={"T0"}, spm_size=1024,
                main_base=0, spm_base=16,  # inside the main image
            )

    def test_duplicate_mo_names_rejected(self):
        program = make_loop_program(trip=2)
        mos = self.make_mos(program)
        with pytest.raises(LayoutError):
            LinkedImage(program, mos + [mos[0]])

    def test_zero_spm_with_empty_resident_ok(self):
        program = make_loop_program(trip=2)
        mos = self.make_mos(program)
        image = LinkedImage(program, mos)
        assert image.spm_used == 0
        assert image.placement is Placement.COPY


class TestSimulatorEdges:
    def test_spm_segment_without_scratchpad(self):
        program = make_loop_program(trip=2)
        execution = execute_program(program)
        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        image = LinkedImage(program, mos, spm_resident={"T0"},
                            spm_size=1024)
        simulator = InstructionMemorySimulator(
            image,
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1)),
        )
        with pytest.raises(SimulationError):
            simulator.run(execution.block_sequence)

    def test_empty_sequence(self):
        program = make_loop_program(trip=2)
        execution = execute_program(program)
        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        image = LinkedImage(program, mos)
        simulator = InstructionMemorySimulator(
            image, HierarchyConfig(cache=CacheConfig(
                size=64, line_size=16, associativity=1)),
        )
        report = simulator.run([])
        assert report.total_fetches == 0

    def test_loop_regions_without_loop_cache_rejected(self):
        from repro.errors import ConfigurationError
        from repro.memory.loopcache import LoopRegion
        program = make_loop_program(trip=2)
        execution = execute_program(program)
        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        image = LinkedImage(program, mos)
        with pytest.raises(ConfigurationError):
            InstructionMemorySimulator(
                image,
                HierarchyConfig(cache=CacheConfig(
                    size=64, line_size=16, associativity=1)),
                loop_regions=[LoopRegion("r", 0, 16)],
            )


class TestSweepEdges:
    def test_improvement_with_zero_baseline_rejected(self):
        from repro.core.pipeline import ExperimentResult
        from repro.evaluation.sweep import SweepPoint
        from repro.errors import ConfigurationError

        class FakeEnergy:
            total = 0.0

        class FakeResult:
            energy = FakeEnergy()

        point = SweepPoint("w", 64, {"a": FakeResult(),
                                     "b": FakeResult()})
        with pytest.raises(ConfigurationError):
            point.improvement("a", "b")


class TestBranchTargetOutsideFunction:
    def test_cross_function_jump_rejected(self):
        from repro.errors import ConfigurationError
        f = Function("f", [
            BasicBlock("f.b0", [make_jump("g.b0")]),
        ])
        g = Function("g", [BasicBlock("g.b0", [make_return()])])
        with pytest.raises(ConfigurationError):
            Program([f, g], entry="f")
