"""Tests for repro.program.basicblock."""

import pytest

from repro.errors import ConfigurationError
from repro.isa import (
    make_alu,
    make_branch,
    make_call,
    make_jump,
    make_return,
)
from repro.program.basicblock import BasicBlock
from repro.program.behavior import FixedTrip


def alu_block(name="b", count=3, **kwargs):
    return BasicBlock(name=name, instructions=[make_alu()] * count,
                      **kwargs)


class TestValidation:
    def test_needs_name(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(name="", instructions=[make_return()])

    def test_needs_instructions(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(name="b", instructions=[], fallthrough="x")

    def test_control_flow_only_at_end(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(
                name="b",
                instructions=[make_jump("x"), make_alu()],
            )

    def test_jump_forbids_fallthrough(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(
                name="b",
                instructions=[make_jump("x")],
                fallthrough="y",
            )

    def test_return_forbids_fallthrough(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(
                name="b",
                instructions=[make_return()],
                fallthrough="y",
            )

    def test_fallthrough_required_without_terminator(self):
        with pytest.raises(ConfigurationError):
            alu_block()

    def test_branch_requires_behavior(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(
                name="b",
                instructions=[make_branch("t")],
                fallthrough="f",
            )

    def test_valid_branch_block(self):
        block = BasicBlock(
            name="b",
            instructions=[make_alu(), make_branch("t")],
            fallthrough="f",
            behavior=FixedTrip(3),
        )
        assert block.ends_with_branch


class TestQueries:
    def test_successors_of_branch(self):
        block = BasicBlock(
            name="b",
            instructions=[make_branch("taken")],
            fallthrough="ft",
            behavior=FixedTrip(2),
        )
        assert block.successors() == ["taken", "ft"]

    def test_successors_of_jump(self):
        block = BasicBlock(name="b", instructions=[make_jump("t")])
        assert block.successors() == ["t"]
        assert block.branch_target == "t"

    def test_successors_of_return(self):
        block = BasicBlock(name="b", instructions=[make_return()])
        assert block.successors() == []
        assert block.ends_with_return

    def test_call_properties(self):
        block = BasicBlock(
            name="b",
            instructions=[make_alu(), make_call("callee")],
            fallthrough="cont",
        )
        assert block.ends_with_call
        assert block.call_target == "callee"
        assert block.successors() == ["cont"]

    def test_size_and_count(self):
        block = alu_block(count=5, fallthrough="next")
        assert block.num_instructions == 5
        assert block.size == 20

    def test_str_mentions_fallthrough(self):
        block = alu_block(count=1, fallthrough="next")
        assert "next" in str(block)
