"""Digest semantics of the engine's content-addressed artifacts."""

from __future__ import annotations

from repro.engine.artifacts import (
    baseline_digest,
    canonical,
    execution_digest,
    fingerprint_program,
    graph_digest,
    result_digest,
    trace_digest,
    workbench_digest,
)
from repro.memory.cache import CacheConfig
from repro.traces.tracegen import TraceGenConfig
from repro.workloads.registry import get_workload

CACHE = CacheConfig(size=128, line_size=16, associativity=1)
TRACEGEN = TraceGenConfig(line_size=16, max_trace_size=64)


def test_program_fingerprint_stable_across_rebuilds():
    first = get_workload("tiny").program
    second = get_workload("tiny").program
    assert first is not second
    assert fingerprint_program(first) == fingerprint_program(second)


def test_fingerprint_sees_scale():
    base = get_workload("tiny", scale=1.0).program
    scaled = get_workload("tiny", scale=2.0).program
    assert fingerprint_program(base) != fingerprint_program(scaled)


def test_execution_digest_depends_on_seed():
    program = get_workload("tiny").program
    assert execution_digest(program, 0) == execution_digest(program, 0)
    assert execution_digest(program, 0) != execution_digest(program, 1)


def test_trace_digest_depends_on_tracegen():
    assert trace_digest("abc", TRACEGEN) == trace_digest("abc", TRACEGEN)
    other = TraceGenConfig(line_size=16, max_trace_size=128)
    assert trace_digest("abc", TRACEGEN) != trace_digest("abc", other)
    assert trace_digest("abc", TRACEGEN) != trace_digest("xyz", TRACEGEN)


def test_baseline_digest_depends_on_cache_geometry():
    base = baseline_digest("t", CACHE, 0, 0)
    assert base == baseline_digest("t", CACHE, 0, 0)
    wider = CacheConfig(size=128, line_size=16, associativity=2)
    assert base != baseline_digest("t", wider, 0, 0)
    assert base != baseline_digest("t", CACHE, 4096, 0)


def test_result_digest_depends_on_decision_inputs():
    graph = graph_digest("b")
    base = result_digest(graph, "casa", 128)
    assert base == result_digest(graph, "casa", 128)
    assert base != result_digest(graph, "steinke", 128)
    assert base != result_digest(graph, "casa", 256)
    assert base != result_digest(graph, "casa", 128,
                                 {"max_regions": 2})
    assert base == result_digest(graph, "casa", 128, None)


def test_workbench_digest_normalises_scale():
    one = workbench_digest("tiny", 1, 0, CACHE, TRACEGEN)
    one_f = workbench_digest("tiny", 1.0, 0, CACHE, TRACEGEN)
    half = workbench_digest("tiny", 0.5, 0, CACHE, TRACEGEN)
    assert one == one_f
    assert one != half


def test_canonical_handles_compound_values():
    reduced = canonical({"cache": CACHE, "sizes": {128, 64},
                         "scale": 1.0})
    assert reduced["cache"]["__class__"] == "CacheConfig"
    assert reduced["sizes"] == [64, 128]
    assert reduced["scale"] == "1.0"
