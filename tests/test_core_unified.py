"""Tests for unified code + data scratchpad allocation."""

import pytest

from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.unified import (
    UnifiedCasaAllocator,
    unified_steinke,
)
from repro.energy.model import EnergyModel
from repro.errors import SolverError

CODE_MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)
DATA_MODEL = EnergyModel(cache_hit=1.2, cache_miss=25.0, spm_access=0.5)


def make_graph(nodes, edges=()):
    graph = ConflictGraph()
    for name, fetches, size in nodes:
        graph.add_node(ConflictNode(name, fetches=fetches, size=size))
    for victim, evictor, weight in edges:
        graph.add_edge(victim, evictor, weight)
    return graph


def standard_graphs():
    code = make_graph(
        [("T0", 1000, 64), ("T1", 600, 64)],
        [("T0", "T1", 100), ("T1", "T0", 80)],
    )
    data = make_graph(
        [("table", 900, 64), ("buffer", 2000, 256)],
        [("table", "buffer", 50)],
    )
    return code, data


class TestUnifiedCasa:
    def test_name_collision_rejected(self):
        same = make_graph([("X", 10, 16)])
        other = make_graph([("X", 10, 16)])
        with pytest.raises(SolverError):
            UnifiedCasaAllocator().allocate(
                same, CODE_MODEL, other, DATA_MODEL, 64
            )

    def test_capacity_shared(self):
        code, data = standard_graphs()
        allocation = UnifiedCasaAllocator().allocate(
            code, CODE_MODEL, data, DATA_MODEL, 128
        )
        assert allocation.used_bytes <= 128
        total_selected = (len(allocation.code_resident)
                          + len(allocation.data_resident))
        assert total_selected >= 1

    def test_everything_fits(self):
        code, data = standard_graphs()
        allocation = UnifiedCasaAllocator().allocate(
            code, CODE_MODEL, data, DATA_MODEL, 4096
        )
        assert allocation.code_resident == {"T0", "T1"}
        assert allocation.data_resident == {"table", "buffer"}

    def test_zero_capacity(self):
        code, data = standard_graphs()
        allocation = UnifiedCasaAllocator().allocate(
            code, CODE_MODEL, data, DATA_MODEL, 0
        )
        assert not allocation.code_resident
        assert not allocation.data_resident

    def test_matches_separate_casa_when_capacity_split_optimal(self):
        """With disjoint energy structure, the unified optimum is at
        least as good as any fixed split of the capacity."""
        code, data = standard_graphs()
        unified = UnifiedCasaAllocator().allocate(
            code, CODE_MODEL, data, DATA_MODEL, 128
        )
        best_split = float("inf")
        for code_share in (0, 64, 128):
            code_alloc = CasaAllocator().allocate(
                code, code_share, CODE_MODEL
            )
            data_alloc = CasaAllocator().allocate(
                data, 128 - code_share, DATA_MODEL
            )
            assert code_alloc.predicted_energy is not None
            assert data_alloc.predicted_energy is not None
            best_split = min(
                best_split,
                code_alloc.predicted_energy
                + data_alloc.predicted_energy,
            )
        assert unified.predicted_energy <= best_split + 1e-6

    def test_empty_graphs(self):
        empty = ConflictGraph()
        allocation = UnifiedCasaAllocator().allocate(
            empty, CODE_MODEL, empty, DATA_MODEL, 128
        )
        assert allocation.used_bytes == 0


class TestUnifiedSteinke:
    def test_knapsack_over_both_kinds(self):
        code, data = standard_graphs()
        allocation = unified_steinke(
            code, CODE_MODEL, data, DATA_MODEL, 128
        )
        assert allocation.used_bytes <= 128
        chosen = allocation.code_resident | allocation.data_resident
        assert chosen  # something profitable fits

    def test_conflict_blindness(self):
        """Steinke picks by access count: the hot streaming buffer wins
        over the conflict-heavy table when both fit."""
        code = make_graph([("T0", 10, 64)])
        data = make_graph(
            [("hot", 5000, 64), ("thrasher", 100, 64)],
            [("thrasher", "hot", 10_000)],
        )
        allocation = unified_steinke(
            code, CODE_MODEL, data, DATA_MODEL, 64
        )
        assert allocation.data_resident == {"hot"}
