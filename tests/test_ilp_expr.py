"""Tests for repro.ilp.expr."""

import pytest

from repro.errors import SolverError
from repro.ilp.expr import LinExpr, Variable


def v(name="x", **kwargs):
    return Variable(name, **kwargs)


class TestVariable:
    def test_bounds_validated(self):
        with pytest.raises(SolverError):
            Variable("x", lower=2.0, upper=1.0)

    def test_binary_classification(self):
        assert Variable("b", 0, 1, is_integer=True).is_binary
        assert not Variable("i", 0, 5, is_integer=True).is_binary
        assert not Variable("c", 0, 1).is_binary

    def test_distinct_variables_not_equal_constraint(self):
        # __eq__ builds a constraint, so identity is via hash
        a, b = v("a"), v("b")
        assert hash(a) != hash(b)


class TestArithmetic:
    def test_add_variables(self):
        a, b = v("a"), v("b")
        expr = a + b
        assert expr.coefficient(a) == 1.0
        assert expr.coefficient(b) == 1.0

    def test_scale(self):
        a = v("a")
        expr = 3 * a
        assert expr.coefficient(a) == 3.0

    def test_combined_expression(self):
        a, b = v("a"), v("b")
        expr = 2 * a - 3 * b + 5
        assert expr.coefficient(a) == 2.0
        assert expr.coefficient(b) == -3.0
        assert expr.constant == 5.0

    def test_rsub(self):
        a = v("a")
        expr = 1 - a
        assert expr.coefficient(a) == -1.0
        assert expr.constant == 1.0

    def test_neg(self):
        a = v("a")
        expr = -(a + 2)
        assert expr.coefficient(a) == -1.0
        assert expr.constant == -2.0

    def test_sum_of_terms_merges(self):
        a = v("a")
        expr = a + a + a
        assert expr.coefficient(a) == 3.0

    def test_total(self):
        a, b = v("a"), v("b")
        expr = LinExpr.total([a, 2 * b, 7])
        assert expr.coefficient(a) == 1.0
        assert expr.coefficient(b) == 2.0
        assert expr.constant == 7.0

    def test_evaluate(self):
        a, b = v("a"), v("b")
        expr = 2 * a + b - 4
        assert expr.evaluate({a: 3.0, b: 1.0}) == pytest.approx(3.0)

    def test_copy_independent(self):
        a = v("a")
        expr = a + 1
        clone = expr.copy()
        clone.terms[a] = 99.0
        assert expr.coefficient(a) == 1.0

    def test_variables_listing_skips_zeros(self):
        a, b = v("a"), v("b")
        expr = a + b - b
        assert expr.variables == [a]

    def test_repr_readable(self):
        a = v("alpha")
        assert "alpha" in repr(2 * a + 1)
