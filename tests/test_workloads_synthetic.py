"""Property tests for the random program generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.program.executor import execute_program
from repro.workloads.synthetic import random_program


class TestRandomProgram:
    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_and_terminating(self, seed):
        program = random_program(seed, num_functions=3, max_depth=2)
        result = execute_program(program, seed=seed,
                                 max_steps=2_000_000)
        assert result.instruction_count >= 1

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_generation(self, seed):
        a = random_program(seed)
        b = random_program(seed)
        assert a.listing() == b.listing()

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_profile_consistency(self, seed):
        """Block executions equal incoming edge/call/entry transfers."""
        program = random_program(seed, num_functions=3, max_depth=2)
        result = execute_program(program, max_steps=2_000_000)
        profile = result.profile
        incoming = {name: 0 for name in
                    (b.name for b in program.all_blocks())}
        for (src, dst), count in profile.edge_counts.items():
            incoming[dst] += count
        for (caller, callee), count in profile.call_counts.items():
            incoming[program.function(callee).entry.name] += count
        # return transfers to continuations are edge-counted? no:
        # returns go back to the caller's continuation, which IS the
        # caller block's fallthrough edge... they are not edge-counted,
        # so reconstruct: continuation executions = call count.
        for (caller, callee), count in profile.call_counts.items():
            continuation = program.block(caller).fallthrough
            incoming[continuation] += count
        incoming[program.entry_block.name] += 1
        for name, count in profile.block_counts.items():
            assert incoming[name] == count, name

    def test_entry_function_is_f0(self):
        assert random_program(5).entry == "f0"

    def test_num_functions_respected(self):
        program = random_program(3, num_functions=5)
        assert len(program.functions) == 5
