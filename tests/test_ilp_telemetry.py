"""Solver convergence telemetry: trajectories, bounds, gaps, LP work."""

from __future__ import annotations

import pytest

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.model import (
    Model,
    Sense,
    SolveStatus,
    SolveTelemetry,
    relative_gap,
)
from repro.ilp.scipy_backend import LpRelaxationSolver
from repro.ilp.simplex import SimplexLpSolver
from repro.obs.metrics import MetricsRegistry, set_registry


def knapsack(n: int = 8, capacity: int = 11) -> Model:
    """A small fractional-at-the-root knapsack."""
    model = Model("knap", Sense.MAXIMIZE)
    variables = [model.add_binary(f"x{i}") for i in range(n)]
    weight = sum((3 * v for v in variables), start=0 * variables[0])
    model.add_constraint(weight <= capacity)
    model.set_objective(sum(
        ((i % 5 + 1) * v for i, v in enumerate(variables)),
        start=0 * variables[0],
    ))
    return model


class TestRelativeGap:
    def test_zero_when_bound_meets_objective(self):
        assert relative_gap(10.0, 10.0) == 0.0

    def test_scales_by_objective(self):
        assert relative_gap(100.0, 110.0) == pytest.approx(0.1)

    def test_none_inputs(self):
        assert relative_gap(None, 10.0) is None
        assert relative_gap(10.0, None) is None


class TestSolveTelemetry:
    def test_optimal_solve_records_trajectory(self):
        result = knapsack().solve(BranchAndBoundSolver())
        assert result.status is SolveStatus.OPTIMAL
        telemetry = result.telemetry
        assert isinstance(telemetry, SolveTelemetry)
        assert telemetry.nodes == result.nodes_explored
        assert telemetry.incumbent_updates >= 1
        assert telemetry.lp_iterations > 0
        assert telemetry.trajectory
        # The trajectory converges: the final point's bound equals the
        # proven optimum.
        _, incumbent, bound = telemetry.trajectory[-1]
        assert incumbent == pytest.approx(result.objective)
        assert bound == pytest.approx(result.objective)

    def test_optimal_gap_is_zero(self):
        result = knapsack().solve(BranchAndBoundSolver())
        assert result.best_bound == pytest.approx(result.objective)
        assert result.gap == pytest.approx(0.0)

    def test_node_limit_keeps_a_bound(self):
        result = knapsack(n=14, capacity=17).solve(
            BranchAndBoundSolver(max_nodes=2)
        )
        if result.status is SolveStatus.NODE_LIMIT:
            assert result.telemetry.nodes == result.nodes_explored
            assert result.best_bound is not None
            # An unproven maximisation bound sits at or above the
            # incumbent.
            assert result.best_bound >= result.objective - 1e-9

    def test_as_json_is_plain_data(self):
        result = knapsack().solve(BranchAndBoundSolver())
        payload = result.telemetry.as_json()
        assert payload["nodes"] == result.nodes_explored
        assert isinstance(payload["trajectory"], list)
        assert all(isinstance(point, list)
                   for point in payload["trajectory"])

    def test_trajectory_stays_bounded(self):
        telemetry = SolveTelemetry()
        # Mirror the recorder's stride-doubling contract: the solver
        # thins the list in place whenever it reaches the cap.
        from repro.ilp.branch_and_bound import TRAJECTORY_LIMIT
        assert TRAJECTORY_LIMIT >= 2
        assert telemetry.trajectory == []


class TestLpIterationCounts:
    def test_simplex_reports_pivots(self):
        model = knapsack()
        solution = SimplexLpSolver(model).solve()
        assert solution.iterations > 0

    def test_scipy_backend_reports_iterations(self):
        model = knapsack()
        solution = LpRelaxationSolver(model).solve()
        assert solution.iterations >= 0

    def test_metrics_count_lp_work(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            knapsack().solve(BranchAndBoundSolver())
        finally:
            set_registry(previous)
        assert registry.value("ilp.bb.nodes") >= 1
        assert registry.value("ilp.bb.incumbents") >= 1
        assert registry.value("ilp.lp_iterations") > 0
        assert registry.value("ilp.solves") == 1
