"""Direct unit tests for InstructionMemorySimulator.run_overlay."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import (
    HierarchyConfig,
    InstructionMemorySimulator,
)
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage, Placement
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.workloads.builder import (
    Call,
    Loop,
    ProgramBuilder,
    Seq,
    Straight,
)


def two_phase_program():
    builder = ProgramBuilder("p")
    builder.add_function("main", Seq([
        Straight(2),
        Loop(trip=20, body=Call("a")),
        Straight(2),
        Loop(trip=20, body=Call("b")),
        Straight(2),
    ]))
    builder.add_function("a", Straight(10))
    builder.add_function("b", Straight(10))
    return builder.build()


@pytest.fixture
def setup():
    program = two_phase_program()
    execution = execute_program(program)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=64),
    )
    from repro.core.phases import detect_phases
    partition = detect_phases(program)
    return program, execution, mos, partition


def make_images(program, mos, residents_by_phase, spm_size):
    plans = {}
    sizes = {}
    for phase, resident in residents_by_phase.items():
        image = LinkedImage(program, mos, spm_resident=resident,
                            spm_size=spm_size,
                            placement=Placement.COPY)
        plans[phase] = image.all_plans()
        for name in resident:
            sizes[name] = image.memory_object(name).unpadded_size
    return plans, sizes


class TestRunOverlay:
    def test_copy_words_counted_per_transition(self, setup):
        program, execution, mos, partition = setup
        # find the objects holding functions a and b
        home = {}
        for mo in mos:
            for fragment in mo.fragments:
                home.setdefault(fragment.block.split(".")[0],
                                set()).add(mo.name)
        a_mos = frozenset(home["a"])
        b_mos = frozenset(home["b"])
        residents = {
            phase: (a_mos if phase <= 2 else b_mos)
            for phase in range(partition.num_phases)
        }
        plans, sizes = make_images(program, mos, residents, 256)

        simulator = InstructionMemorySimulator(
            LinkedImage(program, mos),
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1),
                            spm_size=256),
        )
        report = simulator.run_overlay(
            execution.block_sequence,
            partition.block_phase,
            plans,
            residents,
            sizes,
        )
        # b's objects are copied in exactly once (phase 3 entry);
        # the initial fill of a is free.
        expected = sum(sizes[name] for name in b_mos) // 4
        assert report.overlay_copy_words == expected
        assert report.check_identities()

    def test_charge_initial_copies(self, setup):
        program, execution, mos, partition = setup
        all_names = frozenset(mo.name for mo in mos)
        total = sum(mo.unpadded_size for mo in mos)
        residents = {
            phase: all_names for phase in range(partition.num_phases)
        }
        plans, sizes = make_images(program, mos, residents, total + 64)
        simulator = InstructionMemorySimulator(
            LinkedImage(program, mos),
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1),
                            spm_size=total + 64),
        )
        report = simulator.run_overlay(
            execution.block_sequence, partition.block_phase,
            plans, residents, sizes, charge_initial_copies=True,
        )
        assert report.overlay_copy_words == total // 4

    def test_constant_residency_copies_nothing(self, setup):
        program, execution, mos, partition = setup
        residents = {
            phase: frozenset() for phase in range(partition.num_phases)
        }
        plans, sizes = make_images(program, mos, residents, 0)
        simulator = InstructionMemorySimulator(
            LinkedImage(program, mos),
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1)),
        )
        report = simulator.run_overlay(
            execution.block_sequence, partition.block_phase,
            plans, residents, sizes,
        )
        assert report.overlay_copy_words == 0
        # equivalent to the plain run
        plain = InstructionMemorySimulator(
            LinkedImage(program, mos),
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1)),
        ).run(execution.block_sequence)
        assert report.cache_misses == plain.cache_misses

    def test_phase_stats_partition_totals(self, setup):
        program, execution, mos, partition = setup
        residents = {
            phase: frozenset() for phase in range(partition.num_phases)
        }
        plans, sizes = make_images(program, mos, residents, 0)
        simulator = InstructionMemorySimulator(
            LinkedImage(program, mos),
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1)),
        )
        report = simulator.run_overlay(
            execution.block_sequence, partition.block_phase,
            plans, residents, sizes,
        )
        assert sum(
            stats.fetches for stats in report.phase_mo_stats.values()
        ) == report.total_fetches
