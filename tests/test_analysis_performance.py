"""Tests for the fetch-cycle performance model."""

import pytest

from repro.analysis.performance import (
    FetchCycles,
    compute_cycles,
    speedup,
)
from repro.analysis.wcet import FetchLatency
from repro.memory.stats import MemoryObjectStats, SimulationReport


def make_report(spm=0, lc=0, hits=0, misses=0, copies=0):
    report = SimulationReport()
    report.mo_stats["T"] = MemoryObjectStats(
        "T", fetches=spm + lc + hits + misses,
        spm_accesses=spm, lc_accesses=lc,
        cache_hits=hits, cache_misses=misses,
    )
    report.overlay_copy_words = copies
    return report


class TestComputeCycles:
    def test_arithmetic(self):
        latency = FetchLatency(spm=1, cache_hit=2, cache_miss=10)
        cycles = compute_cycles(
            make_report(spm=100, lc=50, hits=30, misses=5, copies=2),
            latency,
        )
        assert cycles.spm == 100
        assert cycles.loop_cache == 50
        assert cycles.cache_hits == 60
        assert cycles.cache_misses == 50
        assert cycles.overlay_copies == 20
        assert cycles.total == 280

    def test_default_latency(self):
        cycles = compute_cycles(make_report(hits=10))
        assert cycles.total == 10

    def test_cpi_contribution(self):
        cycles = FetchCycles(0, 0, 100, 100, 0)
        assert cycles.cpi_contribution(100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            cycles.cpi_contribution(0)


class TestSpeedup:
    def test_spm_speeds_up_fetches(self, adpcm_workbench):
        bench = adpcm_workbench
        baseline = bench.baseline_report
        improved = bench.run_casa(256).report
        assert speedup(baseline, improved) > 1.0

    def test_identity_speedup(self, adpcm_workbench):
        report = adpcm_workbench.baseline_report
        assert speedup(report, report) == pytest.approx(1.0)

    def test_energy_and_performance_agree(self, adpcm_workbench):
        """For this architecture both metrics improve together (the
        motivation the paper gives for scratchpads over caches)."""
        bench = adpcm_workbench
        casa = bench.run_casa(256)
        baseline = bench.baseline_result()
        assert casa.energy.total < baseline.energy.total
        assert speedup(baseline.report, casa.report) > 1.0
