"""Grid pipeline: single-pass replay, warm starts, grid chunks.

The grid pipeline's contract is that batching is purely a wall-clock
optimisation: :func:`~repro.memory.kernel.grid.simulate_grid` must
match per-configuration simulation bit for bit, a warm-started branch
& bound must return the cold solve's exact optimum, and a sweep
scheduled as :class:`~repro.engine.grid.GridChunk` work units must
reproduce the per-point path's reports and allocations byte for byte.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.casa import CasaAllocator
from repro.core.pipeline import Workbench, WorkbenchConfig
from repro.engine.grid import CHUNK_ALGORITHMS, GridChunk, \
    evaluate_chunk
from repro.engine.parallel import PointSpec, evaluate_point, \
    map_points
from repro.engine.runner import StageRunner, make_workbench
from repro.engine.store import ArtifactStore, set_default_store
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.memory.kernel import SweepGrid, compile_stream, \
    report_differences, simulate_grid
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig
from repro.workloads.synthetic import random_program

LINE_SIZES = (8, 16, 32)
ASSOCIATIVITIES = (1, 2, 4)


def lru_axis(spm_size: int = 0) -> SweepGrid:
    """The satellite grid: line {8,16,32} x assoc {1,2,4}, all LRU."""
    return SweepGrid.of(
        HierarchyConfig(
            cache=CacheConfig(
                size=line_size * associativity * 4,
                line_size=line_size,
                associativity=associativity,
            ),
            spm_size=spm_size,
        )
        for line_size in LINE_SIZES
        for associativity in ASSOCIATIVITIES
    )


class TestGridOnRandomPrograms:
    """simulate_grid == per-config vector == reference, property-based."""

    @given(st.integers(0, 60))
    @settings(max_examples=10, deadline=None)
    def test_grid_matches_vector_and_reference(self, seed):
        program = random_program(seed, num_functions=3, max_depth=2)
        bench = Workbench(program, WorkbenchConfig(
            cache=CacheConfig(size=64, line_size=16, associativity=1),
            tracegen=TraceGenConfig(line_size=16, max_trace_size=32),
        ))
        config = bench.config
        image = LinkedImage(bench.program, bench.memory_objects)
        stream = compile_stream(image, bench.block_sequence,
                                spm_base=config.spm_base)
        grid = lru_axis()
        covered, fallback = grid.coverage()
        assert covered == len(grid) and fallback == 0
        from_grid = simulate_grid(stream, grid,
                                  spm_base=config.spm_base)
        for hierarchy, grid_report in zip(grid, from_grid):
            reference = simulate(
                image, hierarchy, bench.block_sequence,
                spm_base=config.spm_base, backend="reference",
            )
            vector = simulate(
                image, hierarchy, bench.block_sequence,
                spm_base=config.spm_base, backend="vector",
                stream=stream,
            )
            assert not report_differences(reference, grid_report)
            assert not report_differences(reference, vector)


class TestWarmStartEquivalence:
    """A warm-started solve returns the cold solve's exact optimum."""

    def test_warm_equals_cold_across_the_axis(self, adpcm_workbench):
        bench = adpcm_workbench
        graph = bench.conflict_graph
        allocator = CasaAllocator()
        previous = frozenset()
        for size in (64, 128, 256):
            energy = bench.spm_energy_model(size)
            cold = allocator.allocate(graph, size, energy)
            warm = allocator.allocate(graph, size, energy,
                                      warm_start=previous)
            assert warm.spm_resident == cold.spm_resident
            assert warm.predicted_energy == cold.predicted_energy
            assert warm.solver_status == cold.solver_status
            previous = cold.spm_resident

    def test_run_grid_records_warm_start_telemetry(self):
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
        try:
            runner = StageRunner(store=ArtifactStore())
            workload, bench = make_workbench("adpcm", 0.5, 0,
                                             runner=runner)
            bench.run_grid("casa", tuple(sorted(workload.spm_sizes)))
        finally:
            set_registry(previous_registry)
        # The first capacity step is necessarily cold; every later
        # step seeds from its neighbour and (on adpcm) the incumbent
        # beats the rounding heuristic at least once.
        assert registry.value("ilp.warm_start.hits") >= 1
        assert registry.value("ilp.warm_start.bound_improvement") > 0


class TestRunGrid:
    """Workbench.run_grid == the per-size run_* entry points."""

    def test_matches_per_size_runs(self, tiny_workbench):
        bench = tiny_workbench
        sizes = (64, 128)
        for algorithm, run in (("casa", bench.run_casa),
                               ("steinke", bench.run_steinke),
                               ("greedy", bench.run_greedy)):
            grid_results = bench.run_grid(algorithm, sizes)
            for size, from_grid in zip(sizes, grid_results):
                single = run(size)
                assert not report_differences(single.report,
                                              from_grid.report)
                assert single.allocation.spm_resident == \
                    from_grid.allocation.spm_resident
                assert single.energy.total == from_grid.energy.total

    def test_preserves_requested_order(self, tiny_workbench):
        ascending = tiny_workbench.run_grid("greedy", (64, 128))
        descending = tiny_workbench.run_grid("greedy", (128, 64))
        assert [r.allocation.capacity for r in descending] == [128, 64]
        assert descending[1].energy.total == ascending[0].energy.total

    def test_rejects_unknown_algorithm(self, tiny_workbench):
        with pytest.raises(ConfigurationError):
            tiny_workbench.run_grid("nonsense", (64,))


class TestSimulateImageGrid:
    """One grid_sim artifact covers the whole cache axis."""

    def test_reports_match_and_artifact_is_reused(self):
        runner = StageRunner(store=ArtifactStore())
        workload, bench = make_workbench("tiny", 0.2, 0,
                                         runner=runner)
        image = LinkedImage(bench.program, bench.memory_objects)
        grid = lru_axis()
        first = bench.simulate_image_grid(image, grid)
        assert len(first) == len(grid)
        for hierarchy, grid_report in zip(grid, first):
            reference = simulate(
                image, hierarchy, bench.block_sequence,
                spm_base=bench.config.spm_base, backend="reference",
            )
            assert not report_differences(reference, grid_report)
        stages = runner.record.stages
        assert stages["grid_sim"].computed == 1
        second = bench.simulate_image_grid(image, grid)
        stages = runner.record.stages
        assert stages["grid_sim"].computed == 1
        assert stages["grid_sim"].hits == 1
        for a, b in zip(first, second):
            assert not report_differences(a, b)


class TestGridChunks:
    """GridChunk scheduling reproduces the per-point path exactly."""

    def _fresh(self, work):
        previous = set_default_store(ArtifactStore())
        try:
            return work()
        finally:
            set_default_store(previous)

    def test_chunk_matches_points(self):
        chunk = GridChunk(workload="tiny", spm_sizes=(64, 128),
                          algorithm="casa", scale=0.2)
        from_chunk = self._fresh(lambda: evaluate_chunk(chunk))
        from_points = self._fresh(lambda: [
            evaluate_point(PointSpec("tiny", size, "casa", scale=0.2))
            for size in (64, 128)
        ])
        assert len(from_chunk) == len(from_points)
        for single, grid_result in zip(from_points, from_chunk):
            assert not report_differences(single.report,
                                          grid_result.report)
            assert single.allocation.spm_resident == \
                grid_result.allocation.spm_resident
            assert single.energy.total == grid_result.energy.total

    def test_chunk_rejects_unknown_algorithm(self):
        assert "casa" in CHUNK_ALGORITHMS
        with pytest.raises(ConfigurationError):
            evaluate_chunk(GridChunk(workload="tiny",
                                     spm_sizes=(64,),
                                     algorithm="nonsense"))

    def test_map_points_mixes_chunks_and_points(self):
        units = [
            GridChunk(workload="tiny", spm_sizes=(64, 128),
                      algorithm="greedy", scale=0.2),
            PointSpec("tiny", 64, "greedy", scale=0.2),
        ]
        results = self._fresh(lambda: map_points(units))
        assert isinstance(results[0], list) and len(results[0]) == 2
        assert not isinstance(results[1], list)
        assert results[0][0].energy.total == results[1].energy.total

    def test_healed_chunk_retries_as_one_unit(self):
        from repro.resilience.faults import FaultPlan, set_fault_plan
        from repro.resilience.healing import map_points_healed

        chunk = GridChunk(workload="tiny", spm_sizes=(64, 128),
                          algorithm="greedy", scale=0.2)
        clean = self._fresh(lambda: map_points_healed([chunk]))
        plan = FaultPlan.from_spec("worker.exec:error@nth=1")
        previous_plan = set_fault_plan(plan)
        try:
            healed = self._fresh(
                lambda: map_points_healed([chunk])
            )
        finally:
            set_fault_plan(previous_plan)
        outcome = healed.outcomes[0]
        assert outcome.status in ("ok", "retried")
        assert outcome.attempts == 2
        assert "@[64+128]" in outcome.describe()
        for expected, actual in zip(clean.results[0],
                                    outcome.result):
            assert expected.energy.total == actual.energy.total


class TestVerifyGridGate:
    """The differential gate passes, and zero coverage fails it."""

    def test_gate_passes_on_tiny(self):
        from repro.evaluation.verify_grid import verify_grid

        report = verify_grid(workloads=("tiny",), scale=0.2)
        assert report.ok, report.render()

    def test_zero_coverage_grid_fails(self):
        from repro.evaluation.verify_grid import _coverage_case

        fifo_only = SweepGrid.of([HierarchyConfig(
            cache=CacheConfig(size=128, line_size=16,
                              associativity=2, policy="fifo"),
        )])
        case = _coverage_case(fifo_only)
        assert not case.ok
        assert "zero-coverage" in case.differences[0]

    def test_allocation_comparison_ignores_solver_nodes(self):
        from dataclasses import replace

        from repro.core.allocation import Allocation
        from repro.evaluation.verify_grid import \
            allocation_differences

        base = Allocation(algorithm="casa",
                          spm_resident=frozenset({"a"}),
                          predicted_energy=1.0, solver_nodes=7,
                          solver_status="optimal", capacity=64,
                          used_bytes=8)
        assert not allocation_differences(
            base, replace(base, solver_nodes=3))
        assert allocation_differences(
            base, replace(base, spm_resident=frozenset()))
