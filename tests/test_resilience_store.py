"""Store robustness: quarantine, atomic writes, orphan cleanup."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.engine.store import QUARANTINE_DIR, ArtifactStore
from repro.errors import CacheCorruptionError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience.faults import FaultPlan, set_fault_plan


@pytest.fixture(autouse=True)
def clean_fault_state():
    """No injection plan leaks into or out of these tests."""
    set_fault_plan(None)
    yield
    set_fault_plan(None)


@pytest.fixture
def registry():
    """A metrics registry installed as the active one."""
    active = MetricsRegistry()
    previous = set_registry(active)
    yield active
    set_registry(previous)


def test_corrupt_entry_is_quarantined_not_deleted(tmp_path, registry):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("graph", "feed", "good")
    [path] = store.disk_entries()
    path.write_bytes(b"not a pickle")

    reader = ArtifactStore(cache_dir=tmp_path)
    assert reader.get("graph", "feed") is None
    assert reader.stats.quarantined == 1
    # The bad bytes are preserved for post-mortem inspection.
    [kept] = reader.quarantined_entries()
    assert kept.parent.name == QUARANTINE_DIR
    assert kept.read_bytes() == b"not a pickle"
    assert not path.exists()
    [record] = reader.corruptions
    assert isinstance(record, CacheCorruptionError)
    assert record.stage == "graph" and record.digest == "feed"
    assert registry.value("store.quarantined") == 1


def test_recompute_replaces_quarantined_entry(tmp_path):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("trace", "d1", [1, 2])
    [path] = store.disk_entries()
    path.write_bytes(pickle.dumps({"schema": -1}))
    store.clear(memory=True, disk=False)

    artifact, cached = store.get_or_compute("trace", "d1",
                                            lambda: [3, 4])
    assert (artifact, cached) == ([3, 4], False)
    assert store.stats.quarantined == 1
    # The recomputed artifact went back to disk and reads cleanly.
    fresh = ArtifactStore(cache_dir=tmp_path)
    assert fresh.get("trace", "d1") == [3, 4]
    assert fresh.stats.quarantined == 0


def test_injected_read_fault_exercises_quarantine(tmp_path):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("execution", "d2", {"n": 1})
    store.clear(memory=True, disk=False)
    set_fault_plan(FaultPlan.from_spec("store.read:corrupt@nth=1"))
    assert store.get("execution", "d2") is None
    assert store.stats.quarantined == 1
    # The fault fired once; the recompute-and-replace path is clean.
    store.put("execution", "d2", {"n": 1})
    store.clear(memory=True, disk=False)
    assert store.get("execution", "d2") == {"n": 1}


def test_injected_write_fault_keeps_memory_tier(tmp_path):
    store = ArtifactStore(cache_dir=tmp_path)
    set_fault_plan(FaultPlan.from_spec("store.write:error@nth=1"))
    store.put("graph", "d3", "artifact")
    assert store.disk_entries() == []
    assert list(tmp_path.glob("*.tmp.*")) == []  # temp file cleaned
    assert store.stats.disk_errors == 1
    assert store.get("graph", "d3") == "artifact"  # memory tier holds


def test_orphaned_temp_files_swept_on_open(tmp_path):
    orphan = tmp_path / "graph-dead.pkl.tmp.99999"
    own = tmp_path / f"graph-live.pkl.tmp.{os.getpid()}"
    orphan.write_bytes(b"partial write")
    own.write_bytes(b"in flight")
    ArtifactStore(cache_dir=tmp_path)
    assert not orphan.exists()
    assert own.exists()  # current process may still be writing it


def test_clear_empties_quarantine_too(tmp_path):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("graph", "feed", "good")
    [path] = store.disk_entries()
    path.write_bytes(b"junk")
    store.clear(memory=True, disk=False)
    assert store.get("graph", "feed") is None
    assert len(store.quarantined_entries()) == 1
    store.clear()
    assert store.quarantined_entries() == []


def test_unexpected_errors_still_propagate(tmp_path, monkeypatch):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("graph", "feed", "good")
    store.clear(memory=True, disk=False)

    class Boom(Exception):
        """Not a corruption shape: must escape the quarantine net."""

    def explode(handle):
        raise Boom()

    monkeypatch.setattr("repro.engine.store.pickle.load", explode)
    with pytest.raises(Boom):
        store.get("graph", "feed")
    assert store.stats.quarantined == 0
