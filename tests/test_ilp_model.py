"""Tests for repro.ilp.model."""

import pytest

from repro.errors import SolverError
from repro.ilp.model import Constraint, Model, Sense, SolveStatus


class TestModelConstruction:
    def test_duplicate_variable_names(self):
        model = Model()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_variable("x")

    def test_add_constraint_type_checked(self):
        model = Model()
        with pytest.raises(SolverError):
            model.add_constraint(True)  # a bool, e.g. from misuse of ==

    def test_counts(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x <= 1)
        model.set_objective(x)
        assert model.num_variables == 1
        assert model.num_constraints == 1
        assert model.integer_variables == [x]

    def test_named_constraint(self):
        model = Model()
        x = model.add_variable("x")
        constraint = model.add_constraint(x <= 5, "cap")
        assert constraint.name == "cap"
        assert "cap" in repr(constraint)


class TestConstraintSemantics:
    def test_le(self):
        model = Model()
        x = model.add_variable("x")
        c = x <= 5
        assert c.satisfied_by({x: 5.0})
        assert not c.satisfied_by({x: 5.1})

    def test_ge(self):
        model = Model()
        x = model.add_variable("x")
        c = x >= 2
        assert c.satisfied_by({x: 2.0})
        assert not c.satisfied_by({x: 1.0})

    def test_eq(self):
        model = Model()
        x = model.add_variable("x")
        c = x == 3
        assert c.satisfied_by({x: 3.0})
        assert not c.satisfied_by({x: 3.5})

    def test_bad_sense(self):
        with pytest.raises(SolverError):
            Constraint(None, "<")


class TestFeasibility:
    def test_bounds_checked(self):
        model = Model()
        x = model.add_variable("x", 0, 2)
        assert model.is_feasible({x: 1.0})
        assert not model.is_feasible({x: 3.0})
        assert not model.is_feasible({x: -1.0})

    def test_integrality_checked(self):
        model = Model()
        x = model.add_binary("x")
        assert not model.is_feasible({x: 0.5})
        assert model.is_feasible({x: 1.0})


class TestSolveBasics:
    def test_simple_lp(self):
        model = Model("lp", Sense.MAXIMIZE)
        x = model.add_variable("x", 0, 4)
        y = model.add_variable("y", 0, 4)
        model.add_constraint(x + y <= 6)
        model.set_objective(x + 2 * y)
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(10.0)
        assert result.value(y) == pytest.approx(4.0)

    def test_simple_ilp(self):
        model = Model("ilp", Sense.MAXIMIZE)
        x = model.add_binary("x")
        y = model.add_binary("y")
        z = model.add_binary("z")
        model.add_constraint(2 * x + 2 * y + 2 * z <= 4)
        model.set_objective(3 * x + 2 * y + 2 * z)
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(5.0)
        assert result.binary_value(x) == 1

    def test_infeasible(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x >= 2)
        model.set_objective(x)
        assert model.solve().status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        model = Model("u", Sense.MAXIMIZE)
        x = model.add_variable("x")
        model.set_objective(x)
        assert model.solve().status is SolveStatus.UNBOUNDED

    def test_result_value_guard(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x >= 2)
        model.set_objective(x)
        result = model.solve()
        with pytest.raises(SolverError):
            result.value(x)

    def test_constant_objective(self):
        model = Model()
        x = model.add_binary("x")
        model.set_objective(5.0)
        result = model.solve()
        assert result.objective == pytest.approx(5.0)
