"""Tests for repro.memory.kernel.verify (differential harness)."""

import random

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.kernel import report_differences, verify_kernel
from repro.memory.kernel.verify import (
    VerifyCase,
    VerifyReport,
    random_cache_config,
)
from repro.memory.stats import MemoryObjectStats, SimulationReport


def small_report():
    report = SimulationReport(num_block_executions=3)
    report.mo_stats["A"] = MemoryObjectStats(
        "A", fetches=10, cache_hits=8, cache_misses=2,
        compulsory_misses=1,
    )
    report.mo_stats["B"] = MemoryObjectStats(
        "B", fetches=4, cache_hits=3, cache_misses=1,
        compulsory_misses=1,
    )
    report.conflict_misses[("A", "B")] = 1
    report.main_memory_words = 12
    return report


class TestReportDifferences:
    def test_identical_reports_have_none(self):
        assert report_differences(small_report(), small_report()) == []

    def test_counter_value_difference_caught(self):
        other = small_report()
        other.mo_stats["A"].cache_hits = 7
        diffs = report_differences(small_report(), other)
        assert any("cache_hits" in d for d in diffs)

    def test_key_order_difference_caught(self):
        other = SimulationReport(num_block_executions=3)
        base = small_report()
        # Same content, reversed mo_stats insertion order.
        other.mo_stats["B"] = base.mo_stats["B"]
        other.mo_stats["A"] = base.mo_stats["A"]
        other.conflict_misses = base.conflict_misses
        other.main_memory_words = base.main_memory_words
        diffs = report_differences(base, other)
        assert any("mo_stats keys" in d for d in diffs)

    def test_conflict_order_difference_caught(self):
        base = small_report()
        base.conflict_misses[("B", "A")] = 2
        other = small_report()
        other.conflict_misses[("B", "A")] = 2
        other.conflict_misses = type(other.conflict_misses)(
            dict(reversed(list(other.conflict_misses.items())))
        )
        diffs = report_differences(base, other)
        assert any("conflict_misses" in d for d in diffs)

    def test_scalar_difference_caught(self):
        other = small_report()
        other.main_memory_words = 13
        diffs = report_differences(small_report(), other)
        assert any("main_memory_words" in d for d in diffs)


class TestRandomConfig:
    def test_always_valid(self):
        rng = random.Random(7)
        for _ in range(200):
            config = random_cache_config(rng)
            assert isinstance(config, CacheConfig)
            assert config.policy in ("lru", "fifo", "lfu", "2q")
            assert config.num_sets >= 1

    def test_deterministic_for_a_seed(self):
        assert random_cache_config(random.Random(3)) == \
            random_cache_config(random.Random(3))


class TestVerifyKernel:
    @pytest.fixture(scope="class")
    def report(self):
        return verify_kernel(workloads=("tiny",), trials=8,
                             scale=1.0, seed=0)

    def test_passes_on_tiny(self, report):
        assert report.ok, report.render()

    def test_covers_all_three_kinds(self, report):
        kinds = {case.kind for case in report.cases}
        assert kinds == {"probe", "workload", "audit"}

    def test_render_mentions_coverage(self, report):
        text = report.render()
        assert "OK" in text
        assert "probe" in text and "workload" in text

    def test_failure_render_lists_differences(self):
        failing = VerifyReport((
            VerifyCase("probe", "seed=1", ("hits differ",)),
            VerifyCase("workload", "tiny", ()),
        ))
        assert not failing.ok
        assert len(failing.failures) == 1
        text = failing.render()
        assert "FAILING" in text
        assert "hits differ" in text
