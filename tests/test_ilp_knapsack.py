"""Tests for repro.ilp.knapsack."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.ilp.knapsack import KnapsackItem, KnapsackSolution, knapsack_01


def brute_force(items, capacity):
    best = 0.0
    for mask in itertools.product((0, 1), repeat=len(items)):
        weight = sum(i.size for i, t in zip(items, mask) if t)
        if weight <= capacity:
            best = max(
                best,
                sum(i.profit for i, t in zip(items, mask) if t),
            )
    return best


class TestBasics:
    def test_empty(self):
        solution = knapsack_01([], 100)
        assert solution.selected == []
        assert solution.total_profit == 0.0

    def test_zero_capacity(self):
        items = [KnapsackItem("a", 4, 10.0)]
        assert knapsack_01(items, 0).selected == []

    def test_picks_best_combination(self):
        items = [
            KnapsackItem("a", 8, 10.0),
            KnapsackItem("b", 8, 9.0),
            KnapsackItem("c", 12, 16.0),
        ]
        solution = knapsack_01(items, 16)
        assert set(solution.selected) == {"a", "b"}
        assert solution.total_profit == pytest.approx(19.0)
        assert solution.total_size == 16

    def test_non_positive_profit_never_selected(self):
        items = [KnapsackItem("a", 4, 0.0), KnapsackItem("b", 4, -2.0)]
        assert knapsack_01(items, 100).selected == []

    def test_zero_size_positive_profit_always_selected(self):
        items = [KnapsackItem("free", 0, 1.0)]
        assert knapsack_01(items, 4).selected == ["free"]

    def test_granularity_enforced(self):
        with pytest.raises(SolverError):
            knapsack_01([KnapsackItem("a", 6, 1.0)], 16, granularity=4)

    def test_negative_capacity(self):
        with pytest.raises(SolverError):
            knapsack_01([], -1)

    def test_negative_size(self):
        with pytest.raises(SolverError):
            KnapsackItem("a", -4, 1.0)

    def test_selection_order_follows_input(self):
        items = [
            KnapsackItem("z", 4, 5.0),
            KnapsackItem("a", 4, 5.0),
        ]
        assert knapsack_01(items, 8).selected == ["z", "a"]


class TestAgainstBruteForce:
    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.floats(0, 50)),
            min_size=0, max_size=9,
        ),
        st.integers(0, 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal(self, raw, capacity_slots):
        items = [
            KnapsackItem(f"i{k}", size * 4, profit)
            for k, (size, profit) in enumerate(raw)
        ]
        capacity = capacity_slots * 4
        solution = knapsack_01(items, capacity)
        assert solution.total_size <= capacity
        assert solution.total_profit == pytest.approx(
            brute_force(items, capacity)
        )
