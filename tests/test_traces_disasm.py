"""Tests for the linked-image disassembler."""

import re

from repro.traces.disasm import disassemble
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.program.executor import execute_program

from tests.conftest import make_loop_program


def build_image(spm_resident=frozenset(), spm_size=0):
    program = make_loop_program(trip=3)
    execution = execute_program(program)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=64),
    )
    return LinkedImage(program, mos, spm_resident=spm_resident,
                       spm_size=spm_size)


class TestDisassemble:
    def test_every_word_listed_once(self):
        image = build_image()
        listing = disassemble(image)
        addresses = re.findall(r"^(0x[0-9a-f]+):", listing,
                               re.MULTILINE)
        assert len(addresses) == len(set(addresses))
        total_bytes = sum(mo.padded_size for mo in
                          image.memory_objects)
        assert len(addresses) == total_bytes // 4

    def test_addresses_match_layout(self):
        image = build_image()
        listing = disassemble(image)
        for mo in image.memory_objects:
            base = image.base_address(mo.name)
            assert f"{base:#010x}" in listing

    def test_padding_marked(self):
        image = build_image()
        listing = disassemble(image)
        if any(mo.padded_size > mo.unpadded_size
               for mo in image.memory_objects):
            assert "; padding" in listing

    def test_spm_residents_marked_and_unpadded(self):
        image = build_image(spm_resident={"T0"}, spm_size=1024)
        listing = disassemble(image)
        assert "scratchpad" in listing
        # the scratchpad copy is not padded
        spm_section = listing.split("=====")[1]
        assert "padded" not in spm_section

    def test_block_boundaries_annotated(self):
        listing = disassemble(build_image())
        assert "main.entry[0:" in listing

    def test_without_padding(self):
        image = build_image()
        listing = disassemble(image, include_padding=False)
        assert "; padding" not in listing
