"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or \
                    obj is errors.ReproError

    def test_infeasible_is_solver_error(self):
        assert issubclass(errors.InfeasibleError, errors.SolverError)
        assert issubclass(errors.UnboundedError, errors.SolverError)

    def test_catching_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.TraceError("boom")

    def test_library_raises_only_repro_errors_for_bad_config(self):
        from repro.memory.cache import CacheConfig
        with pytest.raises(errors.ReproError):
            CacheConfig(size=100)
        from repro.traces.tracegen import TraceGenConfig
        with pytest.raises(errors.ReproError):
            TraceGenConfig(line_size=3)
