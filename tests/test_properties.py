"""Cross-cutting property-based tests.

* the cache simulator against an executable reference model;
* trace generation + linking + simulation on random programs;
* CASA against brute force on random conflict graphs.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.energy.model import EnergyModel
from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.workloads.synthetic import random_program


class ReferenceCache:
    """Dict-based LRU reference model (correct by construction)."""

    def __init__(self, num_sets, ways):
        self.num_sets = num_sets
        self.ways = ways
        self.sets = [[] for _ in range(num_sets)]  # MRU at end

    def access(self, line_id):
        index = line_id % self.num_sets
        contents = self.sets[index]
        if line_id in contents:
            contents.remove(line_id)
            contents.append(line_id)
            return True
        if len(contents) == self.ways:
            contents.pop(0)
        contents.append(line_id)
        return False


class TestCacheAgainstReference:
    @given(
        st.integers(1, 3),   # log2 sets
        st.integers(0, 2),   # log2 ways
        st.lists(st.integers(0, 40), min_size=0, max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_stream_identical(self, log_sets, log_ways, stream):
        sets, ways = 1 << log_sets, 1 << log_ways
        cache = Cache(CacheConfig(
            size=sets * ways * 16, line_size=16, associativity=ways))
        reference = ReferenceCache(sets, ways)
        for line in stream:
            assert cache.access_line(line, "X") == \
                reference.access(line)

    @given(st.lists(st.integers(0, 30), min_size=0, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_conflict_attribution_totals(self, stream):
        cache = Cache(CacheConfig(size=64, line_size=16,
                                  associativity=1))
        for line in stream:
            cache.access_line(line, f"M{line % 5}")
        assert (cache.conflict_miss_count + cache.compulsory_misses
                == cache.misses)


class TestPipelineOnRandomPrograms:
    @given(st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_simulation_identity(self, seed):
        program = random_program(seed, num_functions=3, max_depth=2)
        execution = execute_program(program, max_steps=2_000_000)
        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        image = LinkedImage(program, mos)
        report = simulate(
            image,
            HierarchyConfig(cache=CacheConfig(size=128, line_size=16,
                                              associativity=1)),
            execution.block_sequence,
        )
        assert report.check_identities()
        assert report.total_fetches >= execution.instruction_count
        assert (report.conflict_miss_total + report.compulsory_misses
                <= report.cache_misses)

    @given(st.integers(0, 40), st.sampled_from([32, 64, 128]))
    @settings(max_examples=15, deadline=None)
    def test_casa_allocation_always_valid(self, seed, spm_size):
        from repro.core.pipeline import Workbench, WorkbenchConfig
        program = random_program(seed, num_functions=3, max_depth=2)
        bench = Workbench(program, WorkbenchConfig(
            cache=CacheConfig(size=64, line_size=16, associativity=1),
            tracegen=TraceGenConfig(line_size=16, max_trace_size=32),
        ))
        result = bench.run_casa(spm_size)
        assert result.allocation.used_bytes <= spm_size
        assert result.report.check_identities()


def random_graph(draw_nodes, draw_edges):
    graph = ConflictGraph()
    for index, (fetches, size_words) in enumerate(draw_nodes):
        graph.add_node(ConflictNode(
            f"N{index}", fetches=fetches, size=size_words * 4))
    names = graph.node_names
    for (a, b, weight) in draw_edges:
        victim = names[a % len(names)]
        evictor = names[b % len(names)]
        if victim != evictor and weight > 0:
            graph.add_edge(victim, evictor, weight)
    return graph


class TestCasaAgainstBruteForce:
    @given(
        st.lists(st.tuples(st.integers(0, 500), st.integers(1, 8)),
                 min_size=1, max_size=6),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                           st.integers(1, 200)),
                 min_size=0, max_size=8),
        st.integers(0, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_ilp_is_optimal(self, nodes, edges, capacity_words):
        graph = random_graph(nodes, edges)
        model = EnergyModel(cache_hit=1.0, cache_miss=33.0,
                            spm_access=0.4)
        capacity = capacity_words * 4
        allocation = CasaAllocator().allocate(graph, capacity, model)

        best = None
        names = graph.node_names
        for mask in itertools.product((0, 1), repeat=len(names)):
            resident = {n for n, take in zip(names, mask) if take}
            if sum(graph.node(n).size for n in resident) > capacity:
                continue
            energy = graph.predicted_energy(resident, model)
            if best is None or energy < best:
                best = energy
        assert allocation.predicted_energy == pytest.approx(best)
