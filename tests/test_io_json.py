"""Tests for repro.io.json_io (serialisation roundtrips)."""

import json

import pytest

from repro.core.allocation import Allocation
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.errors import ConfigurationError
from repro.io import (
    allocation_from_dict,
    allocation_to_dict,
    conflict_graph_from_dict,
    conflict_graph_to_dict,
    load_allocation,
    load_conflict_graph,
    report_to_dict,
    save_allocation,
    save_conflict_graph,
)
from repro.memory.loopcache import LoopRegion
from repro.traces.layout import Placement


def make_graph():
    graph = ConflictGraph()
    graph.add_node(ConflictNode("A", fetches=100, size=64,
                                compulsory_misses=3, self_misses=1))
    graph.add_node(ConflictNode("B", fetches=50, size=32))
    graph.add_edge("A", "B", 12)
    return graph


class TestConflictGraphRoundtrip:
    def test_dict_roundtrip(self):
        graph = make_graph()
        rebuilt = conflict_graph_from_dict(conflict_graph_to_dict(graph))
        assert rebuilt.node("A").fetches == 100
        assert rebuilt.node("A").self_misses == 1
        assert rebuilt.edge_weight("A", "B") == 12
        assert rebuilt.num_nodes == 2

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "graph.json"
        save_conflict_graph(make_graph(), path)
        rebuilt = load_conflict_graph(path)
        assert rebuilt.node("B").size == 32

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            conflict_graph_from_dict({"kind": "allocation"})

    def test_json_is_valid(self, tmp_path):
        path = tmp_path / "graph.json"
        save_conflict_graph(make_graph(), path)
        data = json.loads(path.read_text())
        assert data["format"] == 1


class TestAllocationRoundtrip:
    def make(self):
        return Allocation(
            algorithm="casa",
            spm_resident=frozenset({"T1", "T7"}),
            loop_regions=(LoopRegion("loop:x", 0x100, 64),),
            placement=Placement.COMPACT,
            predicted_energy=123.5,
            solver_nodes=42,
            capacity=256,
            used_bytes=96,
        )

    def test_dict_roundtrip(self):
        allocation = self.make()
        rebuilt = allocation_from_dict(allocation_to_dict(allocation))
        assert rebuilt.spm_resident == allocation.spm_resident
        assert rebuilt.placement is Placement.COMPACT
        assert rebuilt.loop_regions[0].start == 0x100
        assert rebuilt.predicted_energy == pytest.approx(123.5)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "alloc.json"
        save_allocation(self.make(), path)
        rebuilt = load_allocation(path)
        assert rebuilt.algorithm == "casa"
        assert rebuilt.capacity == 256

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            allocation_from_dict({"kind": "conflict_graph"})


class TestReportExport:
    def test_report_dict(self, tiny_workbench):
        report = tiny_workbench.baseline_report
        data = report_to_dict(report)
        assert data["totals"]["fetches"] == report.total_fetches
        assert data["totals"]["cache_misses"] == report.cache_misses
        assert set(data["objects"]) == set(report.mo_stats)
        # serialisable
        json.dumps(data)
