"""Tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bitops import (
    align_down,
    align_up,
    is_aligned,
    is_power_of_two,
    log2_int,
)


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)


class TestLog2Int:
    def test_exact_values(self):
        assert log2_int(1) == 0
        assert log2_int(2) == 1
        assert log2_int(1024) == 10

    def test_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_int(12)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            log2_int(0)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(32, 16) == 32

    def test_rounds_up(self):
        assert align_up(33, 16) == 48
        assert align_up(1, 16) == 16

    def test_zero(self):
        assert align_up(0, 16) == 0

    def test_non_power_alignment(self):
        assert align_up(10, 12) == 12

    def test_rejects_bad_alignment(self):
        with pytest.raises(ConfigurationError):
            align_up(4, 0)

    def test_rejects_negative_value(self):
        with pytest.raises(ConfigurationError):
            align_up(-4, 8)

    @given(st.integers(0, 10**6), st.integers(1, 4096))
    def test_properties(self, value, alignment):
        result = align_up(value, alignment)
        assert result >= value
        assert result % alignment == 0
        assert result - value < alignment


class TestAlignDown:
    def test_rounds_down(self):
        assert align_down(33, 16) == 32
        assert align_down(15, 16) == 0

    def test_already_aligned(self):
        assert align_down(48, 16) == 48

    @given(st.integers(0, 10**6), st.integers(1, 4096))
    def test_properties(self, value, alignment):
        result = align_down(value, alignment)
        assert result <= value
        assert result % alignment == 0
        assert value - result < alignment


class TestIsAligned:
    def test_aligned(self):
        assert is_aligned(64, 16)
        assert is_aligned(0, 4)

    def test_misaligned(self):
        assert not is_aligned(65, 16)

    def test_rejects_bad_alignment(self):
        with pytest.raises(ConfigurationError):
            is_aligned(4, -1)
