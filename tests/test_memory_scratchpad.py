"""Tests for repro.memory.scratchpad and mainmem."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.memory.mainmem import MainMemory
from repro.memory.scratchpad import Scratchpad


class TestScratchpad:
    def test_region(self):
        spm = Scratchpad(size=256, base=0x1000)
        assert spm.covers(0x1000)
        assert spm.covers(0x10FF)
        assert not spm.covers(0x1100)
        assert not spm.covers(0x0FFF)
        assert spm.end == 0x1100

    def test_access_counts_words(self):
        spm = Scratchpad(size=64, base=0)
        spm.access_words(0, 4)
        spm.access_words(16, 2)
        assert spm.accesses == 6

    def test_out_of_range_rejected(self):
        spm = Scratchpad(size=64, base=0)
        with pytest.raises(SimulationError):
            spm.access_words(60, 2)  # crosses the end
        with pytest.raises(SimulationError):
            spm.access_words(64, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Scratchpad(size=-1, base=0)

    def test_reset(self):
        spm = Scratchpad(size=64, base=0)
        spm.access_words(0, 4)
        spm.reset_statistics()
        assert spm.accesses == 0


class TestMainMemory:
    def test_line_fill(self):
        memory = MainMemory()
        memory.read_line(4)
        memory.read_line(4)
        assert memory.word_reads == 8
        assert memory.line_fills == 2

    def test_uncached_words(self):
        memory = MainMemory()
        memory.read_words(5)
        assert memory.word_reads == 5
        assert memory.line_fills == 0

    def test_reset(self):
        memory = MainMemory()
        memory.read_line(4)
        memory.reset_statistics()
        assert memory.word_reads == 0
