"""Tests for technology scaling of the energy models."""

import pytest

from repro.energy.model import build_energy_model
from repro.energy.technology import (
    TechnologyNode,
    offchip_scale,
    onchip_scale,
)
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig


def hierarchy():
    return HierarchyConfig(
        cache=CacheConfig(size=2048, line_size=16, associativity=1),
        spm_size=256,
    )


class TestScaleFactors:
    def test_baseline_is_identity(self):
        assert onchip_scale(TechnologyNode.UM_050) == 1.0
        assert offchip_scale(TechnologyNode.UM_050) == 1.0

    def test_onchip_monotonically_decreasing(self):
        nodes = [TechnologyNode.UM_050, TechnologyNode.UM_035,
                 TechnologyNode.UM_025, TechnologyNode.UM_018,
                 TechnologyNode.UM_013]
        factors = [onchip_scale(node) for node in nodes]
        assert factors == sorted(factors, reverse=True)

    def test_offchip_scales_slower(self):
        for node in TechnologyNode:
            assert offchip_scale(node) >= onchip_scale(node)


class TestScaledModels:
    def test_default_is_unscaled(self):
        base = build_energy_model(hierarchy())
        explicit = build_energy_model(hierarchy(),
                                      TechnologyNode.UM_050)
        assert base.cache_hit == explicit.cache_hit
        assert base.main_word == explicit.main_word

    def test_newer_node_cheaper(self):
        old = build_energy_model(hierarchy(), TechnologyNode.UM_050)
        new = build_energy_model(hierarchy(), TechnologyNode.UM_018)
        assert new.cache_hit < old.cache_hit
        assert new.spm_access < old.spm_access
        assert new.main_word < old.main_word

    def test_miss_to_hit_ratio_grows_at_newer_nodes(self):
        """Off-chip shrinks slower than on-chip, so misses become
        relatively *more* expensive — CASA's target grows with
        technology scaling."""
        old = build_energy_model(hierarchy(), TechnologyNode.UM_050)
        new = build_energy_model(hierarchy(), TechnologyNode.UM_013)
        assert (new.cache_miss / new.cache_hit) > \
            (old.cache_miss / old.cache_hit)

    def test_orderings_preserved(self):
        for node in TechnologyNode:
            model = build_energy_model(hierarchy(), node)
            assert model.spm_access < model.cache_hit \
                < model.cache_miss
