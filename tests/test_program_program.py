"""Tests for repro.program.program."""

import pytest

from repro.errors import ConfigurationError
from repro.isa import make_alu, make_call, make_return
from repro.program.basicblock import BasicBlock
from repro.program.function import Function
from repro.program.program import Program


def simple_function(name, blocks=None):
    if blocks is None:
        blocks = [
            BasicBlock(
                name=f"{name}.b0",
                instructions=[make_alu(), make_return()],
            )
        ]
    return Function(name, blocks)


class TestConstruction:
    def test_needs_functions(self):
        with pytest.raises(ConfigurationError):
            Program([], entry="main")

    def test_unknown_entry(self):
        with pytest.raises(ConfigurationError):
            Program([simple_function("main")], entry="other")

    def test_duplicate_function_names(self):
        with pytest.raises(ConfigurationError):
            Program(
                [simple_function("main"), simple_function("main")],
                entry="main",
            )

    def test_duplicate_block_names_across_functions(self):
        f1 = Function("a", [BasicBlock(
            name="shared", instructions=[make_return()])])
        f2 = Function("b", [BasicBlock(
            name="shared", instructions=[make_return()])])
        with pytest.raises(ConfigurationError):
            Program([f1, f2], entry="a")


class TestValidation:
    def test_call_to_unknown_function(self):
        blocks = [
            BasicBlock(
                name="main.b0",
                instructions=[make_call("ghost")],
                fallthrough="main.b1",
            ),
            BasicBlock(name="main.b1", instructions=[make_return()]),
        ]
        with pytest.raises(ConfigurationError):
            Program([Function("main", blocks)], entry="main")

    def test_valid_call(self):
        blocks = [
            BasicBlock(
                name="main.b0",
                instructions=[make_call("leaf")],
                fallthrough="main.b1",
            ),
            BasicBlock(name="main.b1", instructions=[make_return()]),
        ]
        program = Program(
            [Function("main", blocks), simple_function("leaf")],
            entry="main",
        )
        assert program.function_of("leaf.b0") == "leaf"


class TestQueries:
    def make(self):
        return Program(
            [simple_function("main"), simple_function("leaf")],
            entry="main",
        )

    def test_entry_block(self):
        assert self.make().entry_block.name == "main.b0"

    def test_size(self):
        assert self.make().size == 16

    def test_all_blocks_order(self):
        names = [b.name for b in self.make().all_blocks()]
        assert names == ["main.b0", "leaf.b0"]

    def test_num_blocks(self):
        assert self.make().num_blocks == 2

    def test_has_block(self):
        program = self.make()
        assert program.has_block("leaf.b0")
        assert not program.has_block("leaf.b1")

    def test_listing_contains_functions(self):
        listing = self.make().listing()
        assert "function main" in listing
        assert "function leaf" in listing
