"""Tests for repro.workloads.builder (the structured-code DSL)."""

import pytest

from repro.errors import WorkloadError
from repro.isa import Opcode
from repro.program.executor import execute_program
from repro.workloads.builder import (
    Call,
    If,
    Loop,
    ProgramBuilder,
    Seq,
    Straight,
    WhileProb,
)


def build_single(body, name="main"):
    return ProgramBuilder("t").add_function(name, body).build(entry=name)


class TestStatementValidation:
    def test_negative_straight(self):
        with pytest.raises(WorkloadError):
            Straight(-1)

    def test_zero_trip_loop(self):
        with pytest.raises(WorkloadError):
            Loop(trip=0, body=Straight(1))

    def test_while_prob_one_rejected(self):
        with pytest.raises(WorkloadError):
            WhileProb(prob=1.0, body=Straight(1))

    def test_if_probability_range(self):
        with pytest.raises(WorkloadError):
            If(prob=1.5, then=Straight(1))


class TestBuilder:
    def test_duplicate_function(self):
        builder = ProgramBuilder("t").add_function("f", Straight(1))
        with pytest.raises(WorkloadError):
            builder.add_function("f", Straight(1))

    def test_unknown_entry(self):
        with pytest.raises(WorkloadError):
            ProgramBuilder("t").add_function("f", Straight(1)).build("g")

    def test_call_to_unknown_function(self):
        builder = ProgramBuilder("t").add_function("main", Call("ghost"))
        with pytest.raises(WorkloadError):
            builder.build()

    def test_forward_call_allowed(self):
        builder = ProgramBuilder("t")
        builder.add_function("main", Call("later"))
        builder.add_function("later", Straight(2))
        program = builder.build()
        assert execute_program(program).block_sequence[1] == "later.b0"


class TestStraightCode:
    def test_single_block_with_return(self):
        program = build_single(Straight(5))
        blocks = program.all_blocks()
        assert len(blocks) == 1
        assert blocks[0].terminator.opcode is Opcode.RETURN
        assert blocks[0].num_instructions == 6  # 5 + return

    def test_empty_function(self):
        program = build_single(Seq([]))
        blocks = program.all_blocks()
        assert len(blocks) == 1
        assert blocks[0].num_instructions == 1  # bare return


class TestLoops:
    def test_loop_executes_trip_times(self):
        program = build_single(Loop(trip=7, body=Straight(3)))
        profile = execute_program(program).profile
        loop_blocks = [
            name for name, count in profile.block_counts.items()
            if count == 7
        ]
        assert loop_blocks, "some block must run 7 times"

    def test_nested_loops_multiply(self):
        program = build_single(
            Loop(trip=3, body=Loop(trip=4, body=Straight(2)))
        )
        profile = execute_program(program).profile
        assert 12 in profile.block_counts.values()

    def test_while_prob_zero_runs_once(self):
        program = build_single(WhileProb(prob=0.0, body=Straight(2)))
        profile = execute_program(program).profile
        # do-while semantics: the body runs at least (and here exactly) once
        counts = set(profile.block_counts.values())
        assert counts == {1}


class TestIf:
    def test_then_branch_taken_always(self):
        program = build_single(
            Seq([If(prob=1.0, then=Straight(3), els=Straight(2)),
                 Straight(1)])
        )
        result = execute_program(program)
        # The then-branch block ends with a jump back to the join.
        jump_blocks = [
            block for block in program.all_blocks()
            if block.ends_with_jump
        ]
        assert jump_blocks
        assert any(
            name in result.block_sequence
            for name in (block.name for block in jump_blocks)
        )

    def test_else_branch_taken_never(self):
        program = build_single(
            Seq([If(prob=0.0, then=Straight(3), els=Straight(2)),
                 Straight(1)])
        )
        result = execute_program(program)
        jump_blocks = {
            block.name for block in program.all_blocks()
            if block.ends_with_jump
        }
        assert not jump_blocks & set(result.block_sequence)

    def test_if_without_else(self):
        program = build_single(
            Seq([Straight(2), If(prob=0.5, then=Straight(3)), Straight(2)])
        )
        # must be structurally valid and runnable with either outcome
        for seed in (0, 1, 2, 3):
            execute_program(program, seed=seed)

    def test_if_as_last_statement(self):
        program = build_single(If(prob=0.5, then=Straight(2),
                                  els=Straight(1)))
        for seed in range(4):
            execute_program(program, seed=seed)

    def test_nested_if_in_then(self):
        program = build_single(
            Seq([
                If(prob=1.0,
                   then=If(prob=1.0, then=Straight(2), els=Straight(1)),
                   els=Straight(1)),
                Straight(1),
            ])
        )
        execute_program(program)


class TestCalls:
    def test_call_mid_sequence(self):
        builder = ProgramBuilder("t")
        builder.add_function("main", Seq([
            Straight(2), Call("leaf"), Straight(2),
        ]))
        builder.add_function("leaf", Straight(3))
        program = builder.build()
        sequence = execute_program(program).block_sequence
        assert sequence == ["main.b0", "leaf.b0", "main.b1"]

    def test_call_inside_loop(self):
        builder = ProgramBuilder("t")
        builder.add_function("main", Loop(trip=5, body=Call("leaf")))
        builder.add_function("leaf", Straight(2))
        program = builder.build()
        profile = execute_program(program).profile
        assert profile.block_count("leaf.b0") == 5


class TestStructuralInvariants:
    def test_block_names_unique_and_prefixed(self):
        program = build_single(
            Seq([Loop(trip=2, body=Straight(3)),
                 If(prob=0.5, then=Straight(2), els=Straight(1))])
        )
        names = [block.name for block in program.all_blocks()]
        assert len(names) == len(set(names))
        assert all(name.startswith("main.") for name in names)

    def test_mix_contains_loads_and_stores(self):
        program = build_single(Straight(40))
        opcodes = {
            instr.opcode
            for block in program.all_blocks()
            for instr in block.instructions
        }
        assert Opcode.LOAD in opcodes
        assert Opcode.STORE in opcodes
