"""Tests for the IPET WCET analyser."""

import pytest

from repro.analysis.wcet import (
    FetchLatency,
    block_worst_case_cycles,
    compute_wcet,
)
from repro.errors import ConfigurationError
from repro.isa import make_alu, make_call, make_return
from repro.program.basicblock import BasicBlock
from repro.program.executor import execute_program
from repro.program.function import Function
from repro.program.program import Program
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.workloads import get_workload

from tests.conftest import make_loop_program


def linked_image(program, spm_resident=frozenset(), spm_size=0):
    execution = execute_program(program)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=1 << 20),
    )
    return execution, LinkedImage(
        program, mos, spm_resident=spm_resident, spm_size=spm_size,
    )


class TestLatency:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FetchLatency(spm=0)


class TestBlockCycles:
    def test_spm_block_is_deterministic(self):
        program = make_loop_program(trip=3)
        _, image = linked_image(program, spm_resident={"T0"},
                                spm_size=1024)
        latency = FetchLatency(spm=1, cache_miss=20)
        plan = image.plan_for("main.loop")
        cycles = block_worst_case_cycles(plan, latency, 16)
        assert cycles == plan.always_fetched_words  # 1 cycle per word

    def test_cacheable_block_charged_line_misses(self):
        program = make_loop_program(trip=3, body_instructions=8)
        _, image = linked_image(program)
        latency = FetchLatency(cache_hit=1, cache_miss=20)
        plan = image.plan_for("main.loop")  # 9 words incl. branch
        cycles = block_worst_case_cycles(plan, latency, 16)
        words = plan.always_fetched_words
        assert cycles > words  # misses dominate
        assert cycles < words * latency.cache_miss + 1


class TestProgramWcet:
    def test_loop_bound_respected(self):
        program = make_loop_program(trip=10, body_instructions=6)
        _, image = linked_image(program)
        report = compute_wcet(program, image)
        # loop body executes exactly 10x in the worst case: weight
        # scales linearly with the trip count
        bigger = make_loop_program(trip=20, body_instructions=6)
        _, image2 = linked_image(bigger)
        report2 = compute_wcet(bigger, image2)
        assert report2.program_wcet > report.program_wcet * 1.5

    def test_wcet_upper_bounds_observed_cycles(self):
        """The bound must dominate an 'observed' run where every line
        fetch misses (the model's own worst case)."""
        program = make_loop_program(trip=7, body_instructions=6)
        execution, image = linked_image(program)
        latency = FetchLatency()
        observed = 0.0
        for name in execution.block_sequence:
            observed += block_worst_case_cycles(
                image.plan_for(name), latency, 16
            )
        report = compute_wcet(program, image, latency)
        assert report.program_wcet >= observed - 1e-6

    def test_scratchpad_tightens_wcet(self):
        """The paper's intro claim: scratchpad allocation lowers the
        provable bound."""
        workload = get_workload("adpcm", scale=0.05)
        program = workload.program
        execution, baseline = linked_image(program)
        report_cache = compute_wcet(program, baseline)

        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=1 << 20),
        )
        hot = {mo.name for mo in mos}
        total = sum(mo.unpadded_size for mo in mos)
        image_spm = LinkedImage(program, mos, spm_resident=hot,
                                spm_size=total + 64)
        report_spm = compute_wcet(program, image_spm)
        assert report_spm.program_wcet < report_cache.program_wcet / 2

    def test_callee_wcet_included(self):
        main = Function("main", [
            BasicBlock("main.b0", [make_call("leaf")],
                       fallthrough="main.b1"),
            BasicBlock("main.b1", [make_return()]),
        ])
        leaf = Function("leaf", [
            BasicBlock("leaf.b0",
                       [make_alu() for _ in range(20)] + [make_return()]),
        ])
        program = Program([main, leaf], entry="main")
        _, image = linked_image(program)
        report = compute_wcet(program, image)
        assert report.function_wcet["leaf"] > 0
        assert report.program_wcet > report.function_wcet["leaf"]

    def test_probabilistic_loop_uses_default_bound(self):
        from repro.workloads.builder import (
            ProgramBuilder, Seq, Straight, WhileProb,
        )
        builder = ProgramBuilder("w")
        builder.add_function("main", Seq([
            Straight(2), WhileProb(prob=0.5, body=Straight(4)),
        ]))
        program = builder.build()
        _, image = linked_image(program)
        small = compute_wcet(program, image, default_loop_bound=4)
        large = compute_wcet(program, image, default_loop_bound=400)
        assert large.program_wcet > small.program_wcet * 10

    def test_per_function_reporting(self):
        workload = get_workload("adpcm", scale=0.05)
        _, image = linked_image(workload.program)
        report = compute_wcet(workload.program, image)
        assert "adpcm_coder" in report.function_wcet
        assert report.program_wcet == \
            report.function_wcet["main"]


class TestWcetProperty:
    """On deterministic programs the observed all-miss cycle count of
    the single possible execution must never exceed the IPET bound."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 80))
    @settings(max_examples=25, deadline=None)
    def test_bound_dominates_observed(self, seed):
        from repro.workloads.synthetic import random_program

        program = random_program(seed, num_functions=3, max_depth=2,
                                 deterministic=True)
        execution, image = linked_image(program)
        latency = FetchLatency()
        observed = sum(
            block_worst_case_cycles(image.plan_for(name), latency, 16)
            for name in execution.block_sequence
        )
        report = compute_wcet(program, image, latency)
        assert report.program_wcet >= observed - 1e-6


class TestFlowFacts:
    def test_loop_bound_override(self):
        from repro.workloads.builder import (
            ProgramBuilder, Seq, Straight, WhileProb,
        )
        builder = ProgramBuilder("w")
        builder.add_function("main", Seq([
            Straight(2), WhileProb(prob=0.5, body=Straight(4)),
        ]))
        program = builder.build()
        _, image = linked_image(program)
        # find the probabilistic loop's header
        from repro.program.cfg import program_loops
        header = program_loops(program)[0].header
        tight = compute_wcet(program, image,
                             loop_bounds={header: 3})
        loose = compute_wcet(program, image,
                             loop_bounds={header: 300})
        default = compute_wcet(program, image, default_loop_bound=64)
        assert tight.program_wcet < default.program_wcet \
            < loose.program_wcet

    def test_invalid_flow_fact(self):
        program = make_loop_program(trip=3)
        _, image = linked_image(program)
        with pytest.raises(ConfigurationError):
            compute_wcet(program, image,
                         loop_bounds={"main.loop": 0})

    def test_flow_fact_can_tighten_fixed_trip(self):
        """A user-supplied bound overrides even behaviour-derived
        ones (e.g. from external knowledge of input sizes)."""
        program = make_loop_program(trip=100)
        _, image = linked_image(program)
        derived = compute_wcet(program, image)
        annotated = compute_wcet(program, image,
                                 loop_bounds={"main.loop": 10})
        assert annotated.program_wcet < derived.program_wcet
