"""Tests for the allocation explanation tool."""

import pytest

from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.energy.model import EnergyModel
from repro.evaluation.explain import (
    explain_allocation,
    render_explanation,
)

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def make_graph():
    graph = ConflictGraph()
    graph.add_node(ConflictNode("hot", fetches=1000, size=64))
    graph.add_node(ConflictNode("victim", fetches=100, size=64))
    graph.add_node(ConflictNode("evictor", fetches=100, size=64))
    graph.add_node(ConflictNode("cold", fetches=0, size=64))
    graph.add_edge("victim", "evictor", 200)
    return graph


class TestExplain:
    def test_every_object_explained(self):
        graph = make_graph()
        allocation = CasaAllocator().allocate(graph, 128, MODEL)
        explanations = explain_allocation(graph, allocation, MODEL)
        assert {e.name for e in explanations} == {
            "hot", "victim", "evictor", "cold",
        }

    def test_selected_first_and_sorted_by_saving(self):
        graph = make_graph()
        allocation = CasaAllocator().allocate(graph, 128, MODEL)
        explanations = explain_allocation(graph, allocation, MODEL)
        flags = [e.selected for e in explanations]
        assert flags == sorted(flags, reverse=True)

    def test_fetch_saving_arithmetic(self):
        graph = make_graph()
        allocation = CasaAllocator().allocate(graph, 64, MODEL)
        explanations = {
            e.name: e
            for e in explain_allocation(graph, allocation, MODEL)
        }
        for name in allocation.spm_resident:
            entry = explanations[name]
            expected = graph.node(name).fetches * (1.0 - 0.5)
            assert entry.fetch_saving == pytest.approx(expected)

    def test_conflict_saving_credited(self):
        graph = make_graph()
        # force the victim onto the SPM
        from repro.core.allocation import Allocation
        allocation = Allocation(algorithm="manual",
                                spm_resident=frozenset({"victim"}),
                                capacity=64, used_bytes=64)
        explanations = {
            e.name: e
            for e in explain_allocation(graph, allocation, MODEL)
        }
        assert explanations["victim"].conflict_saving == \
            pytest.approx(200 * 20.0)
        assert explanations["evictor"].conflict_saving == 0.0

    def test_unselected_objects_have_zero_saving(self):
        graph = make_graph()
        allocation = CasaAllocator().allocate(graph, 0, MODEL)
        for entry in explain_allocation(graph, allocation, MODEL):
            assert entry.total_saving == 0.0

    def test_density(self):
        graph = make_graph()
        allocation = CasaAllocator().allocate(graph, 64, MODEL)
        for entry in explain_allocation(graph, allocation, MODEL):
            if entry.selected:
                assert entry.density == pytest.approx(
                    entry.total_saving / entry.size
                )

    def test_render(self):
        graph = make_graph()
        allocation = CasaAllocator().allocate(graph, 128, MODEL)
        text = render_explanation(
            explain_allocation(graph, allocation, MODEL)
        )
        assert "scratchpad residents" in text
        assert "left in the cache" in text


class TestCliExplain:
    def test_cli(self, capsys):
        from repro.cli import main
        assert main(["explain", "--workload", "tiny", "--spm-size",
                     "64", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "scratchpad residents" in out
