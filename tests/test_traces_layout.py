"""Tests for repro.traces.layout (the linker)."""

import pytest

from repro.errors import AllocationError, LayoutError
from repro.program.executor import execute_program
from repro.traces.layout import (
    MAIN_BASE,
    SPM_BASE,
    LinkedImage,
    Placement,
)
from repro.traces.tracegen import TraceGenConfig, generate_traces

from tests.conftest import make_loop_program


def linked(program, spm_resident=frozenset(), spm_size=0,
           placement=Placement.COPY, max_trace_size=64):
    result = execute_program(program)
    mos = generate_traces(
        program, result.profile,
        TraceGenConfig(line_size=16, max_trace_size=max_trace_size),
    )
    image = LinkedImage(
        program, mos,
        spm_resident=spm_resident,
        spm_size=spm_size,
        placement=placement,
    )
    return mos, image


class TestMainLayout:
    def test_objects_line_aligned_and_disjoint(self):
        program = make_loop_program()
        mos, image = linked(program)
        cursor = MAIN_BASE
        for mo in mos:
            assert image.base_address(mo.name) == cursor
            assert image.base_address(mo.name) % 16 == 0
            cursor += mo.padded_size
        assert image.main_image_size == cursor - MAIN_BASE

    def test_copy_keeps_main_addresses(self):
        program = make_loop_program()
        mos, baseline = linked(program)
        resident = {mos[0].name}
        _, image = linked(program, spm_resident=resident, spm_size=256,
                          placement=Placement.COPY)
        for mo in mos[1:]:
            assert image.base_address(mo.name) == \
                baseline.base_address(mo.name)

    def test_compact_shifts_following_objects(self):
        program = make_loop_program(trip=3, body_instructions=30)
        mos, baseline = linked(program, max_trace_size=32)
        assert len(mos) >= 3
        resident = {mos[0].name}
        _, image = linked(program, spm_resident=resident, spm_size=256,
                          placement=Placement.COMPACT,
                          max_trace_size=32)
        # every later object moves down by the removed padded size
        shift = mos[0].padded_size
        for mo in mos[1:]:
            assert image.base_address(mo.name) == \
                baseline.base_address(mo.name) - shift

    def test_spm_objects_in_spm_region(self):
        program = make_loop_program()
        mos, image = linked(program, spm_resident={mos_name(program)},
                            spm_size=256)
        name = mos_name(program)
        assert image.on_spm(name)
        assert image.base_address(name) == SPM_BASE


def mos_name(program):
    """Name of the first memory object of the default linking."""
    return "T0"


class TestCapacity:
    def test_overflow_rejected(self):
        program = make_loop_program()
        with pytest.raises(AllocationError):
            linked(program, spm_resident={"T0"}, spm_size=4)

    def test_unknown_resident_rejected(self):
        program = make_loop_program()
        with pytest.raises(AllocationError):
            linked(program, spm_resident={"T99"}, spm_size=1024)

    def test_spm_used_counts_unpadded(self):
        program = make_loop_program()
        mos, image = linked(program, spm_resident={"T0"}, spm_size=1024)
        mo = image.memory_object("T0")
        assert image.spm_used == mo.unpadded_size


class TestFetchPlans:
    def test_every_block_has_a_plan(self):
        program = make_loop_program()
        _, image = linked(program)
        for block in program.all_blocks():
            plan = image.plan_for(block.name)
            assert plan.always_fetched_words >= block.num_instructions

    def test_segments_word_counts(self):
        program = make_loop_program()
        _, image = linked(program)
        plan = image.plan_for("main.entry")
        # entry has 4 instructions, falls through inside the trace
        assert plan.always_fetched_words == 4
        assert plan.tail_jump is None

    def test_loop_block_tail(self):
        program = make_loop_program()
        _, image = linked(program)
        plan = image.plan_for("main.loop")
        # branch block mid-trace: no appended jump needed, fallthrough
        # target is adjacent
        assert plan.tail_jump is None

    def test_split_trace_has_conditional_tail(self):
        program = make_loop_program(trip=3)
        result = execute_program(program)
        mos = generate_traces(
            program, result.profile,
            TraceGenConfig(line_size=16, max_trace_size=1 << 20,
                           min_fallthrough_count=10**9),
        )
        image = LinkedImage(program, mos)
        plan = image.plan_for("main.entry")
        assert plan.tail_jump is not None
        assert plan.fallthrough == "main.loop"

    def test_plan_flags(self):
        program = make_loop_program()
        _, image = linked(program)
        assert image.plan_for("main.exit").ends_with_return
        assert not image.plan_for("main.entry").ends_with_call

    def test_all_plans_returns_copy(self):
        program = make_loop_program()
        _, image = linked(program)
        plans = image.all_plans()
        plans.clear()
        assert image.all_plans()
