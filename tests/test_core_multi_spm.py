"""Tests for the multi-scratchpad extension."""

import pytest

from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.casa import CasaAllocator
from repro.core.multi_spm import (
    MultiScratchpadAllocator,
    ScratchpadSpec,
)
from repro.energy.model import EnergyModel
from repro.errors import SolverError

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def make_graph(nodes, edges=()):
    graph = ConflictGraph()
    for name, fetches, size in nodes:
        graph.add_node(ConflictNode(name, fetches=fetches, size=size))
    for victim, evictor, weight in edges:
        graph.add_edge(victim, evictor, weight)
    return graph


class TestSpecs:
    def test_positive_size_required(self):
        with pytest.raises(SolverError):
            ScratchpadSpec("s", 0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SolverError):
            MultiScratchpadAllocator(
                [ScratchpadSpec("s", 64), ScratchpadSpec("s", 64)]
            )

    def test_needs_scratchpads(self):
        with pytest.raises(SolverError):
            MultiScratchpadAllocator([])

    def test_access_energy_grows_with_size(self):
        assert ScratchpadSpec("a", 64).access_energy < \
            ScratchpadSpec("b", 4096).access_energy


class TestAllocation:
    def test_at_most_one_scratchpad_per_object(self):
        graph = make_graph([("A", 1000, 32), ("B", 900, 32)])
        allocator = MultiScratchpadAllocator(
            [ScratchpadSpec("s0", 32), ScratchpadSpec("s1", 32)]
        )
        allocation = allocator.allocate(graph, energy=MODEL)
        assert set(allocation.assignment.values()) <= {"s0", "s1"}
        assert len(allocation.assignment) == 2  # both objects placed

    def test_capacities_respected(self):
        graph = make_graph(
            [(f"n{i}", 100 * (5 - i), 32) for i in range(5)]
        )
        specs = [ScratchpadSpec("s0", 64), ScratchpadSpec("s1", 32)]
        allocation = MultiScratchpadAllocator(specs).allocate(
            graph, energy=MODEL)
        for spec in specs:
            used = sum(
                graph.node(name).size
                for name in allocation.residents_of(spec.name)
            )
            assert used <= spec.size

    def test_single_spm_matches_casa(self):
        """With one scratchpad the extension reduces to plain CASA."""
        graph = make_graph(
            [("A", 1000, 64), ("B", 800, 64), ("C", 400, 32)],
            [("A", "B", 200), ("B", "A", 100)],
        )
        size = 96
        multi = MultiScratchpadAllocator(
            [ScratchpadSpec("only", size)]
        ).allocate(graph, energy=MODEL)
        # compare against CASA with the same E_SP (the spec's model)
        casa_model = EnergyModel(
            cache_hit=MODEL.cache_hit, cache_miss=MODEL.cache_miss,
            spm_access=ScratchpadSpec("only", size).access_energy,
        )
        casa = CasaAllocator().allocate(graph, size, casa_model)
        assert multi.all_residents == casa.spm_resident

    def test_hot_objects_go_to_cheaper_scratchpad(self):
        # two equal-size scratchpads exist only in theory; sizes differ
        # so their access energies differ: the hotter object should sit
        # in the cheaper (smaller) one.
        graph = make_graph([("hot", 10_000, 32), ("warm", 100, 32)])
        specs = [ScratchpadSpec("small", 32), ScratchpadSpec("big", 4096)]
        allocation = MultiScratchpadAllocator(specs).allocate(
            graph, energy=MODEL)
        assert allocation.assignment["hot"] == "small"

    def test_solver_reports_nodes(self):
        graph = make_graph([("A", 100, 32)])
        allocation = MultiScratchpadAllocator(
            [ScratchpadSpec("s", 64)]
        ).allocate(graph, energy=MODEL)
        assert allocation.solver_nodes >= 0
        assert allocation.predicted_energy > 0
