"""Tracing: spans, collectors, merging and the Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    TRACE_CATEGORY,
    SpanEvent,
    TraceCollector,
    get_collector,
    set_collector,
    span,
    tracing_enabled,
)


@pytest.fixture
def collector():
    """A collector installed as the active one, restored afterwards."""
    active = TraceCollector()
    previous = set_collector(active)
    yield active
    set_collector(previous)


class TestDisabled:
    def test_disabled_by_default(self):
        assert get_collector() is None
        assert not tracing_enabled()

    def test_span_returns_shared_null_span(self):
        first = span("ilp.solve", variables=3)
        second = span("anything")
        assert first is NULL_SPAN
        assert second is NULL_SPAN

    def test_null_span_is_a_silent_context_manager(self):
        with span("nothing") as null_span:
            null_span.add(ignored=True)


class TestRecording:
    def test_records_name_args_and_timing(self, collector):
        with span("ilp.solve", variables=7) as live:
            live.add(status="OPTIMAL")
        (event,) = collector.events()
        assert event.name == "ilp.solve"
        assert event.args == {"variables": 7, "status": "OPTIMAL"}
        assert event.duration_us >= 0.0
        assert event.cpu_us >= 0.0
        assert event.tid == 0

    def test_nesting_depth_and_completion_order(self, collector):
        with span("outer"):
            with span("inner"):
                pass
            with span("inner2"):
                pass
        names = collector.span_names()
        assert names == ["inner", "inner2", "outer"]
        depths = {e.name: e.depth for e in collector.events()}
        assert depths == {"outer": 0, "inner": 1, "inner2": 1}
        assert [e.index for e in collector.events()] == [0, 1, 2]

    def test_depth_restored_after_exception(self, collector):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        with span("after"):
            pass
        depths = {e.name: e.depth for e in collector.events()}
        assert depths == {"failing": 0, "after": 0}

    def test_inner_span_starts_after_outer(self, collector):
        with span("outer"):
            with span("inner"):
                pass
        events = {e.name: e for e in collector.events()}
        assert events["inner"].start_us >= events["outer"].start_us


class TestSpanEvent:
    def test_json_round_trip(self):
        event = SpanEvent(
            name="graph.build", start_us=1.5, duration_us=2.5,
            cpu_us=2.0, depth=1, index=4, tid=2,
            args={"nodes": 10},
        )
        assert SpanEvent.from_json(event.as_json()) == event

    def test_chrome_event_shape(self):
        event = SpanEvent(
            name="sim.hierarchy", start_us=10.0, duration_us=5.0,
            cpu_us=4.0, depth=0, index=0, args={"blocks": 3},
        )
        chrome = event.as_chrome_event()
        assert chrome["ph"] == "X"
        assert chrome["cat"] == TRACE_CATEGORY
        assert chrome["name"] == "sim.hierarchy"
        assert chrome["ts"] == 10.0
        assert chrome["dur"] == 5.0
        assert chrome["args"]["blocks"] == 3
        assert chrome["args"]["depth"] == 0
        assert "cpu_us" in chrome["args"]


class TestMerge:
    def test_merge_reindexes_in_input_order(self):
        parent = TraceCollector()
        with parent.span("parent.before"):
            pass
        worker_events = [
            SpanEvent("w.first", 0.0, 1.0, 1.0, 0, 0).as_json(),
            SpanEvent("w.second", 2.0, 1.0, 1.0, 0, 1).as_json(),
        ]
        parent.merge(worker_events)
        names = parent.span_names()
        assert names == ["parent.before", "w.first", "w.second"]
        assert [e.index for e in parent.events()] == [0, 1, 2]

    def test_merge_assigns_fresh_tid_per_merge(self):
        parent = TraceCollector()
        with parent.span("main"):
            pass
        parent.merge([SpanEvent("a", 0.0, 1.0, 1.0, 0, 0)])
        parent.merge([SpanEvent("b", 0.0, 1.0, 1.0, 0, 0)])
        tids = {e.name: e.tid for e in parent.events()}
        assert tids["main"] == 0
        assert tids["a"] != tids["b"]
        assert tids["a"] != 0 and tids["b"] != 0

    def test_merge_shifts_onto_parent_timeline(self):
        parent = TraceCollector()
        with parent.span("main"):
            pass
        foreign = [
            SpanEvent("w", 1_000_000.0, 1.0, 1.0, 0, 0),
        ]
        parent.merge(foreign)
        merged = parent.events()[-1]
        # The worker's own epoch offset is stripped: the merged event
        # lands near the merge point, not a million microseconds out.
        assert merged.start_us < 1_000_000.0
        assert merged.start_us >= 0.0

    def test_merge_accepts_explicit_tid(self):
        parent = TraceCollector()
        parent.merge([SpanEvent("w", 0.0, 1.0, 1.0, 0, 0)], tid=7)
        assert parent.events()[0].tid == 7


class TestExports:
    def test_chrome_trace_document(self, collector):
        with span("point.evaluate", spm_size=128):
            pass
        document = collector.chrome_trace(metadata={"command": "sweep"})
        assert document["displayTimeUnit"] == "ms"
        assert document["casa"] == {"command": "sweep"}
        (event,) = document["traceEvents"]
        assert event["name"] == "point.evaluate"
        json.dumps(document)  # must be serialisable

    def test_chrome_trace_without_metadata(self):
        assert "casa" not in TraceCollector().chrome_trace()

    def test_jsonl_lines(self, collector):
        with span("a"):
            pass
        with span("b"):
            pass
        lines = collector.jsonl_lines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


class TestActiveCollector:
    def test_set_collector_returns_previous(self):
        first = TraceCollector()
        second = TraceCollector()
        assert set_collector(first) is None
        try:
            assert tracing_enabled()
            assert set_collector(second) is first
            assert get_collector() is second
        finally:
            set_collector(None)
        assert not tracing_enabled()
