"""Reference-vs-vector equivalence over the supported design space.

The vector kernel's contract is bit-identical
:class:`~repro.memory.stats.SimulationReport`\\ s.  These tests sweep
the kernel's whole supported corner — associativity x policy x line
size, with and without a scratchpad — on two committed workloads and
compare every report field, including dict/Counter insertion orders,
via the differential harness's strict comparator.
"""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.memory.kernel import report_differences
from repro.obs.events import EventRecorder, set_recorder
from repro.traces.layout import LinkedImage, Placement

ASSOCIATIVITIES = (1, 2, 4)
POLICIES = ("lru", "fifo")
LINE_SIZES = (8, 16, 32)

GRID = [
    pytest.param(line, assoc, policy,
                 id=f"line{line}-assoc{assoc}-{policy}")
    for line in LINE_SIZES
    for assoc in ASSOCIATIVITIES
    for policy in POLICIES
]


def images_of(bench, spm_size=64):
    """(label, image, spm_size) pairs: cache-only and scratchpad."""
    def build(resident, size):
        return LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=resident, spm_size=size,
            placement=Placement.COPY,
            main_base=bench.config.main_base,
            spm_base=bench.config.spm_base,
        )

    resident = set()
    used = 0
    for mo in bench.memory_objects:
        if used + mo.unpadded_size <= spm_size:
            resident.add(mo.name)
            used += mo.unpadded_size
    pairs = [("baseline", build(frozenset(), 0), 0)]
    if resident:
        pairs.append(("spm", build(frozenset(resident), spm_size),
                      spm_size))
    return pairs


def both_backends(bench, hierarchy, spm_size, image):
    """Simulate one configuration through both backends."""
    reference = simulate(image, hierarchy, bench.block_sequence,
                         spm_base=bench.config.spm_base,
                         backend="reference")
    vector = simulate(image, hierarchy, bench.block_sequence,
                      spm_base=bench.config.spm_base,
                      backend="vector")
    return reference, vector


@pytest.mark.parametrize("line_size,associativity,policy", GRID)
def test_tiny_equivalence(tiny_workbench, line_size, associativity,
                          policy):
    cache = CacheConfig(size=line_size * associativity * 4,
                        line_size=line_size,
                        associativity=associativity, policy=policy)
    for label, image, spm_size in images_of(tiny_workbench):
        hierarchy = HierarchyConfig(cache=cache, spm_size=spm_size)
        reference, vector = both_backends(tiny_workbench, hierarchy,
                                          spm_size, image)
        assert report_differences(reference, vector) == [], label


@pytest.mark.parametrize("line_size,associativity,policy", GRID)
def test_adpcm_equivalence(adpcm_workbench, line_size, associativity,
                           policy):
    cache = CacheConfig(size=line_size * associativity * 4,
                        line_size=line_size,
                        associativity=associativity, policy=policy)
    for label, image, spm_size in images_of(adpcm_workbench):
        hierarchy = HierarchyConfig(cache=cache, spm_size=spm_size)
        reference, vector = both_backends(adpcm_workbench, hierarchy,
                                          spm_size, image)
        assert report_differences(reference, vector) == [], label


class TestTwoLevel:
    def test_l2_equivalence(self, adpcm_workbench):
        hierarchy = HierarchyConfig(
            cache=CacheConfig(size=128, line_size=16, associativity=2),
            l2_cache=CacheConfig(size=512, line_size=16,
                                 associativity=4),
        )
        label, image, _ = images_of(adpcm_workbench)[0]
        reference, vector = both_backends(adpcm_workbench, hierarchy,
                                          0, image)
        assert report_differences(reference, vector) == []
        assert vector.l2_hits == reference.l2_hits
        assert vector.l2_misses == reference.l2_misses


class TestDispatch:
    def test_vector_rejects_random_policy(self, tiny_workbench):
        hierarchy = HierarchyConfig(cache=CacheConfig(
            size=128, line_size=16, associativity=2, policy="random",
        ))
        image = images_of(tiny_workbench)[0][1]
        with pytest.raises(ConfigurationError, match="random"):
            simulate(image, hierarchy, tiny_workbench.block_sequence,
                     backend="vector")

    def test_auto_falls_back_on_random_policy(self, tiny_workbench):
        hierarchy = HierarchyConfig(cache=CacheConfig(
            size=128, line_size=16, associativity=2, policy="random",
        ))
        image = images_of(tiny_workbench)[0][1]
        report = simulate(image, hierarchy,
                          tiny_workbench.block_sequence,
                          backend="auto")
        assert report.total_fetches > 0


class TestEventRecorderParity:
    """Event recording degrades to the reference interpreter.

    The vector kernel cannot emit per-probe events, so with a
    recorder active the ``vector`` backend falls back — and the
    recorded event counters must be exactly those of an explicit
    reference run.
    """

    @staticmethod
    def record(bench, backend):
        hierarchy = HierarchyConfig(cache=CacheConfig(
            size=128, line_size=16, associativity=2,
        ))
        image = images_of(bench)[0][1]
        recorder = EventRecorder()
        previous = set_recorder(recorder)
        try:
            report = simulate(image, hierarchy, bench.block_sequence,
                              backend=backend)
        finally:
            set_recorder(previous)
        return report, recorder

    def test_counters_match_reference(self, tiny_workbench):
        ref_report, ref_recorder = self.record(tiny_workbench,
                                               "reference")
        vec_report, vec_recorder = self.record(tiny_workbench,
                                               "vector")
        assert vec_recorder.total_events == ref_recorder.total_events
        assert dict(vec_recorder.counts) == dict(ref_recorder.counts)
        assert report_differences(ref_report, vec_report) == []

    def test_without_recorder_vector_runs(self, tiny_workbench):
        hierarchy = HierarchyConfig(cache=CacheConfig(
            size=128, line_size=16, associativity=2,
        ))
        image = images_of(tiny_workbench)[0][1]
        report = simulate(image, hierarchy,
                          tiny_workbench.block_sequence,
                          backend="vector")
        assert report.total_fetches > 0
