"""Live telemetry: progress bus, heartbeats, stall detection, exports."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.engine.parallel import PointSpec, map_points
from repro.engine.store import ArtifactStore, set_default_store
from repro.obs.live import (
    HeartbeatWriter,
    ProgressBus,
    TelemetryWriter,
    WatchRenderer,
    active_sink,
    format_watch_line,
    note_phase,
    note_total,
    note_unit_finished,
    note_unit_started,
    render_prometheus,
    set_progress_sink,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience.faults import FaultPlan, set_fault_plan


@pytest.fixture
def bus():
    """A ProgressBus installed as the active sink, restored afterwards."""
    active = ProgressBus(run_id="testrun")
    previous = set_progress_sink(active)
    yield active
    set_progress_sink(previous)


@pytest.fixture
def shared_cache(tmp_path):
    """A disk-backed default store the worker pool can share."""
    previous = set_default_store(
        ArtifactStore(cache_dir=tmp_path / "cache")
    )
    yield
    set_default_store(previous)


class TestProgressBus:
    def test_disabled_helpers_are_noops(self):
        assert active_sink() is None
        note_total(3)
        note_unit_started("x")
        note_unit_finished("x", 0.1)
        note_phase("p")

    def test_set_sink_returns_previous(self, bus):
        assert set_progress_sink(None) is bus
        assert set_progress_sink(bus) is None

    def test_unit_accounting(self, bus):
        note_total(4)
        note_unit_started("tiny/casa@64")
        snapshot = bus.snapshot()
        assert (snapshot.done, snapshot.total) == (0, 4)
        assert snapshot.workers[0].current == "tiny/casa@64"
        assert snapshot.workers[0].status == "ok"
        note_unit_finished("tiny/casa@64", 0.01)
        snapshot = bus.snapshot()
        assert snapshot.done == 1
        assert snapshot.workers[0].status == "idle"
        assert snapshot.rate_ups > 0
        assert snapshot.eta_s is not None and snapshot.eta_s > 0

    def test_eta_zero_when_complete(self, bus):
        note_total(1)
        note_unit_finished("u", 0.0)
        assert bus.snapshot().eta_s == 0.0

    def test_phase_overrides_stage(self, bus):
        bus.stage("result")
        assert bus.snapshot().stage == "result"
        note_phase("ilp.solve")
        assert bus.snapshot().stage == "ilp.solve"

    def test_serial_stall_detection(self):
        bus = ProgressBus(stall_timeout=0.01)
        bus.unit_started("slowpoke")
        time.sleep(0.05)
        snapshot = bus.snapshot()
        assert snapshot.workers[0].status == "stalled"
        assert [w.name for w in snapshot.stalled] == ["main"]

    def test_percentiles_from_registry(self, bus):
        registry = MetricsRegistry()
        registry.histogram("point.evaluate.seconds").observe(0.5)
        registry.histogram("not.a.duration").observe(9.0)
        percentiles = bus.snapshot(registry).percentiles
        assert "point.evaluate" in percentiles
        assert "not.a.duration" not in percentiles
        assert percentiles["point.evaluate"]["count"] == 1


class TestHeartbeats:
    def test_beat_round_trip(self, tmp_path, bus):
        writer = HeartbeatWriter(str(tmp_path), name="w0")
        writer.unit_started("tiny/casa@64")
        bus.attach_heartbeat_dir(str(tmp_path))
        snapshot = bus.snapshot()
        names = [w.name for w in snapshot.workers]
        assert names == ["main", "w0"]
        assert snapshot.workers[1].current == "tiny/casa@64"
        assert snapshot.workers[1].status == "ok"

    def test_beat_done_counts_add_to_progress(self, tmp_path, bus):
        writer = HeartbeatWriter(str(tmp_path), name="w0")
        writer.unit_started("a")
        writer.unit_finished("a", 0.01)
        bus.attach_heartbeat_dir(str(tmp_path))
        assert bus.snapshot().done == 1

    def test_stale_beat_unit_is_flagged_stalled(self, tmp_path):
        bus = ProgressBus(stall_timeout=0.01)
        writer = HeartbeatWriter(str(tmp_path), name="w0")
        writer.unit_started("stuck")
        time.sleep(0.05)
        bus.attach_heartbeat_dir(str(tmp_path))
        snapshot = bus.snapshot()
        assert snapshot.workers[1].status == "stalled"
        assert "STALLED" in format_watch_line(snapshot)

    def test_detach_keeps_progress_monotone(self, tmp_path, bus):
        writer = HeartbeatWriter(str(tmp_path), name="w0")
        writer.unit_started("a")
        writer.unit_finished("a", 0.01)
        bus.attach_heartbeat_dir(str(tmp_path))
        before = bus.snapshot().done
        bus.detach_heartbeat_dir()
        # The beat files are gone from view, but its done-count moved
        # into the bus's own counter.
        assert bus.snapshot().done == before == 1

    def test_worker_histograms_feed_live_percentiles(self, tmp_path, bus):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            registry.histogram("point.evaluate.seconds").observe(0.25)
            writer = HeartbeatWriter(str(tmp_path), name="w0")
            writer.unit_started("a")
            writer.unit_finished("a", 0.25)
        finally:
            set_registry(previous)
        bus.attach_heartbeat_dir(str(tmp_path))
        # No parent registry passed: the percentiles come purely from
        # the worker's heartbeat payload.
        percentiles = bus.snapshot().percentiles
        assert percentiles["point.evaluate"]["count"] == 1
        # After finalize, heartbeat histograms no longer contribute
        # (the parent registry would hold the merged truth).
        bus.finalize_workers()
        assert bus.snapshot().percentiles == {}


class TestWatchLine:
    def _snapshot(self, bus, registry=None):
        return bus.snapshot(registry)

    def test_format_contains_progress_eta_and_run_id(self, bus):
        note_total(2)
        note_unit_finished("a", 0.01)
        registry = MetricsRegistry()
        registry.histogram("point.evaluate.seconds").observe(0.5)
        line = format_watch_line(bus.snapshot(registry), tick=1)
        assert "1/2 (50%)" in line
        assert "eta" in line
        assert "workers 1 ok" in line
        assert "p50" in line and "p99" in line
        assert "run testrun" in line

    def test_renderer_paints_carriage_return_line(self, bus):
        stream = io.StringIO()
        renderer = WatchRenderer(bus, stream=stream, interval=0.01)
        renderer.start()
        time.sleep(0.05)
        renderer.stop()
        output = stream.getvalue()
        assert output.startswith("\r")
        assert output.endswith("\n")
        assert "eta" in output


class TestTelemetryWriter:
    def test_at_least_two_monotone_snapshots(self, tmp_path, bus):
        path = tmp_path / "telemetry.jsonl"
        note_total(2)
        writer = TelemetryWriter(bus, str(path), interval=0.01)
        writer.start()
        note_unit_finished("a", 0.01)
        time.sleep(0.05)
        note_unit_finished("b", 0.01)
        writer.stop()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) >= 2
        assert writer.snapshots_written == len(records)
        assert all(r["kind"] == "snapshot" for r in records)
        dones = [r["done"] for r in records]
        assert dones == sorted(dones), "done-count must be monotone"
        times = [r["ts"] for r in records]
        assert times == sorted(times)
        assert records[-1]["done"] == 2
        assert records[-1]["run_id"] == "testrun"

    def test_prometheus_file_rendered(self, tmp_path, bus):
        prom = tmp_path / "metrics.prom"
        writer = TelemetryWriter(bus, None, prom_path=str(prom),
                                 interval=5.0)
        writer.start()
        writer.stop()
        text = prom.read_text()
        assert "repro_units_done" in text
        assert 'repro_run_info{run_id="testrun"}' in text


class TestPrometheusRender:
    def test_summaries_and_counters(self, bus):
        registry = MetricsRegistry()
        registry.histogram("point.evaluate.seconds").observe(0.5)
        registry.counter("engine.cache.hits").inc(3)
        text = render_prometheus(bus.snapshot(registry))
        assert "# TYPE repro_point_evaluate_seconds summary" in text
        assert 'repro_point_evaluate_seconds{quantile="0.99"}' in text
        assert "repro_point_evaluate_seconds_count 1" in text
        assert "repro_engine_cache_hits_total 3" in text
        assert 'repro_worker_stalled{worker="main"} 0' in text


class TestEndToEnd:
    def test_sweep_feeds_bus_and_converges(self, shared_cache, bus):
        points = [PointSpec("tiny", 64, "casa", scale=0.2),
                  PointSpec("tiny", 128, "casa", scale=0.2)]
        results = map_points(points, jobs=1)
        assert len(results) == 2
        snapshot = bus.snapshot()
        assert snapshot.done == 2
        assert snapshot.total == 2

    def test_fault_injected_stall_is_flagged_and_run_converges(
            self, shared_cache):
        """A sleeping worker shows up as stalled while the run finishes."""
        bus = ProgressBus(stall_timeout=0.05)
        previous_sink = set_progress_sink(bus)
        previous_plan = set_fault_plan(
            FaultPlan.from_spec("worker.exec:sleep=0.3@nth=1")
        )
        observed: list[str] = []
        stop = threading.Event()

        def poll():
            while not stop.wait(0.02):
                for worker in bus.snapshot().stalled:
                    observed.append(worker.name)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        try:
            results = map_points(
                [PointSpec("tiny", 64, "casa", scale=0.2)], jobs=1)
        finally:
            stop.set()
            poller.join(timeout=5.0)
            set_fault_plan(previous_plan)
            set_progress_sink(previous_sink)
        assert len(results) == 1, "run must still converge"
        assert "main" in observed, "stall must be visible on the bus"
