"""Documentation-coverage test: every public item carries a docstring.

The library is meant to be adopted, so public modules, classes,
functions and methods must be documented.  This test walks the package
and fails on any undocumented public item.
"""

import importlib
import inspect
import pkgutil

import repro

#: Dunder/infra methods that need no individual docs.
_EXEMPT_METHODS = {
    "__init__", "__post_init__", "__repr__", "__str__", "__iter__",
    "__len__", "__contains__", "__hash__", "__eq__", "__ne__",
    "__lt__", "__le__", "__gt__", "__ge__", "__add__", "__radd__",
    "__sub__", "__rsub__", "__mul__", "__rmul__", "__neg__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


def test_all_modules_documented():
    undocumented = [
        module.__name__ for module in iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, f"undocumented modules: {undocumented}"


def _documented(obj) -> bool:
    return bool((inspect.getdoc(obj) or "").strip())


def test_obs_and_engine_exports_documented():
    """The observability and engine packages are the documented public
    API surface (see docs/API.md): every name they re-export must
    resolve and carry a docstring, wherever it is defined."""
    for package_name in ("repro.obs", "repro.engine"):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", None)
        assert exported, f"{package_name} must declare __all__"
        assert sorted(exported) == sorted(set(exported)), \
            f"duplicate names in {package_name}.__all__"
        for name in exported:
            obj = getattr(package, name)  # raises if dangling
            if inspect.ismodule(obj) or inspect.isclass(obj) or \
                    inspect.isfunction(obj):
                assert _documented(obj), f"{package_name}.{name}"


def test_obs_and_engine_methods_documented():
    """Every public method of the obs/engine classes is documented
    individually (the package-wide walk exempts re-exports; these two
    packages get the strict check because they are the tutorial-facing
    surface)."""
    missing = []
    prefixes = ("repro.obs", "repro.engine")
    for module in iter_modules():
        if not module.__name__.startswith(prefixes):
            continue
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or \
                        method_name in _EXEMPT_METHODS:
                    continue
                if not callable(method) and not isinstance(
                        method, (property, staticmethod, classmethod)):
                    continue
                if not _documented(getattr(obj, method_name, method)):
                    missing.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    assert not missing, f"undocumented obs/engine methods: {missing}"


def test_all_public_callables_documented():
    missing: list[str] = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
            elif inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_") or \
                            method_name in _EXEMPT_METHODS:
                        continue
                    if not callable(method) and not isinstance(
                            method, (property, staticmethod,
                                     classmethod)):
                        continue
                    # getdoc() follows the MRO, so an override whose
                    # contract is documented on the base counts.
                    attribute = getattr(obj, method_name, method)
                    if not (inspect.getdoc(attribute) or "").strip():
                        missing.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
    assert not missing, (
        f"{len(missing)} undocumented public items:\n"
        + "\n".join(sorted(missing))
    )
