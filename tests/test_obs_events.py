"""Cache event auditing: recorder bounds, replay oracle, workload audits."""

from __future__ import annotations

import pytest

from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig
from repro.obs.events import (
    CacheEvent,
    EventRecorder,
    active_recorder,
    audit_conflict_graph,
    audit_workload,
    recording_enabled,
    replay_attribution,
    set_recorder,
)


@pytest.fixture
def recorder():
    """An audit-mode recorder installed as the active one."""
    active = EventRecorder(audit=True)
    previous = set_recorder(active)
    yield active
    set_recorder(previous)


def run_alternating(recorder, rounds: int = 5) -> Cache:
    """Alternate A (line 0) and B (line 2) through one set of a
    2-set direct-mapped cache: every access misses, and each miss
    after the first pair is caused by the other object."""
    cache = Cache(CacheConfig(size=32, line_size=16, associativity=1))
    for _ in range(rounds):
        assert cache.access_line(0, "A") is False
        assert cache.access_line(2, "B") is False
    return cache


class TestRecorder:
    def test_disabled_by_default(self):
        assert active_recorder() is None
        assert not recording_enabled()

    def test_counts_and_pressure(self, recorder):
        run_alternating(recorder, rounds=5)
        assert recorder.counts["miss"] == 10
        assert recorder.counts["evict"] == 9  # all but the first fill
        assert recorder.counts["hit"] == 0  # hits off by default
        assert recorder.pressure_histogram() == [(0, 10, 9)]

    def test_hits_recorded_when_asked(self):
        active = EventRecorder(record_hits=True)
        previous = set_recorder(active)
        try:
            cache = Cache(CacheConfig(size=32, line_size=16,
                                      associativity=1))
            cache.access_line(0, "A")
            cache.access_line(0, "A")
        finally:
            set_recorder(previous)
        assert active.counts["hit"] == 1

    def test_ring_and_reservoir_bounded(self):
        active = EventRecorder(ring_size=4, reservoir_size=3)
        previous = set_recorder(active)
        try:
            run_alternating(active, rounds=10)
        finally:
            set_recorder(previous)
        assert len(active.ring()) == 4
        assert len(active.reservoir()) == 3
        assert active.total_events == 39
        # The ring holds the newest events, oldest first.
        assert [e.seq for e in active.ring()] == [35, 36, 37, 38]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EventRecorder(ring_size=0)
        with pytest.raises(ConfigurationError):
            EventRecorder(reservoir_size=-1)

    def test_event_json_round_trip(self, recorder):
        run_alternating(recorder, rounds=2)
        for event in recorder.events():
            assert CacheEvent.from_json(event.as_json()) == event

    def test_snapshot_merge(self, recorder):
        run_alternating(recorder, rounds=3)
        snapshot = recorder.snapshot()
        other = EventRecorder()
        other.merge(snapshot)
        assert other.total_events == recorder.total_events
        assert other.counts == recorder.counts
        assert other.pressure_histogram() == \
            recorder.pressure_histogram()

    def test_policy_state_recorded(self):
        active = EventRecorder(audit=True, record_policy_state=True)
        previous = set_recorder(active)
        try:
            run_alternating(active, rounds=2)
        finally:
            set_recorder(previous)
        evicts = [e for e in active.events() if e.kind == "evict"]
        assert evicts and all(e.policy_state is not None
                              for e in evicts)


class TestReplayOracle:
    def test_analytic_alternating_conflict(self, recorder):
        """Two objects sharing one direct-mapped set, N rounds each:
        m_AB = m_BA = N - 1 and one compulsory miss per object."""
        rounds = 7
        run_alternating(recorder, rounds=rounds)
        replay = replay_attribution(recorder.events())
        assert replay.conflicts == {
            ("A", "B"): rounds - 1,
            ("B", "A"): rounds - 1,
        }
        assert replay.compulsory == {"A": 1, "B": 1}
        assert replay.misses == {"A": rounds, "B": rounds}

    def test_replay_matches_cache_counters(self, recorder):
        cache = run_alternating(recorder, rounds=5)
        replay = replay_attribution(recorder.events())
        assert dict(replay.conflicts) == dict(cache.conflict_misses)

    def test_audit_passes_on_exact_graph(self, recorder):
        rounds = 4
        run_alternating(recorder, rounds=rounds)
        graph = ConflictGraph()
        graph.add_node(ConflictNode("A", fetches=rounds, size=16,
                                    compulsory_misses=1))
        graph.add_node(ConflictNode("B", fetches=rounds, size=16,
                                    compulsory_misses=1))
        graph.add_edge("A", "B", rounds - 1)
        graph.add_edge("B", "A", rounds - 1)
        assert audit_conflict_graph(graph, recorder.events()) == []

    def test_audit_flags_wrong_edge_and_compulsory(self, recorder):
        rounds = 4
        run_alternating(recorder, rounds=rounds)
        graph = ConflictGraph()
        graph.add_node(ConflictNode("A", fetches=rounds, size=16,
                                    compulsory_misses=2))  # wrong
        graph.add_node(ConflictNode("B", fetches=rounds, size=16,
                                    compulsory_misses=1))
        graph.add_edge("A", "B", rounds)  # wrong: should be N - 1
        graph.add_edge("B", "A", rounds - 1)
        mismatches = audit_conflict_graph(graph, recorder.events())
        kinds = sorted(m.kind for m in mismatches)
        assert kinds == ["compulsory", "edge"]
        edge = next(m for m in mismatches if m.kind == "edge")
        assert (edge.victim, edge.evictor) == ("A", "B")
        assert edge.graph_value == rounds
        assert edge.replayed_value == rounds - 1
        assert "graph says" in edge.describe()


class TestWorkloadAudit:
    @pytest.mark.parametrize("workload,scale", [
        ("tiny", 0.5),
        ("adpcm", 0.2),
    ])
    def test_conflict_graph_is_exact(self, workload, scale):
        """Acceptance: the profiled conflict graph's m_ij matches the
        event replay exactly on real workloads."""
        result = audit_workload(workload, scale=scale)
        assert result.ok, result.render()
        assert result.events > 0
        assert "OK" in result.render()

    def test_recorder_restored_after_audit(self):
        assert active_recorder() is None
        audit_workload("tiny", scale=0.5)
        assert active_recorder() is None
