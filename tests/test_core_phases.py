"""Tests for repro.core.phases."""

import pytest

from repro.core.phases import detect_phases
from repro.program.executor import execute_program
from repro.workloads import get_workload
from repro.workloads.builder import (
    Call,
    Loop,
    ProgramBuilder,
    Seq,
    Straight,
)

from tests.conftest import make_loop_program


def three_pass_program():
    builder = ProgramBuilder("p")
    builder.add_function("main", Seq([
        Straight(4),
        Loop(trip=3, body=Call("a")),
        Straight(2),
        Loop(trip=3, body=Call("b")),
        Straight(2),
    ]))
    builder.add_function("a", Straight(5))
    builder.add_function("b", Straight(5))
    return builder.build()


class TestDetectPhases:
    def test_single_loop_program(self):
        partition = detect_phases(make_loop_program())
        names = [p.name for p in partition.phases]
        # entry straight, the loop, exit straight
        assert len(partition.phases) == 3
        assert any(name.startswith("loop:") for name in names)

    def test_three_pass_program(self):
        partition = detect_phases(three_pass_program())
        kinds = [p.name.split(":")[0] for p in partition.phases]
        assert kinds == ["straight", "loop", "straight", "loop",
                         "straight"]

    def test_every_entry_block_mapped(self):
        program = three_pass_program()
        partition = detect_phases(program)
        entry_blocks = {
            b.name for b in program.function(program.entry).blocks
        }
        assert set(partition.block_phase) == entry_blocks

    def test_phases_cover_disjoint_blocks(self):
        partition = detect_phases(three_pass_program())
        seen = set()
        for phase in partition.phases:
            assert not (phase.blocks & seen)
            seen |= phase.blocks

    def test_block_phase_consistent_with_phases(self):
        partition = detect_phases(three_pass_program())
        for phase in partition.phases:
            for block in phase.blocks:
                assert partition.block_phase[block] == phase.index

    def test_jpeg_has_multiple_loop_phases(self):
        program = get_workload("jpeg", scale=0.02).program
        partition = detect_phases(program)
        loops = [p for p in partition.phases
                 if p.name.startswith("loop:")]
        assert len(loops) == 3

    def test_phase_indices_sequential(self):
        partition = detect_phases(three_pass_program())
        assert [p.index for p in partition.phases] == \
            list(range(partition.num_phases))


class TestPhaseTracking:
    def test_simulator_bins_by_phase(self):
        from repro.memory.cache import CacheConfig
        from repro.memory.hierarchy import HierarchyConfig, simulate
        from repro.traces.layout import LinkedImage
        from repro.traces.tracegen import TraceGenConfig, generate_traces

        program = three_pass_program()
        partition = detect_phases(program)
        execution = execute_program(program)
        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        image = LinkedImage(program, mos)
        report = simulate(
            image,
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1)),
            execution.block_sequence,
            block_phases=partition.block_phase,
        )
        assert report.phase_mo_stats
        # phase totals must sum to the global totals
        assert sum(
            s.fetches for s in report.phase_mo_stats.values()
        ) == report.total_fetches
        assert sum(
            s.cache_misses for s in report.phase_mo_stats.values()
        ) == report.cache_misses
