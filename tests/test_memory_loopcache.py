"""Tests for repro.memory.loopcache."""

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.memory.loopcache import LoopCache, LoopCacheConfig, LoopRegion


class TestLoopRegion:
    def test_covers(self):
        region = LoopRegion(name="loop", start=0x100, size=0x40)
        assert region.covers(0x100)
        assert region.covers(0x13F)
        assert not region.covers(0x140)
        assert region.end == 0x140

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            LoopRegion(name="x", start=0, size=0)
        with pytest.raises(ConfigurationError):
            LoopRegion(name="x", start=-4, size=16)


class TestPreloading:
    def make(self, size=128, max_regions=2):
        return LoopCache(LoopCacheConfig(size=size,
                                         max_regions=max_regions))

    def test_region_table_limit(self):
        cache = self.make(size=1024, max_regions=2)
        cache.preload(LoopRegion("a", 0, 16))
        cache.preload(LoopRegion("b", 32, 16))
        with pytest.raises(AllocationError):
            cache.preload(LoopRegion("c", 64, 16))

    def test_capacity_limit(self):
        cache = self.make(size=32, max_regions=4)
        cache.preload(LoopRegion("a", 0, 32))
        with pytest.raises(AllocationError):
            cache.preload(LoopRegion("b", 64, 16))

    def test_overlap_rejected(self):
        cache = self.make()
        cache.preload(LoopRegion("a", 0, 32))
        with pytest.raises(AllocationError):
            cache.preload(LoopRegion("b", 16, 32))

    def test_used_bytes(self):
        cache = self.make()
        cache.preload(LoopRegion("a", 0, 48))
        assert cache.used_bytes == 48


class TestAccess:
    def make_loaded(self):
        cache = LoopCache(
            LoopCacheConfig(size=128, max_regions=4),
            regions=[LoopRegion("hot", 0x100, 64)],
        )
        return cache

    def test_lookup_counts_controller_checks(self):
        cache = self.make_loaded()
        assert cache.lookup(0x100) is True
        assert cache.lookup(0x80) is False
        assert cache.controller_checks == 2

    def test_access_words_inside_region(self):
        cache = self.make_loaded()
        served = cache.access_words(0x100, 4)
        assert served == 4
        assert cache.accesses == 4
        assert cache.controller_checks == 4

    def test_access_words_straddling_region(self):
        cache = self.make_loaded()
        served = cache.access_words(0x138, 4)  # last 2 words inside
        assert served == 2

    def test_access_outside(self):
        cache = self.make_loaded()
        assert cache.access_words(0x0, 4) == 0
        assert cache.accesses == 0

    def test_reset_statistics_keeps_regions(self):
        cache = self.make_loaded()
        cache.access_words(0x100, 4)
        cache.reset_statistics()
        assert cache.accesses == 0
        assert cache.regions
