"""Tests for the CASA ILP allocator."""

import itertools

import pytest

from repro.core.casa import CasaAllocator, CasaConfig
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.energy.model import EnergyModel
from repro.traces.layout import Placement

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def make_graph(nodes, edges):
    graph = ConflictGraph()
    for name, fetches, size in nodes:
        graph.add_node(ConflictNode(name, fetches=fetches, size=size))
    for victim, evictor, weight in edges:
        graph.add_edge(victim, evictor, weight)
    return graph


def brute_force_best(graph, spm_size, model, include_compulsory=True):
    names = graph.node_names
    best = None
    for mask in itertools.product((0, 1), repeat=len(names)):
        resident = {n for n, take in zip(names, mask) if take}
        used = sum(graph.node(n).size for n in resident)
        if used > spm_size:
            continue
        energy = graph.predicted_energy(resident, model,
                                        include_compulsory)
        if best is None or energy < best:
            best = energy
    return best


class TestOptimality:
    def test_matches_brute_force_on_triangle(self):
        graph = make_graph(
            [("A", 1000, 64), ("B", 800, 64), ("C", 900, 64)],
            [("A", "B", 100), ("B", "C", 150), ("C", "A", 120),
             ("B", "A", 80)],
        )
        for spm_size in (0, 64, 128, 192):
            allocation = CasaAllocator().allocate(graph, spm_size, MODEL)
            assert allocation.predicted_energy == pytest.approx(
                brute_force_best(graph, spm_size, MODEL)
            )

    def test_predicted_energy_matches_formula(self):
        graph = make_graph(
            [("A", 500, 32), ("B", 400, 32)],
            [("A", "B", 50)],
        )
        allocation = CasaAllocator().allocate(graph, 32, MODEL)
        assert allocation.predicted_energy == pytest.approx(
            graph.predicted_energy(set(allocation.spm_resident), MODEL)
        )

    def test_prefers_conflict_resolution_over_fetch_count(self):
        # D has the most fetches, but A/B thrash each other; with one
        # slot the conflict-heavy object wins despite fewer fetches.
        graph = make_graph(
            [("A", 300, 64), ("B", 300, 64), ("D", 400, 64)],
            [("A", "B", 500), ("B", "A", 500)],
        )
        allocation = CasaAllocator().allocate(graph, 64, MODEL)
        assert allocation.spm_resident & {"A", "B"}
        assert "D" not in allocation.spm_resident


class TestConstraints:
    def test_zero_spm_selects_nothing(self):
        graph = make_graph([("A", 100, 32)], [])
        allocation = CasaAllocator().allocate(graph, 0, MODEL)
        assert allocation.spm_resident == frozenset()

    def test_capacity_respected(self):
        graph = make_graph(
            [(f"N{i}", 100 * (i + 1), 48) for i in range(6)], []
        )
        allocation = CasaAllocator().allocate(graph, 100, MODEL)
        used = sum(graph.node(n).size for n in allocation.spm_resident)
        assert used <= 100
        assert allocation.used_bytes == used

    def test_everything_fits(self):
        graph = make_graph(
            [("A", 100, 16), ("B", 50, 16)], [("A", "B", 10)]
        )
        allocation = CasaAllocator().allocate(graph, 1024, MODEL)
        assert allocation.spm_resident == {"A", "B"}


class TestConfig:
    def test_conflict_term_off_reduces_to_fetch_knapsack(self):
        graph = make_graph(
            [("A", 300, 64), ("B", 300, 64), ("D", 400, 64)],
            [("A", "B", 500), ("B", "A", 500)],
        )
        allocator = CasaAllocator(CasaConfig(conflict_term=False,
                                             include_compulsory=False))
        allocation = allocator.allocate(graph, 64, MODEL)
        # without the conflict term, the hottest object wins
        assert allocation.spm_resident == {"D"}

    def test_compulsory_term(self):
        graph = make_graph([("A", 10, 32), ("B", 10, 32)], [])
        graph.node("A").compulsory_misses = 100
        with_comp = CasaAllocator(CasaConfig(include_compulsory=True))
        allocation = with_comp.allocate(graph, 32, MODEL)
        assert allocation.spm_resident == {"A"}

    def test_self_misses_counted(self):
        graph = make_graph([("A", 10, 32), ("B", 10, 32)], [])
        graph.node("B").self_misses = 100
        allocation = CasaAllocator(
            CasaConfig(include_compulsory=False)
        ).allocate(graph, 32, MODEL)
        assert allocation.spm_resident == {"B"}


class TestModelStructure:
    def test_variable_count_matches_paper(self):
        """|variables| = |V| + |E| (section 4)."""
        graph = make_graph(
            [("A", 10, 16), ("B", 10, 16), ("C", 10, 16)],
            [("A", "B", 5), ("B", "C", 5)],
        )
        model, _ = CasaAllocator().build_model(graph, 64, MODEL)
        assert model.num_variables == 3 + 2

    def test_linearisation_constraint_count(self):
        graph = make_graph(
            [("A", 10, 16), ("B", 10, 16)],
            [("A", "B", 5), ("B", "A", 3)],
        )
        model, _ = CasaAllocator().build_model(graph, 64, MODEL)
        # eqs. 13-15 plus the McCormick cut per edge + 1 capacity
        assert model.num_constraints == 4 * 2 + 1

    def test_allocation_metadata(self):
        graph = make_graph([("A", 1000, 32)], [])
        allocation = CasaAllocator().allocate(graph, 64, MODEL)
        assert allocation.algorithm == "casa"
        assert allocation.placement is Placement.COPY
        assert allocation.capacity == 64
        assert "casa" in allocation.describe()
