"""Tests for repro.traces.memory_object."""

import pytest

from repro.errors import TraceError
from repro.traces.memory_object import Fragment, JumpKind, MemoryObject


class TestFragment:
    def test_empty_range_rejected(self):
        with pytest.raises(TraceError):
            Fragment(block="b", start=3, end=3)

    def test_negative_start_rejected(self):
        with pytest.raises(TraceError):
            Fragment(block="b", start=-1, end=2)

    def test_jump_and_target_must_pair(self):
        with pytest.raises(TraceError):
            Fragment(block="b", start=0, end=2,
                     appended_jump=JumpKind.ALWAYS)
        with pytest.raises(TraceError):
            Fragment(block="b", start=0, end=2, jump_target="x")

    def test_sizes_without_jump(self):
        fragment = Fragment(block="b", start=0, end=3)
        assert fragment.num_instructions == 3
        assert fragment.num_words_with_jump == 3
        assert fragment.size == 12

    def test_sizes_with_jump(self):
        fragment = Fragment(block="b", start=0, end=3,
                            appended_jump=JumpKind.ON_FALLTHROUGH,
                            jump_target="c")
        assert fragment.num_words_with_jump == 4
        assert fragment.size == 16


class TestMemoryObject:
    def make(self, fragments=None, line_size=16):
        if fragments is None:
            fragments = [Fragment(block="b", start=0, end=3)]
        return MemoryObject(name="T0", fragments=fragments,
                            line_size=line_size)

    def test_needs_fragments(self):
        with pytest.raises(TraceError):
            MemoryObject(name="T0", fragments=[], line_size=16)

    def test_line_size_sanity(self):
        with pytest.raises(TraceError):
            self.make(line_size=2)

    def test_unpadded_size(self):
        mo = self.make([
            Fragment(block="a", start=0, end=3),
            Fragment(block="b", start=0, end=2,
                     appended_jump=JumpKind.ON_FALLTHROUGH,
                     jump_target="c"),
        ])
        assert mo.unpadded_size == 12 + 12

    def test_padded_size_rounds_to_line(self):
        mo = self.make([Fragment(block="a", start=0, end=3)])  # 12 bytes
        assert mo.padded_size == 16
        assert mo.num_lines == 1

    def test_padded_size_exact_multiple(self):
        mo = self.make([Fragment(block="a", start=0, end=4)])  # 16 bytes
        assert mo.padded_size == 16

    def test_block_names_deduplicated_in_order(self):
        mo = self.make([
            Fragment(block="a", start=0, end=2),
            Fragment(block="a", start=2, end=4),
            Fragment(block="b", start=0, end=1),
        ])
        assert mo.block_names == ["a", "b"]

    def test_describe_mentions_sizes(self):
        text = self.make().describe()
        assert "12B" in text and "16B" in text
