"""Shared fixtures for the test suite.

Expensive artefacts (profiled workbenches) are session-scoped; most
tests work on the `tiny` workload or hand-built programs so the suite
stays fast.
"""

from __future__ import annotations

import pytest

from repro import Workbench, WorkbenchConfig, get_workload
from repro.isa import make_alu, make_branch, make_jump, make_return
from repro.memory.cache import CacheConfig
from repro.program.basicblock import BasicBlock
from repro.program.behavior import FixedTrip
from repro.program.function import Function
from repro.program.program import Program
from repro.traces.tracegen import TraceGenConfig


def make_loop_program(trip: int = 10, body_instructions: int = 6,
                      name: str = "looper") -> Program:
    """A single-function program with one counted loop.

    Layout: entry block -> loop body (with back-edge) -> exit block.
    """
    blocks = [
        BasicBlock(
            name="main.entry",
            instructions=[make_alu() for _ in range(4)],
            fallthrough="main.loop",
        ),
        BasicBlock(
            name="main.loop",
            instructions=[make_alu() for _ in range(body_instructions)]
            + [make_branch("main.loop")],
            fallthrough="main.exit",
            behavior=FixedTrip(trip),
        ),
        BasicBlock(
            name="main.exit",
            instructions=[make_alu(), make_alu(), make_return()],
        ),
    ]
    return Program([Function("main", blocks)], entry="main", name=name)


@pytest.fixture
def loop_program() -> Program:
    """A small single-loop program."""
    return make_loop_program()


@pytest.fixture(scope="session")
def tiny_workbench() -> Workbench:
    """A profiled workbench of the `tiny` workload."""
    workload = get_workload("tiny")
    config = WorkbenchConfig(
        cache=workload.cache,
        tracegen=TraceGenConfig(line_size=16, max_trace_size=64),
    )
    return Workbench(workload.program, config)


@pytest.fixture(scope="session")
def adpcm_workbench() -> Workbench:
    """A profiled workbench of a scaled-down adpcm workload."""
    workload = get_workload("adpcm", scale=0.2)
    config = WorkbenchConfig(
        cache=workload.cache,
        tracegen=TraceGenConfig(line_size=16, max_trace_size=64),
    )
    return Workbench(workload.program, config)


@pytest.fixture(scope="session")
def mpeg_workbench() -> Workbench:
    """A profiled workbench of a scaled-down mpeg workload."""
    workload = get_workload("mpeg", scale=0.1)
    config = WorkbenchConfig(
        cache=workload.cache,
        tracegen=TraceGenConfig(line_size=16, max_trace_size=128),
    )
    return Workbench(workload.program, config)


@pytest.fixture
def small_cache() -> CacheConfig:
    """A 128-byte direct-mapped cache with 16-byte lines."""
    return CacheConfig(size=128, line_size=16, associativity=1)
