"""Tests for repro.analysis.setpressure."""

import pytest

from repro.analysis import (
    cache_set_pressure,
    render_pressure_table,
)
from repro.memory.cache import CacheConfig
from repro.traces.layout import LinkedImage


class TestSetPressure:
    def test_total_weight_conserved(self, adpcm_workbench):
        bench = adpcm_workbench
        cache = bench.config.cache
        image = LinkedImage(bench.program, bench.memory_objects)
        pressures = cache_set_pressure(image, cache,
                                       bench.conflict_graph)
        assert len(pressures) == cache.num_sets
        total_weight = sum(
            sum(p.occupants.values()) for p in pressures
        )
        total_fetches = sum(
            node.fetches for node in bench.conflict_graph.nodes()
        )
        assert total_weight == pytest.approx(total_fetches)

    def test_spm_resident_objects_excluded(self, adpcm_workbench):
        bench = adpcm_workbench
        result = bench.run_casa(128)
        image = LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=result.allocation.spm_resident, spm_size=128,
        )
        pressures = cache_set_pressure(image, bench.config.cache,
                                       bench.conflict_graph)
        occupants = {
            name for p in pressures for name in p.occupants
        }
        assert not occupants & set(result.allocation.spm_resident)

    def test_pressure_zero_for_single_occupant(self):
        from repro.analysis.setpressure import SetPressure
        single = SetPressure(0, {"A": 500.0})
        assert single.pressure == 0.0
        contested = SetPressure(1, {"A": 500.0, "B": 300.0})
        assert contested.pressure == pytest.approx(300.0)
        assert contested.num_hot_occupants == 2

    def test_thrashing_sets_have_pressure(self, adpcm_workbench):
        """adpcm thrashes its 128 B cache, so some sets are contended."""
        bench = adpcm_workbench
        image = LinkedImage(bench.program, bench.memory_objects)
        pressures = cache_set_pressure(image, bench.config.cache,
                                       bench.conflict_graph)
        assert max(p.pressure for p in pressures) > 0

    def test_render(self, adpcm_workbench):
        bench = adpcm_workbench
        image = LinkedImage(bench.program, bench.memory_objects)
        pressures = cache_set_pressure(image, bench.config.cache,
                                       bench.conflict_graph)
        text = render_pressure_table(pressures, top=5)
        assert "contended cache sets" in text
        assert len(text.splitlines()) <= 5 + 5  # header + rows
