"""Tests for the Ross loop-cache allocator."""

import pytest

from repro.core.allocation import AllocationContext
from repro.core.ross import RossLoopCacheAllocator
from repro.memory.loopcache import LoopCacheConfig
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.core.conflict_graph import ConflictGraph
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.memory.cache import CacheConfig
from repro.workloads import get_workload

from tests.conftest import make_loop_program


def setup(program, cache=None, min_ft=1):
    execution = execute_program(program)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=1 << 20,
                       min_fallthrough_count=min_ft),
    )
    image = LinkedImage(program, mos)
    cache_config = cache or CacheConfig(size=128, line_size=16,
                                        associativity=1)
    report = simulate(image, HierarchyConfig(cache=cache_config),
                      execution.block_sequence)
    graph = ConflictGraph.from_simulation(mos, report)
    return program, mos, image, graph


class TestCandidates:
    def test_loop_and_function_candidates(self):
        # split every block into its own trace so the loop region's
        # span differs from the whole-function span
        program, mos, image, graph = setup(make_loop_program(trip=50),
                                           min_ft=10**9)
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=4096, max_regions=4))
        candidates = allocator.candidate_regions(program, mos, image,
                                                 graph)
        names = {c.region.name for c in candidates}
        assert any(name.startswith("loop:") for name in names)
        assert any(name.startswith("func:") for name in names)

    def test_oversized_regions_excluded(self):
        program, mos, image, graph = setup(make_loop_program(trip=50))
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=16, max_regions=4))
        candidates = allocator.candidate_regions(program, mos, image,
                                                 graph)
        assert all(c.region.size <= 16 for c in candidates)

    def test_never_executed_regions_excluded(self):
        workload = get_workload("adpcm", scale=0.05)
        program, mos, image, graph = setup(
            workload.program, cache=workload.cache)
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=4096, max_regions=8))
        candidates = allocator.candidate_regions(program, mos, image,
                                                 graph)
        assert all(c.fetches > 0 for c in candidates)


class TestAllocation:
    def test_respects_region_table_limit(self):
        workload = get_workload("g721", scale=0.05)
        program, mos, image, graph = setup(
            workload.program, cache=workload.cache)
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=4096, max_regions=2))
        allocation = allocator.allocate(
            graph, context=AllocationContext(
                program=program, memory_objects=mos, image=image))
        assert len(allocation.loop_regions) <= 2

    def test_respects_capacity(self):
        workload = get_workload("g721", scale=0.05)
        program, mos, image, graph = setup(
            workload.program, cache=workload.cache)
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=256, max_regions=4))
        allocation = allocator.allocate(
            graph, context=AllocationContext(
                program=program, memory_objects=mos, image=image))
        assert allocation.used_bytes <= 256
        assert allocation.capacity == 256

    def test_no_overlapping_regions(self):
        workload = get_workload("adpcm", scale=0.05)
        program, mos, image, graph = setup(
            workload.program, cache=workload.cache)
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=1024, max_regions=4))
        allocation = allocator.allocate(
            graph, context=AllocationContext(
                program=program, memory_objects=mos, image=image))
        regions = list(allocation.loop_regions)
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                assert a.end <= b.start or b.end <= a.start

    def test_greedy_prefers_denser_regions(self):
        program, mos, image, graph = setup(make_loop_program(trip=100))
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=4096, max_regions=1))
        allocation = allocator.allocate(
            graph, context=AllocationContext(
                program=program, memory_objects=mos, image=image))
        assert len(allocation.loop_regions) == 1
        # the loop body is the densest candidate
        assert allocation.loop_regions[0].name.startswith("loop:")

    def test_metadata(self):
        program, mos, image, graph = setup(make_loop_program())
        allocator = RossLoopCacheAllocator(
            LoopCacheConfig(size=1024, max_regions=4))
        allocation = allocator.allocate(
            graph, context=AllocationContext(
                program=program, memory_objects=mos, image=image))
        assert allocation.algorithm == "ross"
        assert allocation.spm_resident == frozenset()
        assert "regions" in allocation.describe()
