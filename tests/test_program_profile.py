"""Tests for repro.program.profile."""

from collections import Counter

from repro.program.executor import execute_program
from repro.program.profile import ProfileData

from tests.conftest import make_loop_program


class TestProfileData:
    def test_zero_defaults(self):
        profile = ProfileData()
        assert profile.block_count("anything") == 0
        assert profile.edge_count("a", "b") == 0
        assert profile.total_block_executions == 0

    def test_hottest_blocks_order(self):
        profile = ProfileData(
            block_counts=Counter({"a": 5, "b": 20, "c": 1})
        )
        assert profile.hottest_blocks() == [("b", 20), ("a", 5), ("c", 1)]
        assert profile.hottest_blocks(limit=1) == [("b", 20)]

    def test_merge_sums_counts(self):
        one = execute_program(make_loop_program(trip=3)).profile
        two = execute_program(make_loop_program(trip=3)).profile
        merged = one.merge(two)
        assert merged.block_count("main.loop") == 6
        assert merged.edge_count("main.loop", "main.loop") == 4
        # originals untouched
        assert one.block_count("main.loop") == 3

    def test_fallthrough_count(self):
        program = make_loop_program(trip=4)
        profile = execute_program(program).profile
        loop_block = program.block("main.loop")
        assert profile.fallthrough_count(loop_block) == 1

    def test_total_block_executions(self):
        profile = execute_program(make_loop_program(trip=5)).profile
        assert profile.total_block_executions == 1 + 5 + 1
