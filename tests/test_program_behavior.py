"""Tests for repro.program.behavior."""

import pytest

from repro.program.behavior import (
    AlwaysTaken,
    FixedTrip,
    NeverTaken,
    TakenProbability,
)
from repro.utils.rng import DeterministicRng


class TestFixedTrip:
    def test_pattern(self):
        rng = DeterministicRng(0)
        behavior = FixedTrip(4)
        outcomes = [behavior.next_outcome(rng) for _ in range(8)]
        # taken 3x, fall through, repeat
        assert outcomes == [True, True, True, False] * 2

    def test_trip_one_never_taken(self):
        rng = DeterministicRng(0)
        behavior = FixedTrip(1)
        assert [behavior.next_outcome(rng) for _ in range(3)] == [False] * 3

    def test_reset(self):
        rng = DeterministicRng(0)
        behavior = FixedTrip(3)
        behavior.next_outcome(rng)
        behavior.reset()
        outcomes = [behavior.next_outcome(rng) for _ in range(3)]
        assert outcomes == [True, True, False]

    def test_clone_fresh_state(self):
        rng = DeterministicRng(0)
        behavior = FixedTrip(2)
        behavior.next_outcome(rng)
        clone = behavior.clone()
        assert clone is not behavior
        assert clone.next_outcome(rng) is True  # fresh counter

    def test_rejects_zero_trip(self):
        with pytest.raises(ValueError):
            FixedTrip(0)


class TestTakenProbability:
    def test_extremes(self):
        rng = DeterministicRng(0)
        assert all(
            TakenProbability(1.0).next_outcome(rng) for _ in range(20)
        )
        assert not any(
            TakenProbability(0.0).next_outcome(rng) for _ in range(20)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TakenProbability(-0.1)
        with pytest.raises(ValueError):
            TakenProbability(1.1)

    def test_stateless_clone(self):
        behavior = TakenProbability(0.5)
        assert behavior.clone() is behavior


class TestConstants:
    def test_always(self):
        rng = DeterministicRng(0)
        assert AlwaysTaken().next_outcome(rng)

    def test_never(self):
        rng = DeterministicRng(0)
        assert not NeverTaken().next_outcome(rng)

    def test_reprs(self):
        assert "FixedTrip(3)" == repr(FixedTrip(3))
        assert "TakenProbability(0.5)" == repr(TakenProbability(0.5))
