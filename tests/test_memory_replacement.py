"""Tests for repro.memory.replacement."""

import pickle

import pytest

from repro.errors import ConfigurationError, UnknownPolicyError
from repro.memory.replacement import (
    NEVER,
    POLICIES,
    ArcPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    OptOracle,
    OptPolicy,
    RandomPolicy,
    TwoQPolicy,
    available_policies,
    make_policy,
)
from repro.utils.rng import DeterministicRng


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy(3)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_fill(2)
        policy.on_hit(0)  # refresh way 0
        assert policy.victim() == 1

    def test_fill_refreshes(self):
        policy = LruPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_fill(0)
        assert policy.victim() == 1


class TestFifo:
    def test_hit_does_not_refresh(self):
        policy = FifoPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_hit(0)
        assert policy.victim() == 0

    def test_fill_order(self):
        policy = FifoPolicy(3)
        for way in (2, 0, 1):
            policy.on_fill(way)
        assert policy.victim() == 2


class TestRandom:
    def test_victim_in_range_and_deterministic(self):
        a = RandomPolicy(4, DeterministicRng(5))
        b = RandomPolicy(4, DeterministicRng(5))
        victims_a = [a.victim() for _ in range(20)]
        victims_b = [b.victim() for _ in range(20)]
        assert victims_a == victims_b
        assert all(0 <= v < 4 for v in victims_a)


class TestLfu:
    def test_victim_is_least_frequent(self):
        policy = LfuPolicy(3)
        for way in (0, 1, 2):
            policy.on_fill(way)
        policy.on_hit(0)
        policy.on_hit(0)
        policy.on_hit(2)
        assert policy.victim() == 1

    def test_lru_breaks_frequency_ties(self):
        policy = LfuPolicy(3)
        for way in (0, 1, 2):
            policy.on_fill(way)
        # All counts equal; way 0 is the least recently touched.
        assert policy.victim() == 0
        policy.on_hit(0)  # refreshes recency but also bumps count
        assert policy.victim() == 1

    def test_fill_resets_count(self):
        policy = LfuPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_hit(0)
        policy.on_hit(0)
        policy.on_fill(1)  # new line in way 1, count back to 1
        assert policy.victim() == 1

    def test_state_is_lru_first_pairs(self):
        policy = LfuPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_hit(0)
        assert policy.state() == (1, 1, 0, 2)


class TestTwoQ:
    def test_once_seen_ways_evict_first(self):
        policy = TwoQPolicy(4)  # kin = 1
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_hit(1)  # promotes way 1 to Am
        # A1 holds [0, 2, 3] > kin, so its head evicts first.
        assert policy.victim() == 0

    def test_am_evicts_lru_when_a1_drained(self):
        policy = TwoQPolicy(2)  # kin = 1
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_hit(0)
        policy.on_hit(1)  # both promoted: A1 empty, Am = [0, 1]
        assert policy.victim() == 0
        policy.on_hit(0)  # Am order now [1, 0]
        assert policy.victim() == 1

    def test_state_carries_a1_length(self):
        policy = TwoQPolicy(4)
        for way in (0, 1, 2):
            policy.on_fill(way)
        policy.on_hit(1)
        assert policy.state() == (2, 0, 2, 1)


class TestArc:
    def test_is_line_aware(self):
        assert ArcPolicy.line_aware
        assert not LruPolicy.line_aware

    def test_ghost_hit_adapts_partition(self):
        policy = ArcPolicy(2)
        # Fill two lines, evict one, then miss on its ghost: p grows.
        for line, way in ((10, 0), (11, 1)):
            policy.note_access(line)
            policy.note_miss(line)
            policy.on_fill(way)
            policy.note_fill(way, line)
        policy.note_access(12)
        policy.note_miss(12)
        victim = policy.victim()
        policy.note_evict(10 if victim == 0 else 11)
        policy.on_fill(victim)
        policy.note_fill(victim, 12)
        evicted = 10 if victim == 0 else 11
        before = policy.state()[0]
        policy.note_access(evicted)
        policy.note_miss(evicted)  # recency-ghost hit
        assert policy.state()[0] > before

    def test_behaves_like_lru_without_reuse(self):
        # A pure scan (no hits, no ghost hits) evicts in fill order.
        policy = ArcPolicy(2)
        for line, way in ((1, 0), (2, 1)):
            policy.note_access(line)
            policy.note_miss(line)
            policy.on_fill(way)
            policy.note_fill(way, line)
        policy.note_access(3)
        policy.note_miss(3)
        assert policy.victim() == 0


class TestOpt:
    def test_oracle_tracks_next_use(self):
        oracle = OptOracle([5, 6, 5, 7])
        oracle.advance(5)
        assert oracle.next_use(5) == 2
        assert oracle.next_use(6) == 1
        assert oracle.next_use(7) == 3
        oracle.advance(6)
        oracle.advance(5)
        assert oracle.next_use(5) == NEVER

    def test_victim_is_farthest_next_use(self):
        # Trace: 0 1 2 0 1 ...; at the miss on line 2, line 0 is used
        # at position 3 and line 1 at position 4 — Belady evicts 1.
        trace = [0, 1, 2, 0, 1]
        policy = OptPolicy(2)
        policy.attach(OptOracle(trace))
        for line, way in ((0, 0), (1, 1)):
            policy.note_access(line)
            policy.note_miss(line)
            policy.on_fill(way)
            policy.note_fill(way, line)
        policy.note_access(2)
        policy.note_miss(2)
        assert policy.victim() == 1

    def test_requires_oracle(self):
        policy = OptPolicy(2)
        with pytest.raises(ConfigurationError):
            policy.note_access(0)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru", 2), LruPolicy)
        assert isinstance(make_policy("FIFO", 2), FifoPolicy)
        assert isinstance(make_policy("random", 2), RandomPolicy)
        assert isinstance(make_policy("lfu", 2), LfuPolicy)
        assert isinstance(make_policy("2q", 2), TwoQPolicy)
        assert isinstance(make_policy("arc", 2), ArcPolicy)
        assert isinstance(make_policy("opt", 2), OptPolicy)

    def test_registry_and_listing_agree(self):
        assert available_policies() == tuple(sorted(POLICIES))

    def test_unknown_name(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            make_policy("plru", 2)
        assert excinfo.value.name == "plru"
        assert excinfo.value.choices == available_policies()
        assert "lfu" in str(excinfo.value)

    def test_unknown_name_error_pickles(self):
        error = UnknownPolicyError("plru", available_policies())
        clone = pickle.loads(pickle.dumps(error))
        assert clone.name == "plru"
        assert clone.choices == available_policies()

    def test_way_count_validated(self):
        with pytest.raises(ConfigurationError):
            LruPolicy(0)
