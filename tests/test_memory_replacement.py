"""Tests for repro.memory.replacement."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.utils.rng import DeterministicRng


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy(3)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_fill(2)
        policy.on_hit(0)  # refresh way 0
        assert policy.victim() == 1

    def test_fill_refreshes(self):
        policy = LruPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_fill(0)
        assert policy.victim() == 1


class TestFifo:
    def test_hit_does_not_refresh(self):
        policy = FifoPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_hit(0)
        assert policy.victim() == 0

    def test_fill_order(self):
        policy = FifoPolicy(3)
        for way in (2, 0, 1):
            policy.on_fill(way)
        assert policy.victim() == 2


class TestRandom:
    def test_victim_in_range_and_deterministic(self):
        a = RandomPolicy(4, DeterministicRng(5))
        b = RandomPolicy(4, DeterministicRng(5))
        victims_a = [a.victim() for _ in range(20)]
        victims_b = [b.victim() for _ in range(20)]
        assert victims_a == victims_b
        assert all(0 <= v < 4 for v in victims_a)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru", 2), LruPolicy)
        assert isinstance(make_policy("FIFO", 2), FifoPolicy)
        assert isinstance(make_policy("random", 2), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("plru", 2)

    def test_way_count_validated(self):
        with pytest.raises(ConfigurationError):
            LruPolicy(0)
