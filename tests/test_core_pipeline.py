"""Tests for repro.core.pipeline (the end-to-end workbench)."""

import pytest

from repro.core.casa import CasaAllocator, CasaConfig
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.core.pipeline import Workbench, WorkbenchConfig
from repro.traces.tracegen import TraceGenConfig

from tests.conftest import make_loop_program


class TestWorkbenchConfig:
    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkbenchConfig(
                cache=CacheConfig(size=128, line_size=16),
                tracegen=TraceGenConfig(line_size=32),
            )


class TestWorkbench:
    def make(self, trip=200):
        program = make_loop_program(trip=trip, body_instructions=20)
        return Workbench(program, WorkbenchConfig(
            cache=CacheConfig(size=64, line_size=16, associativity=1),
            tracegen=TraceGenConfig(line_size=16, max_trace_size=64),
        ))

    def test_baseline_identities(self):
        bench = self.make()
        assert bench.baseline_report.check_identities()
        assert bench.baseline_report.spm_accesses == 0

    def test_conflict_graph_f_equals_fetches(self):
        bench = self.make()
        for node in bench.conflict_graph.nodes():
            stats = bench.baseline_report.mo_stats.get(node.name)
            if stats is not None:
                assert node.fetches == stats.fetches

    def test_baseline_result_energy_positive(self):
        result = self.make().baseline_result()
        assert result.total_energy > 0
        assert result.allocation.algorithm == "cache-only"

    def test_run_casa_improves_or_matches_baseline(self):
        bench = self.make()
        base = bench.baseline_result().total_energy
        result = bench.run_casa(64)
        assert result.total_energy <= base * 1.001

    def test_fetch_counts_invariant_across_allocations(self):
        """f_i does not depend on the hierarchy (paper, eq. 4)."""
        bench = self.make()
        casa = bench.run_casa(64)
        steinke = bench.run_steinke(64)
        assert casa.report.total_fetches == \
            bench.baseline_report.total_fetches
        assert steinke.report.total_fetches == \
            bench.baseline_report.total_fetches

    def test_spm_energy_model_depends_on_size(self):
        bench = self.make()
        small = bench.spm_energy_model(64)
        large = bench.spm_energy_model(4096)
        assert small.spm_access < large.spm_access
        assert small.cache_hit == large.cache_hit

    def test_run_greedy(self):
        bench = self.make()
        result = bench.run_greedy(64)
        assert result.allocation.algorithm == "greedy-casa"
        assert result.report.check_identities()

    def test_run_ross(self):
        bench = self.make()
        result = bench.run_ross(128)
        assert result.allocation.algorithm == "ross"
        assert result.report.lc_controller_checks > 0

    def test_custom_casa_allocator(self):
        bench = self.make()
        allocator = CasaAllocator(CasaConfig(conflict_term=False))
        result = bench.run_casa(64, allocator=allocator)
        assert result.report.check_identities()

    def test_memory_objects_property_copies(self):
        bench = self.make()
        mos = bench.memory_objects
        mos.clear()
        assert bench.memory_objects
