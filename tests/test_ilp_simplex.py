"""Tests for the pure-Python simplex backend, cross-validated against
the HiGHS backend on random LPs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.model import Model, Sense, SolveStatus
from repro.ilp.scipy_backend import LpRelaxationSolver
from repro.ilp.simplex import SimplexLpSolver


class TestBasics:
    def test_simple_maximisation(self):
        model = Model("m", Sense.MAXIMIZE)
        x = model.add_variable("x", 0, 4)
        y = model.add_variable("y", 0, 4)
        model.add_constraint(x + y <= 6)
        model.set_objective(x + 2 * y)
        solution = SimplexLpSolver(model).solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(10.0)

    def test_equality_constraint(self):
        model = Model()
        x = model.add_variable("x", 0, 10)
        y = model.add_variable("y", 0, 10)
        model.add_constraint(x + y == 7)
        model.set_objective(x)
        solution = SimplexLpSolver(model).solve()
        assert solution.objective == pytest.approx(0.0)
        assert solution.values[y] == pytest.approx(7.0)

    def test_infeasible(self):
        model = Model()
        x = model.add_variable("x", 0, 1)
        model.add_constraint(x >= 2)
        model.set_objective(x)
        assert SimplexLpSolver(model).solve().status is \
            SolveStatus.INFEASIBLE

    def test_unbounded(self):
        model = Model("u", Sense.MAXIMIZE)
        x = model.add_variable("x")
        model.set_objective(x)
        assert SimplexLpSolver(model).solve().status is \
            SolveStatus.UNBOUNDED

    def test_shifted_lower_bounds(self):
        model = Model()
        x = model.add_variable("x", 3, 10)
        model.set_objective(x)
        solution = SimplexLpSolver(model).solve()
        assert solution.values[x] == pytest.approx(3.0)

    def test_bound_overrides(self):
        model = Model("m", Sense.MAXIMIZE)
        x = model.add_variable("x", 0, 10)
        model.set_objective(x)
        solver = SimplexLpSolver(model)
        assert solver.solve({x: (2.0, 5.0)}).objective == \
            pytest.approx(5.0)

    def test_contradictory_override(self):
        model = Model()
        x = model.add_variable("x", 0, 10)
        model.set_objective(x)
        assert SimplexLpSolver(model).solve({x: (6.0, 5.0)}).status is \
            SolveStatus.INFEASIBLE

    def test_degenerate_redundant_constraints(self):
        model = Model()
        x = model.add_variable("x", 0, 5)
        model.add_constraint(x <= 3)
        model.add_constraint(x <= 3)
        model.add_constraint(2 * x <= 6)
        model.set_objective(-1 * x)
        solution = SimplexLpSolver(model).solve()
        assert solution.values[x] == pytest.approx(3.0)


@st.composite
def random_lp(draw):
    """A random bounded-feasible LP (bounded box keeps it bounded)."""
    num_vars = draw(st.integers(1, 4))
    num_cons = draw(st.integers(0, 4))
    model = Model("rand", draw(st.sampled_from(list(Sense))))
    variables = []
    for i in range(num_vars):
        low = draw(st.integers(0, 3))
        high = low + draw(st.integers(0, 6))
        variables.append(model.add_variable(f"x{i}", low, high))
    coef = st.integers(-4, 4)
    for j in range(num_cons):
        row = [draw(coef) for _ in variables]
        rhs = draw(st.integers(-10, 30))
        expr = sum((c * v for c, v in zip(row, variables)),
                   start=0 * variables[0])
        if draw(st.booleans()):
            model.add_constraint(expr <= rhs)
        else:
            model.add_constraint(expr >= rhs)
    objective = sum(
        (draw(coef) * v for v in variables), start=0 * variables[0]
    )
    model.set_objective(objective)
    return model


class TestAgainstHighs:
    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_backend(self, model):
        ours = SimplexLpSolver(model).solve()
        reference = LpRelaxationSolver(model).solve()
        assert ours.status is reference.status
        if reference.status is SolveStatus.OPTIMAL:
            assert ours.objective == pytest.approx(
                reference.objective, abs=1e-6
            )


class TestBranchAndBoundOnSimplex:
    def test_knapsack_via_simplex_backend(self):
        model = Model("knap", Sense.MAXIMIZE)
        x = [model.add_binary(f"x{i}") for i in range(5)]
        sizes = [3, 4, 5, 2, 3]
        profits = [4, 5, 6, 2, 4]
        model.add_constraint(
            sum((s * v for s, v in zip(sizes, x)), start=0 * x[0]) <= 8
        )
        model.set_objective(
            sum((p * v for p, v in zip(profits, x)), start=0 * x[0])
        )
        simplex_result = model.solve(
            BranchAndBoundSolver(lp_factory=SimplexLpSolver)
        )
        highs_result = model.solve(BranchAndBoundSolver())
        assert simplex_result.status is SolveStatus.OPTIMAL
        assert simplex_result.objective == pytest.approx(
            highs_result.objective
        )
