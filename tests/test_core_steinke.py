"""Tests for the Steinke baseline allocator."""

import pytest

from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.steinke import SteinkeAllocator
from repro.energy.model import EnergyModel
from repro.traces.layout import Placement

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def make_graph(nodes, edges=()):
    graph = ConflictGraph()
    for name, fetches, size in nodes:
        graph.add_node(ConflictNode(name, fetches=fetches, size=size))
    for victim, evictor, weight in edges:
        graph.add_edge(victim, evictor, weight)
    return graph


class TestSelection:
    def test_picks_by_fetch_count_not_conflicts(self):
        """The defining blindness: conflicts do not matter to Steinke."""
        graph = make_graph(
            [("hot", 1000, 64), ("thrasher", 500, 64)],
            [("thrasher", "hot", 10_000)],
        )
        allocation = SteinkeAllocator().allocate(graph, 64, MODEL)
        assert allocation.spm_resident == {"hot"}

    def test_knapsack_combination(self):
        graph = make_graph(
            [("a", 600, 64), ("b", 500, 32), ("c", 450, 32)],
        )
        allocation = SteinkeAllocator().allocate(graph, 64, MODEL)
        # two small objects beat the single big one (950 > 600 fetches)
        assert allocation.spm_resident == {"b", "c"}

    def test_zero_capacity(self):
        graph = make_graph([("a", 100, 32)])
        allocation = SteinkeAllocator().allocate(graph, 0, MODEL)
        assert allocation.spm_resident == frozenset()

    def test_never_fetched_object_not_selected(self):
        graph = make_graph([("cold", 0, 16), ("warm", 10, 16)])
        allocation = SteinkeAllocator().allocate(graph, 64, MODEL)
        assert allocation.spm_resident == {"warm"}


class TestSemantics:
    def test_move_placement(self):
        graph = make_graph([("a", 100, 32)])
        allocation = SteinkeAllocator().allocate(graph, 64, MODEL)
        assert allocation.placement is Placement.COMPACT

    def test_predicted_energy_is_cache_blind(self):
        graph = make_graph(
            [("a", 100, 32), ("b", 50, 32)],
            [("a", "b", 1000)],  # ignored by the predictor
        )
        allocation = SteinkeAllocator().allocate(graph, 32, MODEL)
        # baseline: all fetches at hit cost; saving: f_a * (hit - spm)
        expected = (100 + 50) * 1.0 - 100 * (1.0 - 0.5)
        assert allocation.predicted_energy == pytest.approx(expected)

    def test_metadata(self):
        graph = make_graph([("a", 100, 32)])
        allocation = SteinkeAllocator().allocate(graph, 64, MODEL)
        assert allocation.algorithm == "steinke"
        assert allocation.used_bytes == 32
