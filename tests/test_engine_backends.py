"""Contract and spec tests of the pluggable storage backends."""

from __future__ import annotations

import os
import pickle
import time

import pytest

import repro.engine.store as store_module
from repro.engine.store import (
    SWEEP_MARKER,
    ArtifactStore,
    DiskBackend,
    KeyValueBackend,
    MemoryBackend,
    StorageBackend,
    available_backends,
    default_store,
    make_backend,
    register_backend,
    set_default_store,
)
from repro.errors import ConfigurationError, UnknownBackendError
from repro.obs.metrics import MetricsRegistry, set_registry

BACKEND_FACTORIES = {
    "memory": lambda tmp: MemoryBackend(),
    "disk": lambda tmp: DiskBackend(tmp / "cache"),
    "kv": lambda tmp: KeyValueBackend(),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request, tmp_path):
    """One instance of each backend implementation."""
    return BACKEND_FACTORIES[request.param](tmp_path)


class TestStorageBackendContract:
    """Every implementation honours the same protocol semantics."""

    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)
        assert isinstance(backend.name, str) and backend.name

    def test_miss_then_roundtrip(self, backend):
        assert backend.get("trace", "d1") is None
        assert backend.stats.misses == 1
        backend.put("trace", "d1", {"payload": [1, 2]})
        assert backend.get("trace", "d1") == {"payload": [1, 2]}
        assert backend.stats.hits == 1
        assert backend.stats.puts == 1

    def test_keys_are_stage_and_digest(self, backend):
        backend.put("trace", "d1", "a")
        assert backend.get("graph", "d1") is None
        assert backend.get("trace", "d2") is None

    def test_entries_sorted(self, backend):
        backend.put("graph", "b", 1)
        backend.put("trace", "a", 2)
        backend.put("graph", "a", 3)
        assert backend.entries() == [
            ("graph", "a"), ("graph", "b"), ("trace", "a")]

    def test_usage_counts_entries(self, backend):
        assert backend.usage()[0] == 0
        backend.put("trace", "d1", "x")
        backend.put("trace", "d2", "y")
        count, total_bytes = backend.usage()
        assert count == 2
        assert total_bytes >= 0

    def test_delete(self, backend):
        backend.put("trace", "d1", "x")
        assert backend.delete("trace", "d1") is True
        assert backend.delete("trace", "d1") is False
        assert backend.get("trace", "d1") is None
        assert backend.entries() == []

    def test_overwrite_keeps_one_entry(self, backend):
        backend.put("trace", "d1", "old")
        backend.put("trace", "d1", "new")
        assert backend.get("trace", "d1") == "new"
        assert backend.usage()[0] == 1

    def test_clear(self, backend):
        backend.put("trace", "d1", "x")
        backend.put("graph", "d2", "y")
        assert backend.clear() == 2
        assert backend.entries() == []

    def test_per_backend_metrics(self, backend):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            backend.put("trace", "d1", "x")
            backend.get("trace", "d1")
            backend.get("trace", "nope")
        finally:
            set_registry(previous)
        name = backend.name
        assert registry.value(f"store.backend.{name}.puts") == 1
        assert registry.value(f"store.backend.{name}.hits") == 1
        assert registry.value(f"store.backend.{name}.misses") == 1


class TestMemoryByteBudget:
    """Byte-budget admission and eviction of the memory backend."""

    def test_oversized_artifact_is_not_admitted(self):
        backend = MemoryBackend(max_bytes=64)
        backend.put("trace", "big", "x" * 4096)
        assert backend.get("trace", "big") is None
        assert backend.usage() == (0, 0)
        assert backend.stats.puts == 0

    def test_budget_evicts_from_lru_tail(self):
        small = b"a" * 100
        size = len(pickle.dumps(small))
        backend = MemoryBackend(max_bytes=2 * size + 8)
        backend.put("s", "a", small)
        backend.put("s", "b", b"b" * 100)
        assert backend.usage()[0] == 2
        backend.put("s", "c", b"c" * 100)
        assert backend.stats.evictions >= 1
        assert backend.get("s", "a") is None
        assert backend.get("s", "c") is not None

    def test_without_budget_no_sizing(self):
        backend = MemoryBackend()
        backend.put("s", "a", "x" * 4096)
        assert backend.usage() == (1, 0)


class TestDiskCompatibility:
    """DiskBackend is bit-compatible with the legacy store layout."""

    def test_store_written_entries_readable_by_backend(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("trace", "deadbeef", ["obj1", "obj2"])
        backend = DiskBackend(tmp_path)
        assert backend.get("trace", "deadbeef") == ["obj1", "obj2"]
        assert backend.entries() == [("trace", "deadbeef")]

    def test_backend_written_entries_readable_by_store(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put("graph", "feed", {"n": 1})
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.get("graph", "feed") == {"n": 1}
        assert store.stats.disk_hits == 1


class TestOrphanSweepRateLimit:
    """The orphan-temp sweep runs at most once per interval."""

    def _orphan(self, directory):
        path = directory / f"trace-d1.pkl.tmp.{os.getpid() + 1}"
        path.write_bytes(b"partial")
        return path

    def test_first_open_sweeps_and_stamps_marker(self, tmp_path):
        orphan = self._orphan(tmp_path)
        DiskBackend(tmp_path)
        assert not orphan.exists()
        assert (tmp_path / SWEEP_MARKER).is_file()

    def test_second_open_within_interval_skips(self, tmp_path):
        DiskBackend(tmp_path)
        orphan = self._orphan(tmp_path)
        DiskBackend(tmp_path)
        assert orphan.exists()

    def test_force_sweeps_despite_marker(self, tmp_path):
        backend = DiskBackend(tmp_path)
        orphan = self._orphan(tmp_path)
        backend.sweep_orphans(force=True)
        assert not orphan.exists()

    def test_stale_marker_allows_sweep(self, tmp_path):
        backend = DiskBackend(tmp_path, sweep_interval_s=0.01)
        orphan = self._orphan(tmp_path)
        marker = tmp_path / SWEEP_MARKER
        stale = time.time() - 10.0
        os.utime(marker, (stale, stale))
        backend.sweep_orphans()
        assert not orphan.exists()

    def test_own_pid_temp_is_left_alone(self, tmp_path):
        inflight = tmp_path / f"trace-d1.pkl.tmp.{os.getpid()}"
        inflight.write_bytes(b"in flight")
        DiskBackend(tmp_path).sweep_orphans(force=True)
        assert inflight.exists()


class TestBackendSpecs:
    """The ``name[:arg]`` spec grammar and the registry hook."""

    def test_memory_spec(self):
        backend = make_backend("memory")
        assert isinstance(backend, MemoryBackend)
        assert backend.max_bytes is None

    def test_memory_spec_with_byte_budget(self):
        backend = make_backend("memory:1048576")
        assert backend.max_bytes == 1048576

    def test_memory_spec_bad_budget(self):
        with pytest.raises(ConfigurationError):
            make_backend("memory:lots")

    def test_disk_spec_with_path(self, tmp_path):
        backend = make_backend(f"disk:{tmp_path}")
        assert isinstance(backend, DiskBackend)
        assert backend.cache_dir == tmp_path

    def test_kv_spec(self):
        assert isinstance(make_backend("kv"), KeyValueBackend)

    def test_unknown_backend_error(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            make_backend("s3:bucket")
        assert excinfo.value.name == "s3"
        assert "memory" in excinfo.value.choices
        assert "s3" in str(excinfo.value)

    def test_unknown_backend_error_pickles(self):
        error = UnknownBackendError("s3", ("disk", "memory"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.name == "s3"
        assert clone.choices == ("disk", "memory")

    def test_register_backend_hook(self):
        register_backend(
            "contract-test",
            lambda arg: KeyValueBackend(name="contract-test"))
        try:
            assert "contract-test" in available_backends()
            backend = make_backend("contract-test")
            assert backend.name == "contract-test"
        finally:
            store_module._BACKENDS.pop("contract-test", None)


class TestArtifactStoreBackends:
    """ArtifactStore composes the tiers behind backend specs."""

    def test_memory_spec_store(self):
        store = ArtifactStore(backend="memory:65536")
        store.put("trace", "d1", "x")
        assert store.get("trace", "d1") == "x"
        assert store.cache_dir is None

    def test_kv_spec_store_promotes_to_memory(self):
        store = ArtifactStore(backend="kv")
        store.put("trace", "d1", ["v"])
        assert store.persistent_backend is not None
        assert store.persistent_backend.entries() == [("trace", "d1")]
        fresh = ArtifactStore(backend=store.persistent_backend)
        assert fresh.get("trace", "d1") == ["v"]
        assert fresh.stats.disk_hits == 1
        assert fresh.get("trace", "d1") == ["v"]
        assert fresh.stats.memory_hits == 1

    def test_disk_spec_store_is_legacy_compatible(self, tmp_path):
        spec_store = ArtifactStore(backend=f"disk:{tmp_path}")
        spec_store.put("trace", "d1", "payload")
        legacy = ArtifactStore(cache_dir=tmp_path)
        assert legacy.get("trace", "d1") == "payload"

    def test_set_default_store_accepts_spec(self):
        previous = set_default_store("memory:4096")
        try:
            store = default_store()
            assert isinstance(store, ArtifactStore)
            assert store.memory_backend.max_bytes == 4096
        finally:
            set_default_store(previous)
