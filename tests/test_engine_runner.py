"""Stage resolution, run records and the engine-backed make_workbench."""

from __future__ import annotations

import pytest

from repro.engine.runner import RunRecord, StageRunner, make_workbench
from repro.engine.store import ArtifactStore, set_default_store
from repro.evaluation.sweep import run_sweep


@pytest.fixture
def disk_store(tmp_path):
    """A disk-backed store installed as the process default."""
    store = ArtifactStore(cache_dir=tmp_path / "cache")
    previous = set_default_store(store)
    yield store
    set_default_store(previous)


def test_resolve_computes_once_then_hits():
    runner = StageRunner(store=ArtifactStore())
    calls = []

    def compute():
        calls.append(1)
        return "artifact"

    assert runner.resolve("execution", "d", compute) == "artifact"
    assert runner.resolve("execution", "d", compute) == "artifact"
    assert len(calls) == 1
    assert runner.record.computed("execution") == 1
    assert runner.record.hits("execution") == 1


def test_run_record_merge_and_render():
    record = RunRecord()
    record.note("execution", hit=False, seconds=0.5)
    other = RunRecord()
    other.note("execution", hit=True)
    other.note("result", hit=False, seconds=0.25)
    record.merge(other.as_dict())
    assert record.computed("execution") == 1
    assert record.hits("execution") == 1
    assert record.computed("result") == 1
    assert "execution" in record.render()


def test_make_workbench_returns_identical_object(disk_store):
    _, first = make_workbench("tiny", 0.5, 0)
    _, second = make_workbench("tiny", 0.5, 0)
    assert first is second


def test_make_workbench_scale_normalisation(disk_store):
    _, as_int = make_workbench("tiny", 1, 0)
    _, as_float = make_workbench("tiny", 1.0, 0)
    assert as_int is as_float


def test_warm_sweep_skips_profiling_and_simulation(tmp_path):
    """Acceptance: a warm-cache rerun of a sweep performs zero
    profiling executions and zero baseline cache simulations."""
    cache_dir = tmp_path / "cache"
    previous = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        cold = RunRecord()
        cold_points = run_sweep("tiny", scale=0.2, record=cold)
        assert cold.computed("execution") == 1
        assert cold.computed("baseline") == 1

        # Fresh store, same directory: only the disk tier can answer.
        set_default_store(ArtifactStore(cache_dir=cache_dir))
        warm = RunRecord()
        warm_points = run_sweep("tiny", scale=0.2, record=warm)
        assert warm.computed("execution") == 0
        assert warm.computed("baseline") == 0
        assert warm.computed("trace") == 0
        assert warm.computed("graph") == 0
        assert warm.computed("result") == 0
        assert warm.hits("result") > 0

        cold_energy = [
            point.energy(name)
            for point in cold_points for name in point.results
        ]
        warm_energy = [
            point.energy(name)
            for point in warm_points for name in point.results
        ]
        assert warm_energy == cold_energy
    finally:
        set_default_store(previous)
