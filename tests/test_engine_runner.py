"""Stage resolution, run records and the engine-backed make_workbench."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.runner import RunRecord, StageRunner, make_workbench
from repro.engine.store import ArtifactStore, set_default_store
from repro.evaluation.sweep import run_sweep


@pytest.fixture
def disk_store(tmp_path):
    """A disk-backed store installed as the process default."""
    store = ArtifactStore(cache_dir=tmp_path / "cache")
    previous = set_default_store(store)
    yield store
    set_default_store(previous)


def test_resolve_computes_once_then_hits():
    runner = StageRunner(store=ArtifactStore())
    calls = []

    def compute():
        calls.append(1)
        return "artifact"

    assert runner.resolve("execution", "d", compute) == "artifact"
    assert runner.resolve("execution", "d", compute) == "artifact"
    assert len(calls) == 1
    assert runner.record.computed("execution") == 1
    assert runner.record.hits("execution") == 1


def test_run_record_merge_and_render():
    record = RunRecord()
    record.note("execution", hit=False, seconds=0.5)
    other = RunRecord()
    other.note("execution", hit=True)
    other.note("result", hit=False, seconds=0.25)
    record.merge(other.as_dict())
    assert record.computed("execution") == 1
    assert record.hits("execution") == 1
    assert record.computed("result") == 1
    assert "execution" in record.render()


def test_run_record_as_dict_merge_round_trip():
    """as_dict -> merge reproduces the record exactly, seconds included."""
    record = RunRecord()
    record.note("execution", hit=False, seconds=0.125)
    record.note("execution", hit=True)
    record.note("graph", hit=False, seconds=0.0625)
    record.note("result", hit=True)
    record.note("result", hit=True)

    clone = RunRecord()
    clone.merge(record.as_dict())
    assert clone.as_dict() == record.as_dict()
    # Seconds survive as exact floats (powers of two: no rounding).
    assert clone.as_dict()["execution"]["seconds"] == 0.125
    assert clone.stages["graph"].seconds == 0.0625

    # A second round trip keeps accumulating, not overwriting.
    clone.merge(record.as_dict())
    assert clone.computed("execution") == 2
    assert clone.hits("result") == 4
    assert clone.as_dict()["graph"]["seconds"] == 0.125


def test_run_record_merge_accepts_record_directly():
    source = RunRecord()
    source.note("trace", hit=False, seconds=0.5)
    target = RunRecord()
    target.merge(source)
    assert target.as_dict() == source.as_dict()


def test_run_record_merge_tolerates_partial_entries():
    """Hand-built dicts may omit fields; missing ones count as zero."""
    record = RunRecord()
    record.merge({
        "execution": {"hits": 2},
        "graph": {"computed": 1},
        "result": {},
    })
    assert record.hits("execution") == 2
    assert record.computed("execution") == 0
    assert record.computed("graph") == 1
    assert record.as_dict()["execution"]["seconds"] == 0.0
    # An empty entry creates no counters at all.
    assert "result" not in record.as_dict()


def test_run_record_pickle_round_trip():
    record = RunRecord()
    record.note("baseline", hit=False, seconds=0.25)
    record.note("baseline", hit=True)
    clone = pickle.loads(pickle.dumps(record))
    assert clone.as_dict() == record.as_dict()
    clone.note("baseline", hit=True)  # fresh lock: still usable
    assert clone.hits("baseline") == 2


def test_run_record_stage_views_match_queries():
    record = RunRecord()
    record.note("execution", hit=False, seconds=1.5)
    record.note("execution", hit=True)
    count = record.stages["execution"]
    assert count.computed == record.computed("execution") == 1
    assert count.hits == record.hits("execution") == 1
    assert count.seconds == 1.5


def test_make_workbench_returns_identical_object(disk_store):
    _, first = make_workbench("tiny", 0.5, 0)
    _, second = make_workbench("tiny", 0.5, 0)
    assert first is second


def test_make_workbench_scale_normalisation(disk_store):
    _, as_int = make_workbench("tiny", 1, 0)
    _, as_float = make_workbench("tiny", 1.0, 0)
    assert as_int is as_float


def test_warm_sweep_skips_profiling_and_simulation(tmp_path):
    """Acceptance: a warm-cache rerun of a sweep performs zero
    profiling executions and zero baseline cache simulations."""
    cache_dir = tmp_path / "cache"
    previous = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        cold = RunRecord()
        cold_points = run_sweep("tiny", scale=0.2, record=cold)
        assert cold.computed("execution") == 1
        assert cold.computed("baseline") == 1

        # Fresh store, same directory: only the disk tier can answer.
        set_default_store(ArtifactStore(cache_dir=cache_dir))
        warm = RunRecord()
        warm_points = run_sweep("tiny", scale=0.2, record=warm)
        assert warm.computed("execution") == 0
        assert warm.computed("baseline") == 0
        assert warm.computed("trace") == 0
        assert warm.computed("graph") == 0
        assert warm.computed("result") == 0
        assert warm.hits("result") > 0

        cold_energy = [
            point.energy(name)
            for point in cold_points for name in point.results
        ]
        warm_energy = [
            point.energy(name)
            for point in warm_points for name in point.results
        ]
        assert warm_energy == cold_energy
    finally:
        set_default_store(previous)
