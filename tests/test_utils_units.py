"""Tests for repro.utils.units."""

import pytest

from repro.utils.units import format_energy, format_size, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512B") == 512
        assert parse_size("512 bytes") == 512

    def test_kilobytes(self):
        assert parse_size("2kB") == 2048
        assert parse_size("2 KB") == 2048
        assert parse_size("19.5 kBytes") == 19968

    def test_megabytes(self):
        assert parse_size("1MB") == 1024 * 1024

    def test_integer_passthrough(self):
        assert parse_size(4096) == 4096

    def test_rejects_negative_int(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("two kilobytes")

    def test_rejects_fractional_bytes(self):
        with pytest.raises(ValueError):
            parse_size("0.3B")


class TestFormatSize:
    def test_small(self):
        assert format_size(64) == "64B"

    def test_exact_kilobytes(self):
        assert format_size(2048) == "2kB"

    def test_fractional_kilobytes(self):
        assert format_size(19968) == "19.5kB"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_size(-5)

    def test_roundtrip(self):
        for value in (1, 64, 100, 1024, 2048, 19968):
            assert parse_size(format_size(value)) == value


class TestFormatEnergy:
    def test_nanojoules(self):
        assert format_energy(12.3) == "12.30nJ"

    def test_microjoules(self):
        assert format_energy(4500.0) == "4.50uJ"

    def test_millijoules(self):
        assert format_energy(2.5e6) == "2.50mJ"

    def test_negative(self):
        assert format_energy(-4500.0) == "-4.50uJ"
