"""Tests for the LP backend and branch & bound, including brute-force
cross-checks on random instances."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.model import Model, Sense, SolveStatus
from repro.ilp.scipy_backend import LpRelaxationSolver


class TestLpRelaxation:
    def test_relaxation_ignores_integrality(self):
        model = Model("m", Sense.MAXIMIZE)
        x = model.add_binary("x")
        model.add_constraint(2 * x <= 1)
        model.set_objective(x)
        solution = LpRelaxationSolver(model).solve()
        assert solution.values[x] == pytest.approx(0.5)

    def test_bound_overrides(self):
        model = Model("m", Sense.MAXIMIZE)
        x = model.add_variable("x", 0, 10)
        model.set_objective(x)
        solver = LpRelaxationSolver(model)
        assert solver.solve().objective == pytest.approx(10.0)
        fixed = solver.solve({x: (2.0, 3.0)})
        assert fixed.objective == pytest.approx(3.0)

    def test_contradictory_override_infeasible(self):
        model = Model()
        x = model.add_variable("x", 0, 10)
        model.set_objective(x)
        solver = LpRelaxationSolver(model)
        assert solver.solve({x: (5.0, 4.0)}).status is \
            SolveStatus.INFEASIBLE

    def test_equality_constraints(self):
        model = Model()
        x = model.add_variable("x", 0, 10)
        y = model.add_variable("y", 0, 10)
        model.add_constraint(x + y == 7)
        model.set_objective(x)
        solution = LpRelaxationSolver(model).solve()
        assert solution.values[x] == pytest.approx(0.0)
        assert solution.values[y] == pytest.approx(7.0)

    def test_maximize_objective_sign(self):
        model = Model("m", Sense.MAXIMIZE)
        x = model.add_variable("x", 0, 3)
        model.set_objective(2 * x + 1)
        solution = LpRelaxationSolver(model).solve()
        assert solution.objective == pytest.approx(7.0)


def brute_force_best(sizes, profits, capacity):
    """Exhaustive 0/1 knapsack optimum."""
    n = len(sizes)
    best = 0.0
    for mask in itertools.product((0, 1), repeat=n):
        weight = sum(s for s, take in zip(sizes, mask) if take)
        if weight <= capacity:
            value = sum(p for p, take in zip(profits, mask) if take)
            best = max(best, value)
    return best


class TestBranchAndBound:
    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(0, 30)),
            min_size=1, max_size=10,
        ),
        st.integers(0, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_knapsack(self, items, capacity):
        sizes = [size for size, _ in items]
        profits = [profit for _, profit in items]
        model = Model("knap", Sense.MAXIMIZE)
        variables = [model.add_binary(f"x{i}") for i in range(len(items))]
        weight = sum(
            (s * v for s, v in zip(sizes, variables)),
            start=0 * variables[0],
        )
        model.add_constraint(weight <= capacity)
        model.set_objective(sum(
            (p * v for p, v in zip(profits, variables)),
            start=0 * variables[0],
        ))
        result = model.solve(BranchAndBoundSolver())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            brute_force_best(sizes, profits, capacity)
        )

    def test_integer_non_binary_variables(self):
        model = Model("int", Sense.MAXIMIZE)
        x = model.add_variable("x", 0, 10, is_integer=True)
        model.add_constraint(3 * x <= 10)
        model.set_objective(x)
        result = model.solve()
        assert result.objective == pytest.approx(3.0)
        assert result.value(x) == 3

    def test_node_limit_returns_incumbent(self):
        model = Model("hard", Sense.MAXIMIZE)
        variables = [model.add_binary(f"x{i}") for i in range(12)]
        model.add_constraint(
            sum((3 * v for v in variables), start=0 * variables[0]) <= 17
        )
        model.set_objective(
            sum(((i % 5 + 1) * v for i, v in enumerate(variables)),
                start=0 * variables[0])
        )
        result = model.solve(BranchAndBoundSolver(max_nodes=1))
        assert result.status in (SolveStatus.OPTIMAL,
                                 SolveStatus.NODE_LIMIT)
        if result.status is SolveStatus.NODE_LIMIT:
            assert result.objective is not None  # warm-start incumbent

    def test_minimization(self):
        model = Model("min", Sense.MINIMIZE)
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y >= 1)
        model.set_objective(3 * x + 2 * y)
        result = model.solve()
        assert result.objective == pytest.approx(2.0)
        assert result.binary_value(y) == 1

    def test_nodes_counted(self):
        model = Model("m", Sense.MAXIMIZE)
        x = model.add_binary("x")
        model.add_constraint(2 * x <= 1)
        model.set_objective(x)
        result = model.solve()
        assert result.nodes_explored >= 1
