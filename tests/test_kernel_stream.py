"""Tests for repro.memory.kernel.stream (fetch-stream compilation)."""

import pickle

import numpy as np

from repro.engine.runner import StageRunner, make_workbench
from repro.engine.store import ArtifactStore
from repro.memory.kernel import compile_stream
from repro.traces.layout import LinkedImage, Placement


def baseline_image(bench):
    """Cache-only image of a profiled workbench."""
    return LinkedImage(
        bench.program,
        bench.memory_objects,
        spm_resident=frozenset(),
        spm_size=0,
        placement=Placement.COPY,
        main_base=bench.config.main_base,
        spm_base=bench.config.spm_base,
    )


class TestCompile:
    def test_total_words_match_reference_fetches(self, tiny_workbench):
        stream = compile_stream(baseline_image(tiny_workbench),
                                tiny_workbench.block_sequence)
        report = tiny_workbench.baseline_report
        assert stream.total_words == report.total_fetches
        assert stream.num_blocks == report.num_block_executions

    def test_mo_first_seen_matches_report_order(self, tiny_workbench):
        stream = compile_stream(baseline_image(tiny_workbench),
                                tiny_workbench.block_sequence)
        names = [stream.mo_names[i] for i in stream.mo_first_seen()]
        assert names == list(tiny_workbench.baseline_report.mo_stats)

    def test_spm_words_follow_residency(self, tiny_workbench):
        bench = tiny_workbench
        resident = frozenset({bench.memory_objects[0].name})
        image = LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=resident, spm_size=128,
            placement=Placement.COPY,
            main_base=bench.config.main_base,
            spm_base=bench.config.spm_base,
        )
        stream = compile_stream(image, bench.block_sequence,
                                spm_base=bench.config.spm_base)
        assert stream.spm_words > 0
        assert stream.spm_words < stream.total_words

    def test_same_as(self, tiny_workbench):
        image = baseline_image(tiny_workbench)
        first = compile_stream(image, tiny_workbench.block_sequence)
        second = compile_stream(image, tiny_workbench.block_sequence)
        assert first.same_as(second)
        assert second.same_as(first)


class TestProbes:
    def test_memoised_per_line_size(self, tiny_workbench):
        stream = compile_stream(baseline_image(tiny_workbench),
                                tiny_workbench.block_sequence)
        assert stream.probes(16) is stream.probes(16)
        assert stream.probes(16) is not stream.probes(32)

    def test_probe_words_sum_to_stream_words(self, tiny_workbench):
        stream = compile_stream(baseline_image(tiny_workbench),
                                tiny_workbench.block_sequence)
        for line_size in (8, 16, 32):
            probes = stream.probes(line_size)
            assert int(probes.words.sum()) == stream.total_words

    def test_first_marks_every_line_once(self, tiny_workbench):
        stream = compile_stream(baseline_image(tiny_workbench),
                                tiny_workbench.block_sequence)
        probes = stream.probes(16)
        assert int(probes.first.sum()) == \
            np.unique(probes.line).shape[0]

    def test_pickle_drops_probe_cache(self, tiny_workbench):
        stream = compile_stream(baseline_image(tiny_workbench),
                                tiny_workbench.block_sequence)
        stream.probes(16)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone._probe_cache == {}
        assert clone.same_as(stream)


class TestStreamArtifact:
    def test_stream_stage_cached_across_evaluations(self):
        store = ArtifactStore()
        runner = StageRunner(store=store)
        _, bench = make_workbench("tiny", runner=runner,
                                  backend="vector")
        result = bench.run_casa(64)
        computed = runner.record.computed("stream")
        assert computed >= 1
        # Re-simulating the same layout serves the compiled stream
        # from the store instead of compiling it again.
        bench.evaluate_spm(result.allocation, 64)
        assert runner.record.computed("stream") == computed
        assert runner.record.hits("stream") >= 1

    def test_reference_backend_never_compiles_streams(self):
        store = ArtifactStore()
        runner = StageRunner(store=store)
        _, bench = make_workbench("tiny", runner=runner,
                                  backend="reference")
        bench.run_casa(64)
        assert runner.record.computed("stream") == 0
        assert runner.record.hits("stream") == 0
