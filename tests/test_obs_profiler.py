"""Sampling profiler: collapsed stacks, hot functions, stats."""

from __future__ import annotations

import time

from repro.obs.profiler import SamplingProfiler, _collapse


def _busy_wait(seconds: float) -> float:
    """Spin (not sleep) so the sampler catches this frame on-CPU."""
    deadline = time.monotonic() + seconds
    total = 0.0
    while time.monotonic() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_captures_hot_frames(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        _busy_wait(0.2)
        profiler.stop()
        assert profiler.sample_count > 10
        collapsed = profiler.collapsed()
        assert "_busy_wait" in collapsed
        # Root-first stacks: the test module appears before the leaf.
        hot_line = next(line for line in collapsed.splitlines()
                        if "_busy_wait" in line)
        stack, count = hot_line.rsplit(" ", 1)
        assert int(count) >= 1
        assert stack.index("test_obs_profiler") \
            < stack.index("_busy_wait")
        hot = profiler.hot_functions()
        assert any("_busy_wait" in entry["function"] for entry in hot)

    def test_stats_reconcile_with_duration(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        _busy_wait(0.1)
        profiler.stop()
        stats = profiler.stats()
        assert stats["samples"] == profiler.sample_count
        assert stats["interval_s"] == 0.001
        assert stats["duration_s"] > 0
        assert stats["estimated_busy_s"] <= stats["duration_s"] * 2
        assert stats["hot"]

    def test_stop_is_idempotent_and_write_emits_file(self, tmp_path):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        _busy_wait(0.05)
        profiler.stop()
        profiler.stop()
        path = tmp_path / "profile.txt"
        profiler.write(str(path))
        text = path.read_text()
        assert text.strip(), "collapsed-stack output must be non-empty"
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or ":" in stack
            assert int(count) > 0

    def test_empty_profiler_writes_empty_file(self, tmp_path):
        profiler = SamplingProfiler()
        path = tmp_path / "empty.txt"
        profiler.write(str(path))
        assert path.read_text() == ""
        assert profiler.stats()["samples"] == 0

    def test_collapse_formats_module_and_function(self):
        import sys
        frame = sys._getframe()
        collapsed = _collapse(frame)
        assert collapsed.endswith(
            "test_obs_profiler:test_collapse_formats_module_and_function")
