"""Tests for repro.memory.hierarchy (the simulator)."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.memory.loopcache import LoopCacheConfig, LoopRegion
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage, Placement, SPM_BASE
from repro.traces.tracegen import TraceGenConfig, generate_traces

from tests.conftest import make_loop_program


def build_setup(program, spm_resident=frozenset(), spm_size=0,
                placement=Placement.COPY, max_trace_size=1 << 20,
                min_ft=1):
    execution = execute_program(program)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=max_trace_size,
                       min_fallthrough_count=min_ft),
    )
    image = LinkedImage(program, mos, spm_resident=spm_resident,
                        spm_size=spm_size, placement=placement)
    return execution, mos, image


class TestHierarchyConfig:
    def test_spm_and_lc_exclusive(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(spm_size=64,
                            loop_cache=LoopCacheConfig(size=64))

    def test_negative_spm(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(spm_size=-1)


class TestCacheOnly:
    def test_fetch_identity(self):
        program = make_loop_program(trip=20)
        execution, mos, image = build_setup(program)
        report = simulate(image, HierarchyConfig(
            cache=CacheConfig(size=64, line_size=16, associativity=1)),
            execution.block_sequence)
        assert report.check_identities()
        assert report.total_fetches >= execution.instruction_count

    def test_fetch_count_matches_instruction_count_when_no_jumps(self):
        # single trace, all fall-throughs intact: fetches == executed
        # instructions
        program = make_loop_program(trip=5)
        execution, mos, image = build_setup(program)
        assert len(mos) == 1
        report = simulate(image, HierarchyConfig(),
                          execution.block_sequence)
        assert report.total_fetches == execution.instruction_count

    def test_small_loop_mostly_hits(self):
        program = make_loop_program(trip=1000)
        execution, _, image = build_setup(program)
        report = simulate(image, HierarchyConfig(
            cache=CacheConfig(size=128, line_size=16, associativity=1)),
            execution.block_sequence)
        assert report.cache_misses <= 8  # compulsory only
        assert report.cache_hits > 6000

    def test_main_memory_words_per_miss(self):
        program = make_loop_program(trip=3)
        execution, _, image = build_setup(program)
        config = HierarchyConfig(cache=CacheConfig(
            size=64, line_size=16, associativity=1))
        report = simulate(image, config, execution.block_sequence)
        assert report.main_memory_words == report.cache_misses * 4


class TestCacheless:
    def test_every_word_goes_offchip(self):
        program = make_loop_program(trip=4)
        execution, _, image = build_setup(program)
        report = simulate(image, HierarchyConfig(cache=None),
                          execution.block_sequence)
        assert report.cache_misses == report.total_fetches
        assert report.main_memory_words == report.total_fetches


class TestScratchpadHierarchy:
    def test_resident_object_served_by_spm(self):
        program = make_loop_program(trip=50)
        execution, mos, image = build_setup(
            program, spm_resident={"T0"}, spm_size=256)
        report = simulate(
            image,
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1),
                            spm_size=256),
            execution.block_sequence,
            spm_base=SPM_BASE,
        )
        assert report.spm_accesses > 0
        assert report.stats_for("T0").cache_hits == 0
        assert report.stats_for("T0").cache_misses == 0
        assert report.check_identities()

    def test_spm_eliminates_all_cache_traffic_if_everything_resident(self):
        program = make_loop_program(trip=10)
        _, all_mos, _ = build_setup(program)
        execution, mos, image = build_setup(
            program, spm_resident={mo.name for mo in all_mos},
            spm_size=4096)
        report = simulate(
            image,
            HierarchyConfig(cache=CacheConfig(size=64, line_size=16,
                                              associativity=1),
                            spm_size=4096),
            execution.block_sequence,
        )
        assert report.cache_accesses == 0
        assert report.spm_accesses == report.total_fetches


class TestLoopCacheHierarchy:
    def test_region_served_by_loop_cache(self):
        program = make_loop_program(trip=50)
        execution, mos, image = build_setup(program)
        trace = mos[0]
        region = LoopRegion(
            name="whole", start=image.base_address(trace.name),
            size=trace.padded_size,
        )
        report = simulate(
            image,
            HierarchyConfig(
                cache=CacheConfig(size=64, line_size=16, associativity=1),
                loop_cache=LoopCacheConfig(size=1024, max_regions=4),
            ),
            execution.block_sequence,
            loop_regions=[region],
        )
        assert report.lc_accesses == report.total_fetches
        assert report.lc_controller_checks >= report.total_fetches
        assert report.cache_accesses == 0

    def test_no_regions_all_cache(self):
        program = make_loop_program(trip=5)
        execution, _, image = build_setup(program)
        report = simulate(
            image,
            HierarchyConfig(
                cache=CacheConfig(size=64, line_size=16, associativity=1),
                loop_cache=LoopCacheConfig(size=256, max_regions=4),
            ),
            execution.block_sequence,
            loop_regions=[],
        )
        assert report.lc_accesses == 0
        assert report.cache_accesses == report.total_fetches


class TestTailJumpAccounting:
    def test_split_traces_fetch_exit_jumps(self):
        # Force per-block traces so entry->loop and loop->exit need
        # explicit jumps.
        program = make_loop_program(trip=10)
        execution, mos, image = build_setup(program, min_ft=10**9)
        assert len(mos) == 3
        report = simulate(image, HierarchyConfig(),
                          execution.block_sequence)
        # entry fetches its on-fallthrough jump once; the loop block's
        # exit jump is fetched once (the final iteration).
        extra = report.total_fetches - execution.instruction_count
        assert extra == 2
