"""Benchmark histories: snapshots, JSONL round trips, compare policies."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.history import (
    ComparePolicy,
    Snapshot,
    append_snapshot,
    compare_snapshots,
    load_history,
    machine_fingerprint,
)


def make_snapshot(metrics, name="smoke", **overrides) -> Snapshot:
    return Snapshot(name=name, metrics=dict(metrics), **overrides)


class TestSnapshotIo:
    def test_json_round_trip(self):
        snapshot = make_snapshot({"a.energy_nj": 1.5}, note="n",
                                 recorded_at=12.0)
        again = Snapshot.from_json(snapshot.as_json())
        assert again == snapshot

    def test_schema_rejected(self):
        payload = make_snapshot({"a": 1.0}).as_json()
        payload["schema"] = 99
        with pytest.raises(ConfigurationError):
            Snapshot.from_json(payload)

    def test_append_and_load(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        append_snapshot(path, make_snapshot({"a": 1.0}, name="first"))
        append_snapshot(path, make_snapshot({"a": 2.0}, name="second"))
        snapshots = load_history(path)
        assert [s.name for s in snapshots] == ["first", "second"]
        assert snapshots[-1].metrics == {"a": 2.0}

    def test_load_missing_and_empty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_history(tmp_path / "absent.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(ConfigurationError):
            load_history(empty)

    def test_load_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
            load_history(path)


class TestComparePolicy:
    def test_deterministic_metrics_are_exact(self):
        policy = ComparePolicy()
        assert policy.tolerance_for("tiny.casa.energy_nj") == 0.0

    def test_timing_metrics_get_the_band(self):
        policy = ComparePolicy(timing_tolerance=2.0)
        assert policy.tolerance_for("wall.seconds") == 2.0
        assert policy.tolerance_for("stage.duration_ms") == 2.0

    def test_explicit_override_wins(self):
        policy = ComparePolicy(tolerances={"wall.seconds": 0.0})
        assert policy.tolerance_for("wall.seconds") == 0.0


class TestCompare:
    def test_identical_snapshots_pass(self):
        base = make_snapshot({"a": 1.0, "wall.seconds": 0.2})
        result = compare_snapshots(base, make_snapshot(base.metrics))
        assert result.ok
        assert result.checked == 2
        assert "OK" in result.render()

    def test_deterministic_deviation_regresses(self):
        base = make_snapshot({"a.energy_nj": 100.0})
        latest = make_snapshot({"a.energy_nj": 100.0001})
        result = compare_snapshots(base, latest)
        assert not result.ok
        assert result.regressions[0].metric == "a.energy_nj"
        assert "exact match required" in \
            result.regressions[0].describe()

    def test_timing_within_band_passes(self):
        base = make_snapshot({"wall.seconds": 0.1})
        latest = make_snapshot({"wall.seconds": 0.4})
        assert compare_snapshots(base, latest).ok

    def test_timing_outside_band_regresses(self):
        base = make_snapshot({"wall.seconds": 0.1})
        latest = make_snapshot({"wall.seconds": 0.1 * 7})
        result = compare_snapshots(base, latest)
        assert not result.ok
        assert "tolerance" in result.regressions[0].describe()

    def test_missing_metric_regresses_new_metric_passes(self):
        base = make_snapshot({"a": 1.0, "gone": 2.0})
        latest = make_snapshot({"a": 1.0, "fresh": 3.0})
        result = compare_snapshots(base, latest)
        assert not result.ok
        assert result.regressions[0].metric == "gone"
        assert result.regressions[0].latest is None
        assert result.new_metrics == ["fresh"]
        assert "fresh" in result.render()

    def test_fingerprint_change_is_a_note_not_a_failure(self):
        base = make_snapshot({"a": 1.0},
                             fingerprint={"python": "0.0"})
        latest = make_snapshot({"a": 1.0},
                               fingerprint=machine_fingerprint())
        result = compare_snapshots(base, latest)
        assert result.ok
        assert result.fingerprint_changed
        assert "fingerprint differs" in result.render()

    def test_render_lists_every_regression(self):
        base = make_snapshot({"a": 1.0, "b": 2.0})
        latest = make_snapshot({"a": 9.0, "b": 8.0})
        rendered = compare_snapshots(base, latest).render()
        assert "2 REGRESSION(S)" in rendered
        assert "a: 1 -> 9" in rendered


def test_history_lines_are_sorted_json(tmp_path):
    """Lines are stable (sorted keys) so committed baselines diff
    cleanly."""
    path = tmp_path / "history.jsonl"
    append_snapshot(path, make_snapshot({"b": 2.0, "a": 1.0}))
    line = path.read_text().strip()
    payload = json.loads(line)
    assert line == json.dumps(payload, sort_keys=True)
