"""Tests for the recorded-trace file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.io.tracefile import (
    decode_runs,
    encode_runs,
    load_trace,
    save_trace,
)
from repro.program.executor import execute_program

from tests.conftest import make_loop_program


class TestRunLengthEncoding:
    def test_empty(self):
        assert encode_runs([]) == []
        assert decode_runs([]) == []

    def test_collapses_repeats(self):
        runs = encode_runs(["a", "a", "a", "b", "a"])
        assert runs == [("a", 3), ("b", 1), ("a", 1)]

    def test_invalid_repeat(self):
        with pytest.raises(ConfigurationError):
            decode_runs([("a", 0)])

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, sequence):
        assert decode_runs(encode_runs(sequence)) == sequence


class TestTraceFiles:
    def test_roundtrip_on_real_trace(self, tmp_path):
        program = make_loop_program(trip=50)
        execution = execute_program(program)
        path = tmp_path / "run.trace"
        save_trace(execution.block_sequence, path,
                   program_name=program.name)
        loaded = load_trace(path, expected_program=program.name)
        assert loaded == execution.block_sequence

    def test_compression_on_tight_loop(self, tmp_path):
        program = make_loop_program(trip=500)
        execution = execute_program(program)
        path = tmp_path / "run.trace"
        save_trace(execution.block_sequence, path)
        assert len(path.read_text().splitlines()) < 10

    def test_program_mismatch_detected(self, tmp_path):
        path = tmp_path / "run.trace"
        save_trace(["x"], path, program_name="foo")
        with pytest.raises(ConfigurationError):
            load_trace(path, expected_program="bar")

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_malformed_run_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("repro-trace 1\nprog\nblock_without_count\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_bad_repeat_count(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("repro-trace 1\nprog\nblock xyz\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_space_in_block_name_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace(["bad name"], tmp_path / "x.trace")

    def test_replay_through_simulator(self, tmp_path):
        """A loaded trace replays identically to the live sequence."""
        from repro.memory.cache import CacheConfig
        from repro.memory.hierarchy import HierarchyConfig, simulate
        from repro.traces.layout import LinkedImage
        from repro.traces.tracegen import (
            TraceGenConfig, generate_traces,
        )

        program = make_loop_program(trip=30)
        execution = execute_program(program)
        path = tmp_path / "run.trace"
        save_trace(execution.block_sequence, path)
        loaded = load_trace(path)

        mos = generate_traces(
            program, execution.profile,
            TraceGenConfig(line_size=16, max_trace_size=64),
        )
        image = LinkedImage(program, mos)
        config = HierarchyConfig(cache=CacheConfig(
            size=64, line_size=16, associativity=1))
        live = simulate(image, config, execution.block_sequence)
        replayed = simulate(image, config, loaded)
        assert live.summary() == replayed.summary()
