"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; they must keep working as
the API evolves.  Each is executed in-process (fast paths via small
scale arguments where the script supports them).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: script name -> argv tail keeping the run fast.
EXAMPLE_ARGS = {
    "quickstart.py": [],
    "custom_workload.py": [],
    "mpeg_casa_vs_steinke.py": ["0.05"],
    "loop_cache_comparison.py": ["adpcm", "0.05"],
    "multi_scratchpad.py": [],
    "overlay_demo.py": ["128", "0.1"],
    "data_allocation.py": ["adpcm", "128"],
    "wcet_analysis.py": ["adpcm", "0.1"],
    "design_space.py": ["adpcm", "30000", "0.05"],
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS), (
        "keep EXAMPLE_ARGS in sync with examples/"
    )


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(
        sys, "argv", [str(path)] + EXAMPLE_ARGS[script]
    )
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
