"""Tests for repro.program.executor."""

import pytest

from repro.errors import SimulationError
from repro.isa import make_alu, make_branch, make_call, make_return
from repro.program.basicblock import BasicBlock
from repro.program.behavior import TakenProbability, FixedTrip
from repro.program.executor import execute_program
from repro.program.function import Function
from repro.program.program import Program

from tests.conftest import make_loop_program


class TestLoopExecution:
    def test_counted_loop_runs_exact_iterations(self):
        program = make_loop_program(trip=10)
        result = execute_program(program)
        assert result.profile.block_count("main.loop") == 10
        assert result.profile.block_count("main.entry") == 1
        assert result.profile.block_count("main.exit") == 1

    def test_block_sequence_shape(self):
        program = make_loop_program(trip=3)
        result = execute_program(program)
        assert result.block_sequence == (
            ["main.entry"] + ["main.loop"] * 3 + ["main.exit"]
        )

    def test_instruction_count(self):
        program = make_loop_program(trip=2, body_instructions=6)
        result = execute_program(program)
        # entry 4 + 2 * (6 + branch) + exit 3
        assert result.instruction_count == 4 + 2 * 7 + 3

    def test_edge_counts(self):
        program = make_loop_program(trip=5)
        result = execute_program(program)
        assert result.profile.edge_count("main.loop", "main.loop") == 4
        assert result.profile.edge_count("main.loop", "main.exit") == 1
        assert result.profile.edge_count("main.entry", "main.loop") == 1


class TestCalls:
    def make_call_program(self):
        main = Function("main", [
            BasicBlock(
                name="main.b0",
                instructions=[make_alu(), make_call("leaf")],
                fallthrough="main.b1",
            ),
            BasicBlock(
                name="main.b1",
                instructions=[make_alu(), make_return()],
            ),
        ])
        leaf = Function("leaf", [
            BasicBlock(name="leaf.b0",
                       instructions=[make_alu(), make_return()]),
        ])
        return Program([main, leaf], entry="main")

    def test_call_and_return_sequence(self):
        result = execute_program(self.make_call_program())
        assert result.block_sequence == ["main.b0", "leaf.b0", "main.b1"]

    def test_call_counts(self):
        result = execute_program(self.make_call_program())
        assert result.profile.call_counts[("main.b0", "leaf")] == 1

    def test_nested_calls(self):
        a = Function("a", [
            BasicBlock("a.b0", [make_call("b")], fallthrough="a.b1"),
            BasicBlock("a.b1", [make_return()]),
        ])
        b = Function("b", [
            BasicBlock("b.b0", [make_call("c")], fallthrough="b.b1"),
            BasicBlock("b.b1", [make_return()]),
        ])
        c = Function("c", [BasicBlock("c.b0", [make_return()])])
        program = Program([a, b, c], entry="a")
        result = execute_program(program)
        assert result.block_sequence == [
            "a.b0", "b.b0", "c.b0", "b.b1", "a.b1",
        ]


class TestDeterminism:
    def make_probabilistic(self):
        blocks = [
            BasicBlock(
                name="m.b0",
                instructions=[make_branch("m.b2")],
                fallthrough="m.b1",
                behavior=TakenProbability(0.5),
            ),
            BasicBlock(
                name="m.b1",
                instructions=[make_alu(), make_return()],
            ),
            BasicBlock(
                name="m.b2",
                instructions=[make_return()],
            ),
        ]
        return Program([Function("m", blocks)], entry="m")

    def test_same_seed_same_trace(self):
        program = self.make_probabilistic()
        first = execute_program(program, seed=7).block_sequence
        second = execute_program(program, seed=7).block_sequence
        assert first == second

    def test_rerun_on_same_program_object_is_stable(self):
        # FixedTrip counters must not leak between runs.
        program = make_loop_program(trip=4)
        first = execute_program(program).block_sequence
        second = execute_program(program).block_sequence
        assert first == second


class TestLimits:
    def test_runaway_loop_detected(self):
        blocks = [
            BasicBlock(
                name="m.b0",
                instructions=[make_branch("m.b0")],
                fallthrough="m.b1",
                behavior=TakenProbability(1.0),
            ),
            BasicBlock(name="m.b1", instructions=[make_return()]),
        ]
        program = Program([Function("m", blocks)], entry="m")
        with pytest.raises(SimulationError):
            execute_program(program, max_steps=1000)
