"""Integration tests of the replacement-policy suite.

Three angles on the new policies (see ``docs/POLICIES.md``):

* reference-vs-vector equivalence for the kernel-supported non-stack
  policies (LFU, 2Q) across the line-size × associativity grid on
  committed workloads;
* the Belady (OPT) policy against an analytic oracle and against every
  online policy — offline optimality must never be beaten;
* the ``m_ij`` audit under every new policy, proving conflict
  attribution stays exact when victim selection changes.
"""

from dataclasses import replace

import pytest

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.memory.kernel.stream import compile_stream
from repro.memory.kernel.vector import simulate_stream
from repro.memory.kernel.verify import (
    report_differences,
    workload_images,
)
from repro.memory.replacement import OptOracle, available_policies


def _run_policy(trace, num_ways, policy):
    """Misses of *trace* through a one-set *num_ways* cache."""
    line_size = 8
    config = CacheConfig(
        size=line_size * num_ways,
        line_size=line_size,
        associativity=num_ways,
        policy=policy,
    )
    cache = Cache(config)
    if policy == "opt":
        cache.attach_oracle(lambda: OptOracle(list(trace)))
    misses = 0
    for line in trace:
        if not cache.access_line(line, f"mo{line}"):
            misses += 1
    return misses


class TestOptLowerBound:
    #: Online policies OPT must never lose to (random excluded only
    #: because its victims depend on an unrelated RNG stream; it is
    #: still covered by the sweep below).
    ONLINE = ("lru", "fifo", "lfu", "2q", "arc")

    def test_analytic_cyclic_trace(self):
        # The textbook thrash case: 0 1 2 repeated through 2 ways.
        # LRU/FIFO miss every probe (9); Belady keeps the sooner-used
        # line and hits once per cycle after the cold start (6).
        trace = [0, 1, 2] * 3
        assert _run_policy(trace, 2, "lru") == 9
        assert _run_policy(trace, 2, "fifo") == 9
        assert _run_policy(trace, 2, "opt") == 6

    @pytest.mark.parametrize("policy", ONLINE)
    def test_never_beaten_cyclic(self, policy):
        trace = [0, 1, 2, 3] * 4
        assert _run_policy(trace, 2, "opt") <= \
            _run_policy(trace, 2, policy)

    @pytest.mark.parametrize("policy", sorted(available_policies()))
    def test_never_beaten_mixed(self, policy):
        # A reuse-heavy trace with a scan in the middle, 2 and 4 ways.
        trace = [0, 1, 0, 2, 0, 1, 3, 4, 5, 6, 0, 1, 0, 2, 1] * 2
        for ways in (2, 4):
            assert _run_policy(trace, ways, "opt") <= \
                _run_policy(trace, ways, policy)


@pytest.mark.parametrize("workload_name", ["tiny", "adpcm"])
@pytest.mark.parametrize("policy", ["lfu", "2q"])
@pytest.mark.parametrize("line_size", [8, 16, 32])
@pytest.mark.parametrize("associativity", [1, 2, 4])
def test_vector_kernel_matches_reference(workload_name, policy,
                                         line_size, associativity):
    """LFU/2Q replay bit-identically on the vector kernel."""
    bench, images = workload_images(workload_name, 1.0, 0)
    config = bench.config
    hierarchy = HierarchyConfig(cache=CacheConfig(
        size=line_size * associativity * 4,
        line_size=line_size,
        associativity=associativity,
        policy=policy,
    ))
    for label, image, spm_size in images:
        stream = compile_stream(image, bench.block_sequence,
                                spm_base=config.spm_base)
        sized = replace(hierarchy, spm_size=spm_size)
        reference = simulate(
            image, sized, bench.block_sequence,
            spm_base=config.spm_base, backend="reference",
        )
        vector = simulate_stream(stream, sized,
                                 spm_base=config.spm_base)
        assert report_differences(reference, vector) == [], \
            f"{workload_name}/{label}"


@pytest.mark.parametrize("workload_name", ["tiny", "adpcm"])
@pytest.mark.parametrize("policy", ["lfu", "2q", "arc", "opt"])
def test_audit_passes_under_every_policy(workload_name, policy):
    """The m_ij re-derivation is exact whatever evicts the victim."""
    from repro.obs.events import audit_workload

    result = audit_workload(workload_name, policy=policy)
    assert result.ok, result.render()


@pytest.mark.parametrize("policy", ["lfu", "2q", "arc", "opt"])
def test_audit_passes_set_associative(policy):
    """Audit with real eviction pressure: a 2-way cache on adpcm."""
    from repro.obs.events import audit_workload

    result = audit_workload("adpcm", policy=policy, associativity=2)
    assert result.ok, result.render()
