"""Acceptance tests: ``--trace``/``--metrics`` through the real CLI.

The ISSUE-level criterion: ``repro sweep --jobs 2 --trace out.json``
produces a valid Chrome-trace file whose span set is identical (modulo
timings) to the serial run, and ``repro report out.json`` renders
stage timings and cache hit rates from it.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.report import CHUNK_SPAN, POINT_SPAN

#: Timing-only span attributes, excluded from identity comparisons.
TIMING_ARGS = ("cpu_us", "depth")

SWEEP_ARGS = [
    "sweep", "--workload", "tiny", "--sizes", "64",
    "--algorithms", "casa", "steinke", "--scale", "0.2",
]


def traced_sweep(tmp_path, label, extra=()):
    """Run one traced sweep against a private cache; returns the doc."""
    trace_file = tmp_path / f"{label}.json"
    argv = SWEEP_ARGS + [
        "--cache-dir", str(tmp_path / f"cache-{label}"),
        "--trace", str(trace_file), *extra,
    ]
    assert main(argv) == 0
    return trace_file, json.loads(trace_file.read_text())


def point_signatures(document):
    """Sorted functional signatures of the work-unit spans."""
    return sorted(
        tuple(sorted(
            (key, value)
            for key, value in event["args"].items()
            if key not in TIMING_ARGS
        ))
        for event in document["traceEvents"]
        if event["name"] in (POINT_SPAN, CHUNK_SPAN)
    )


def test_parallel_trace_matches_serial(tmp_path, capsys):
    _, serial = traced_sweep(tmp_path, "serial")
    _, parallel = traced_sweep(tmp_path, "parallel",
                               extra=["--jobs", "2"])
    capsys.readouterr()

    # Both are valid Chrome-trace documents.
    for document in (serial, parallel):
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"], "no spans recorded"
        for event in document["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert isinstance(event["name"], str)

    # Identical span set modulo timings: same names, same design-point
    # evaluations with the same functional attributes.
    serial_names = {e["name"] for e in serial["traceEvents"]}
    parallel_names = {e["name"] for e in parallel["traceEvents"]}
    assert serial_names == parallel_names
    assert point_signatures(serial) == point_signatures(parallel)

    # The expected instrumentation is present on a cold run (the
    # sweep schedules grid chunks by default).
    assert CHUNK_SPAN in serial_names
    assert "engine.resolve.result" in serial_names
    assert "ilp.solve" in serial_names
    assert "sim.hierarchy" in serial_names
    assert "trace.generate" in serial_names
    assert "graph.build" in serial_names


def test_report_renders_stage_timings_and_hit_rates(tmp_path, capsys):
    trace_file, _ = traced_sweep(tmp_path, "reported")
    capsys.readouterr()

    assert main(["report", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "# Run report: `sweep`" in out
    assert "## Stage timings" in out
    assert "execution" in out and "hit rate" in out
    assert "## Cache behaviour" in out
    assert "simulated I-cache" in out
    assert "## Slowest design points" in out
    assert "algorithm=casa" in out

    assert main(["report", str(trace_file), "--json", "--top", "2"]) \
        == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["command"] == "sweep"
    assert summary["stages"]["execution"]["computed"] == 1
    assert len(summary["slowest"]) <= 2


def test_metrics_flag_prints_registry(tmp_path, capsys):
    argv = SWEEP_ARGS + [
        "--cache-dir", str(tmp_path / "cache"), "--metrics",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "ilp.lp_solves" in out
    assert "sim.cache_accesses" in out
    assert "engine.stage.result.computed" in out


def test_trace_embeds_record_and_metrics(tmp_path):
    _, document = traced_sweep(tmp_path, "meta")
    metadata = document["casa"]
    assert metadata["command"] == "sweep"
    assert metadata["record"]["execution"]["computed"] == 1
    assert metadata["metrics"]["graph.builds"]["value"] == 1
    assert "--trace" in metadata["argv"]
