"""Tests for repro.core.conflict_graph."""

import pytest

from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.memory.stats import MemoryObjectStats, SimulationReport


def graph_abc():
    """A small hand-built graph: A<->B heavy conflict, C isolated."""
    graph = ConflictGraph()
    graph.add_node(ConflictNode("A", fetches=1000, size=64,
                                compulsory_misses=4))
    graph.add_node(ConflictNode("B", fetches=800, size=64,
                                compulsory_misses=4))
    graph.add_node(ConflictNode("C", fetches=200, size=32,
                                compulsory_misses=2))
    graph.add_edge("A", "B", 300)
    graph.add_edge("B", "A", 250)
    return graph


MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


class TestConstruction:
    def test_duplicate_node(self):
        graph = graph_abc()
        with pytest.raises(ConfigurationError):
            graph.add_node(ConflictNode("A", 1, 1))

    def test_edge_needs_nodes(self):
        graph = graph_abc()
        with pytest.raises(ConfigurationError):
            graph.add_edge("A", "Z", 1)

    def test_self_edge_rejected(self):
        graph = graph_abc()
        with pytest.raises(ConfigurationError):
            graph.add_edge("A", "A", 1)

    def test_zero_weight_rejected(self):
        graph = graph_abc()
        with pytest.raises(ConfigurationError):
            graph.add_edge("A", "C", 0)

    def test_parallel_edges_merge(self):
        graph = graph_abc()
        graph.add_edge("A", "C", 5)
        graph.add_edge("A", "C", 7)
        assert graph.edge_weight("A", "C") == 12
        assert graph.num_edges == 3


class TestQueries:
    def test_counts(self):
        graph = graph_abc()
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_conflicts_of(self):
        graph = graph_abc()
        assert graph.conflicts_of("A") == [("B", 300)]
        assert graph.conflicts_of("C") == []

    def test_victims_of(self):
        graph = graph_abc()
        assert graph.victims_of("A") == [("B", 250)]

    def test_total_conflict_misses_includes_self(self):
        graph = graph_abc()
        graph.node("C").self_misses = 10
        assert graph.total_conflict_misses == 300 + 250 + 10


class TestFromSimulation:
    def make_report(self):
        report = SimulationReport()
        report.mo_stats["T0"] = MemoryObjectStats(
            "T0", fetches=100, cache_hits=90, cache_misses=10,
            compulsory_misses=2)
        report.mo_stats["T1"] = MemoryObjectStats(
            "T1", fetches=50, cache_hits=45, cache_misses=5,
            compulsory_misses=1)
        report.conflict_misses[("T0", "T1")] = 8
        report.conflict_misses[("T1", "T1")] = 4  # self conflict
        return report

    def make_mos(self, tiny_workbench=None):
        # minimal stand-ins: objects with names and sizes
        class FakeMo:
            def __init__(self, name, size):
                self.name = name
                self.unpadded_size = size
        return [FakeMo("T0", 64), FakeMo("T1", 32)]

    def test_builds_nodes_edges(self):
        graph = ConflictGraph.from_simulation(
            self.make_mos(), self.make_report())
        assert graph.node("T0").fetches == 100
        assert graph.node("T0").size == 64
        assert graph.edge_weight("T0", "T1") == 8
        assert graph.node("T1").self_misses == 4

    def test_rejects_spm_profiled_report(self):
        report = self.make_report()
        report.mo_stats["T0"].spm_accesses = 5
        with pytest.raises(ConfigurationError):
            ConflictGraph.from_simulation(self.make_mos(), report)

    def test_unfetched_object_gets_zero_node(self):
        report = self.make_report()
        class FakeMo:
            def __init__(self, name, size):
                self.name = name
                self.unpadded_size = size
        mos = self.make_mos() + [FakeMo("T9", 16)]
        graph = ConflictGraph.from_simulation(mos, report)
        assert graph.node("T9").fetches == 0


class TestPredictedEnergy:
    def test_empty_allocation(self):
        graph = graph_abc()
        energy = graph.predicted_energy(set(), MODEL)
        expected = (
            (1000 + 800 + 200) * 1.0           # hits
            + (300 + 250) * 20.0               # conflict misses
            + (4 + 4 + 2) * 20.0               # compulsory
        )
        assert energy == pytest.approx(expected)

    def test_allocating_evictor_removes_edge_term(self):
        graph = graph_abc()
        without_b = graph.predicted_energy({"B"}, MODEL)
        expected = (
            1000 * 1.0 + 200 * 1.0            # A, C cached hits
            + 800 * 0.5                       # B on SPM
            + (4 + 2) * 20.0                  # compulsory of A and C
        )
        assert without_b == pytest.approx(expected)

    def test_compulsory_flag(self):
        graph = graph_abc()
        with_comp = graph.predicted_energy(set(), MODEL,
                                           include_compulsory=True)
        without = graph.predicted_energy(set(), MODEL,
                                         include_compulsory=False)
        assert with_comp - without == pytest.approx(10 * 20.0)

    def test_unknown_object_rejected(self):
        graph = graph_abc()
        with pytest.raises(ConfigurationError):
            graph.predicted_energy({"Z"}, MODEL)

    def test_monotone_improvement_for_isolated_node(self):
        graph = graph_abc()
        base = graph.predicted_energy(set(), MODEL)
        with_c = graph.predicted_energy({"C"}, MODEL)
        assert with_c < base


class TestExport:
    def test_networkx_roundtrip(self):
        nx_graph = graph_abc().to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph["A"]["B"]["misses"] == 300
        assert nx_graph.nodes["A"]["fetches"] == 1000

    def test_dot_output(self):
        dot = graph_abc().to_dot()
        assert dot.startswith("digraph")
        assert '"A" -> "B" [label="300"]' in dot


class TestDeterminism:
    """subgraph/hottest order is independent of input iteration."""

    def test_subgraph_order_follows_parent(self):
        graph = graph_abc()
        expected = graph.subgraph(["A", "B", "C"])
        for names in (["C", "B", "A"], {"A", "B", "C"},
                      frozenset({"C", "A", "B"})):
            sub = graph.subgraph(names)
            assert sub.node_names == expected.node_names
            assert sub.edges() == expected.edges()

    def test_subgraph_accepts_generator(self):
        graph = graph_abc()
        sub = graph.subgraph(name for name in ("B", "A"))
        assert sub.node_names == ["A", "B"]
        assert sub.edges() == [("A", "B", 300), ("B", "A", 250)]

    def test_hottest_breaks_ties_by_insertion(self):
        graph = ConflictGraph()
        for name in ("X", "Y", "Z"):
            graph.add_node(ConflictNode(name, fetches=100, size=16))
        assert graph.hottest(2).node_names == ["X", "Y"]

    def test_hottest_keeps_parent_order(self):
        graph = graph_abc()
        # B and A are hottest; the subgraph still lists A first
        # because the parent inserted it first.
        assert graph.hottest(2).node_names == ["A", "B"]
