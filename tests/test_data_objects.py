"""Tests for repro.data.objects and stream generation."""

import pytest

from repro.data.objects import (
    DataAccessPattern,
    DataObject,
    DataSpec,
    DataUse,
)
from repro.data.stream import generate_access_stream
from repro.errors import ConfigurationError
from repro.program.executor import execute_program
from repro.workloads import get_workload
from repro.workloads.dataspecs import get_data_spec

from tests.conftest import make_loop_program


class TestDataObject:
    def test_positive_size(self):
        with pytest.raises(ConfigurationError):
            DataObject("x", size=0)

    def test_element_divisibility(self):
        with pytest.raises(ConfigurationError):
            DataObject("x", size=10, element_size=4)

    def test_num_elements(self):
        assert DataObject("x", size=64, element_size=4).num_elements \
            == 16


class TestDataUse:
    def test_needs_accesses(self):
        with pytest.raises(ConfigurationError):
            DataUse("x")

    def test_negative_counts(self):
        with pytest.raises(ConfigurationError):
            DataUse("x", reads=-1)

    def test_stride_validated(self):
        with pytest.raises(ConfigurationError):
            DataUse("x", reads=1, stride_elements=0)


class TestDataSpec:
    def test_duplicate_objects(self):
        with pytest.raises(ConfigurationError):
            DataSpec(objects=[DataObject("x", 16), DataObject("x", 16)])

    def test_unknown_object_in_use(self):
        with pytest.raises(ConfigurationError):
            DataSpec(objects=[DataObject("x", 16)],
                     uses={"f": [DataUse("ghost", reads=1)]})

    def test_validate_against_program(self):
        program = make_loop_program()
        spec = DataSpec(objects=[DataObject("x", 16)],
                        uses={"ghost_fn": [DataUse("x", reads=1)]})
        with pytest.raises(ConfigurationError):
            spec.validate_against(program)

    def test_total_size(self):
        spec = get_data_spec("adpcm")
        assert spec.total_size == sum(o.size for o in spec.objects)

    def test_unknown_workload_spec(self):
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            get_data_spec("mpeg")


class TestStreamGeneration:
    def make_stream(self, scale=0.1):
        workload = get_workload("adpcm", scale=scale)
        spec = get_data_spec("adpcm")
        execution = execute_program(workload.program)
        return workload, spec, generate_access_stream(
            workload.program, spec, execution.block_sequence
        )

    def test_counts_match_annotations(self):
        workload, spec, stream = self.make_stream()
        execution = execute_program(workload.program)
        coder_runs = execution.profile.block_count(
            workload.program.function("adpcm_coder").entry.name
        )
        coder_reads = [
            a for a in stream
            if a.object_name == "pcm_in" and not a.is_write
        ]
        assert len(coder_reads) == coder_runs

    def test_offsets_within_objects(self):
        _, spec, stream = self.make_stream()
        for access in stream:
            obj = spec.object(access.object_name)
            assert 0 <= access.offset < obj.size

    def test_sequential_pattern_advances(self):
        _, _, stream = self.make_stream()
        offsets = [a.offset for a in stream
                   if a.object_name == "pcm_in"][:5]
        assert offsets == [0, 2, 4, 6, 8]

    def test_hot_fields_stay_small(self):
        _, spec, stream = self.make_stream()
        state = [a.offset for a in stream
                 if a.object_name == "coder_state"]
        assert state
        assert max(state) <= 3 * 4

    def test_deterministic(self):
        _, _, first = self.make_stream()
        _, _, second = self.make_stream()
        assert first == second
