"""Tests for the repro.energy package."""

import pytest

from repro.energy.banakar import scratchpad_access_energy
from repro.energy.cacti import (
    cache_access_energy,
    cache_refill_energy,
    sram_access_energy,
)
from repro.energy.loopcache import (
    loop_cache_access_energy,
    loop_cache_controller_energy,
)
from repro.energy.mainmem import MAIN_MEMORY_WORD_ENERGY_NJ
from repro.energy.model import (
    EnergyModel,
    build_energy_model,
    compute_energy,
)
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.loopcache import LoopCacheConfig
from repro.memory.stats import MemoryObjectStats, SimulationReport


class TestCacti:
    def test_sram_monotonic_in_size(self):
        sizes = [64, 128, 256, 512, 1024, 2048, 4096]
        energies = [sram_access_energy(s) for s in sizes]
        assert energies == sorted(energies)

    def test_cache_grows_with_associativity(self):
        dm = cache_access_energy(2048, 16, 1)
        two_way = cache_access_energy(2048, 16, 2)
        assert two_way > dm

    def test_cache_grows_with_line_size(self):
        small = cache_access_energy(2048, 16, 1)
        big = cache_access_energy(2048, 32, 1)
        assert big > small

    def test_spm_cheaper_than_cache_of_same_size(self):
        for size in (128, 256, 1024, 2048):
            assert scratchpad_access_energy(size) < \
                cache_access_energy(size, 16, 1)

    def test_small_spm_cheaper_than_benchmark_caches(self):
        # The relation the whole allocation problem relies on.
        for cache_size in (128, 1024, 2048):
            hit = cache_access_energy(cache_size, 16, 1)
            for spm in (64, 128, 256):
                assert scratchpad_access_energy(spm) < hit

    def test_refill_positive(self):
        assert cache_refill_energy(2048, 16, 1) > 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            cache_access_energy(0, 16, 1)
        with pytest.raises(ConfigurationError):
            cache_access_energy(16, 16, 4)
        with pytest.raises(ConfigurationError):
            sram_access_energy(0)
        with pytest.raises(ConfigurationError):
            scratchpad_access_energy(-1)


class TestLoopCacheModel:
    def test_controller_scales_with_regions(self):
        assert loop_cache_controller_energy(8) > \
            loop_cache_controller_energy(4)

    def test_access_equals_sram(self):
        assert loop_cache_access_energy(256) == sram_access_energy(256)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            loop_cache_controller_energy(0)
        with pytest.raises(ConfigurationError):
            loop_cache_access_energy(0)


class TestEnergyModel:
    def test_miss_must_exceed_hit(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(cache_hit=1.0, cache_miss=0.5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(spm_access=-1.0)

    def test_build_for_cache_spm(self):
        config = HierarchyConfig(
            cache=CacheConfig(size=2048, line_size=16, associativity=1),
            spm_size=256,
        )
        model = build_energy_model(config)
        assert model.spm_access < model.cache_hit < model.cache_miss
        # miss includes the off-chip transfer of a whole line
        assert model.cache_miss > 4 * MAIN_MEMORY_WORD_ENERGY_NJ

    def test_build_for_loop_cache(self):
        config = HierarchyConfig(
            cache=CacheConfig(size=2048, line_size=16, associativity=1),
            loop_cache=LoopCacheConfig(size=256, max_regions=4),
        )
        model = build_energy_model(config)
        assert model.lc_access > 0
        assert model.lc_controller_check > 0
        assert model.spm_access == 0

    def test_build_cacheless(self):
        model = build_energy_model(HierarchyConfig(cache=None,
                                                   spm_size=128))
        assert model.cache_miss == MAIN_MEMORY_WORD_ENERGY_NJ
        assert model.cache_hit == 0


class TestComputeEnergy:
    def make_report(self):
        report = SimulationReport()
        report.mo_stats["T0"] = MemoryObjectStats(
            name="T0", fetches=100, spm_accesses=40, lc_accesses=10,
            cache_hits=45, cache_misses=5,
        )
        report.lc_controller_checks = 60
        return report

    def test_breakdown_arithmetic(self):
        model = EnergyModel(cache_hit=1.0, cache_miss=10.0,
                            spm_access=0.5, lc_access=0.6,
                            lc_controller_check=0.1)
        breakdown = compute_energy(self.make_report(), model)
        assert breakdown.spm == pytest.approx(20.0)
        assert breakdown.loop_cache == pytest.approx(6.0)
        assert breakdown.lc_controller == pytest.approx(6.0)
        assert breakdown.cache_hits == pytest.approx(45.0)
        assert breakdown.cache_misses == pytest.approx(50.0)
        assert breakdown.total == pytest.approx(127.0)
        assert breakdown.total_uj == pytest.approx(0.127)

    def test_zero_report(self):
        model = EnergyModel(cache_hit=1.0, cache_miss=10.0)
        assert compute_energy(SimulationReport(), model).total == 0.0
