"""Hardening-layer tests: admission, breakers, deadlines, drain.

The serve-chaos gate (:mod:`repro.serve.chaos`) proves the hardened
daemon survives a hostile world end to end; these tests pin the
individual mechanisms — circuit-breaker state transitions under an
injectable clock, admission accounting, deadline propagation, tenant
quota isolation, graceful drain and the adversarial client modes —
so a regression names the broken layer instead of failing the whole
gate.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

from repro.serve.admission import (
    SHED_BREAKER,
    SHED_DRAINING,
    SHED_OVERLOAD,
    SHED_TENANT,
    AdmissionController,
    AdmissionTicket,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.obs.metrics import MetricsRegistry
from repro.serve.daemon import start_in_thread
from repro.serve.loadgen import run_adversarial, run_load
from repro.serve.schema import (
    SCHEMA_VERSION,
    EvaluateRequest,
    ShedResponse,
    SimulateRequest,
    request_from_json,
    response_from_json,
)
from repro.serve.service import AllocationService, ServiceConfig


class _Clock:
    """A hand-cranked monotonic clock for breaker tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _service(**overrides) -> AllocationService:
    defaults = dict(max_delay_s=0.05)
    defaults.update(overrides)
    return AllocationService(ServiceConfig(**defaults))


def _post(port: int, path: str, payload) -> tuple[int, dict, dict]:
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=60)
    try:
        body = payload if isinstance(payload, (bytes, str)) \
            else json.dumps(payload)
        connection.request("POST", path, body=body,
                           headers={"Content-Type":
                                    "application/json"})
        reply = connection.getresponse()
        headers = {name.lower(): value
                   for name, value in reply.getheaders()}
        return reply.status, json.loads(reply.read()), headers
    finally:
        connection.close()


class TestCircuitBreaker:
    """State-machine transitions under an injectable clock."""

    def test_opens_at_threshold_and_sheds(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=3, window_s=10.0,
                                 cooldown_s=5.0, clock=clock)
        assert breaker.state == CLOSED
        for _ in range(2):
            assert breaker.allow()
            breaker.record(ok=False)
        assert breaker.state == CLOSED
        breaker.record(ok=False)
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_rolling_window_forgets_old_failures(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=3, window_s=10.0,
                                 clock=clock)
        breaker.record(ok=False)
        breaker.record(ok=False)
        clock.advance(11.0)  # both failures age out of the window
        breaker.record(ok=False)
        assert breaker.state == CLOSED

    def test_half_open_probe_success_closes(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record(ok=False)
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown not yet elapsed
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # one probe at a time
        breaker.record(ok=True)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record(ok=False)
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record(ok=False)
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow()  # cooldown restarted

    def test_stale_outcome_cannot_close_an_open_breaker(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=clock)
        assert breaker.allow()  # admitted before the failures landed
        breaker.record(ok=False)
        assert breaker.state == OPEN
        breaker.record(ok=True)  # the stale straggler resolves late
        assert breaker.state == OPEN

    def test_threshold_zero_disables_the_breaker(self):
        breaker = CircuitBreaker(threshold=0, clock=_Clock())
        for _ in range(50):
            assert breaker.allow()
            breaker.record(ok=False)
        assert breaker.state == CLOSED


class TestAdmissionController:
    """Gate ordering, accounting and release bookkeeping."""

    def _controller(self, **overrides) -> AdmissionController:
        defaults = dict(max_inflight=2)
        defaults.update(overrides)
        return AdmissionController(MetricsRegistry(), **defaults)

    def test_max_inflight_sheds_overload(self):
        controller = self._controller(max_inflight=2)
        first = controller.try_admit("evaluate", "default")
        second = controller.try_admit("evaluate", "default")
        assert isinstance(first, AdmissionTicket)
        assert isinstance(second, AdmissionTicket)
        assert controller.try_admit("evaluate", "default") \
            == SHED_OVERLOAD
        first.release(ok=True)
        assert isinstance(
            controller.try_admit("evaluate", "default"),
            AdmissionTicket)
        registry = controller.registry
        assert registry.value("serve.shed.total") == 1
        assert registry.value("serve.shed.overload") == 1
        assert registry.value("serve.shed.verb.evaluate") == 1

    def test_tenant_quota_isolates_tenants(self):
        controller = self._controller(max_inflight=0, tenant_quota=1)
        ticket = controller.try_admit("evaluate", "team-a")
        assert isinstance(ticket, AdmissionTicket)
        assert controller.try_admit("evaluate", "team-a") \
            == SHED_TENANT
        # A noisy neighbor must not consume team-b's quota.
        assert isinstance(controller.try_admit("evaluate", "team-b"),
                          AdmissionTicket)
        ticket.release(ok=True)
        assert isinstance(controller.try_admit("evaluate", "team-a"),
                          AdmissionTicket)

    def test_drain_sheds_everything(self):
        controller = self._controller()
        controller.begin_drain()
        assert controller.try_admit("evaluate", "default") \
            == SHED_DRAINING
        assert controller.registry.value("serve.shed.draining") == 1

    def test_open_breaker_sheds_before_concurrency(self):
        clock = _Clock()
        controller = self._controller(max_inflight=1,
                                      breaker_threshold=1,
                                      clock=clock)
        ticket = controller.try_admit("evaluate", "default")
        ticket.release(ok=False)  # threshold=1: breaker opens
        assert controller.try_admit("evaluate", "default") \
            == SHED_BREAKER
        assert controller.registry.value("serve.breaker.opens") == 1
        # Other verbs keep their own (closed) breakers.
        assert isinstance(controller.try_admit("simulate", "default"),
                          AdmissionTicket)

    def test_release_is_idempotent(self):
        controller = self._controller(max_inflight=1)
        ticket = controller.try_admit("evaluate", "default")
        ticket.release(ok=True)
        ticket.release(ok=True)
        assert controller.inflight == 0

    def test_probe_rollback_on_post_breaker_shed(self):
        clock = _Clock()
        controller = self._controller(max_inflight=1,
                                      breaker_threshold=1,
                                      breaker_cooldown_s=1.0,
                                      clock=clock)
        failing = controller.try_admit("evaluate", "default")
        failing.release(ok=False)  # opens the evaluate breaker
        # A different verb (its breaker is closed) occupies the only
        # inflight slot while evaluate's cooldown elapses.
        blocker = controller.try_admit("simulate", "default")
        assert isinstance(blocker, AdmissionTicket)
        clock.advance(1.1)
        # Half-open probe admitted by the breaker but shed by the
        # inflight gate: the probe slot must be returned, or the
        # breaker would wait forever for an outcome that never comes.
        assert controller.try_admit("evaluate", "default") \
            == SHED_OVERLOAD
        blocker.release(ok=True)
        assert isinstance(controller.try_admit("evaluate", "default"),
                          AdmissionTicket)


class TestSchemaV2:
    """Wire-compatibility of the hardening additions."""

    def test_deadline_round_trips(self):
        request = EvaluateRequest("tiny", scale=0.2, deadline_ms=250)
        decoded = request_from_json(request.to_json())
        assert decoded.deadline_ms == 250

    def test_v1_payloads_still_decode(self):
        payload = SimulateRequest("tiny", scale=0.2).to_json()
        payload["schema_version"] = 1
        decoded = request_from_json(payload)
        assert decoded.workload == "tiny"
        assert decoded.deadline_ms is None
        assert SCHEMA_VERSION == 2

    def test_shed_response_round_trips(self):
        response = ShedResponse(reason="overload", retry_after_s=2.5)
        decoded = response_from_json(response.to_json())
        assert decoded.status == "shed"
        assert decoded.reason == "overload"
        assert decoded.retry_after_s == 2.5


class TestServiceHardening:
    """The mechanisms wired into a live service (no HTTP)."""

    def test_breaker_opens_closes_end_to_end(self):
        # A bad workload is the deterministic way to produce genuine
        # ``failed`` responses: injected solver faults are healed into
        # retried/degraded answers by design, and those must never
        # trip a breaker.
        service = _service(breaker_threshold=2,
                           breaker_cooldown_s=0.05)
        service.start()
        try:
            async def scenario():
                for _ in range(2):
                    response = await service.handle(
                        SimulateRequest("no-such-workload"))
                    assert response.status == "failed"
                shed = await service.handle(
                    SimulateRequest("no-such-workload"))
                assert shed.status == "shed"
                assert shed.reason == SHED_BREAKER
                await asyncio.sleep(0.08)  # cooldown elapses
                probe = await service.handle(
                    SimulateRequest("tiny", scale=0.2))
                assert probe.status == "ok"
                again = await service.handle(
                    SimulateRequest("tiny", scale=0.2))
                assert again.status == "ok"

            asyncio.run(scenario())
        finally:
            service.stop()
        assert service.registry.value("serve.breaker.opens") == 1
        assert service.registry.value("serve.shed.breaker") == 1
        state = service.registry.snapshot()[
            "serve.breaker.state.simulate"]
        assert state["value"] == 0  # closed again

    def test_healed_faults_do_not_trip_the_breaker(self):
        service = _service(breaker_threshold=1,
                           fault_spec="worker.exec:error@nth=1")
        service.start()
        try:
            response = asyncio.run(service.handle(
                EvaluateRequest("tiny", scale=0.2, spm_size=64)))
        finally:
            service.stop()
        assert response.status in ("retried", "degraded")
        assert service.registry.value("serve.breaker.opens") == 0

    def test_tenant_quota_isolation_under_concurrency(self):
        service = _service(tenant_quota=1, max_delay_s=0.1)
        service.start()

        async def scenario():
            return await asyncio.gather(
                service.handle(EvaluateRequest(
                    "tiny", scale=0.2, spm_size=64, tenant="team-a")),
                service.handle(EvaluateRequest(
                    "tiny", scale=0.2, spm_size=128, tenant="team-a")),
                service.handle(EvaluateRequest(
                    "tiny", scale=0.2, spm_size=64, tenant="team-b")),
            )

        try:
            first, second, other = asyncio.run(scenario())
        finally:
            service.stop()
        assert first.status == "ok"
        assert second.status == "shed"
        assert second.reason == SHED_TENANT
        assert other.status == "ok"  # team-b unaffected

    def test_deadline_expires_in_queue(self):
        service = _service(max_delay_s=0.05)
        service.start()
        try:
            response = asyncio.run(service.handle(EvaluateRequest(
                "tiny", scale=0.2, spm_size=64, deadline_ms=1)))
        finally:
            service.stop()
        assert response.status == "deadline_exceeded"
        assert response.error["type"] == "DeadlineExceeded"
        assert response.error["site"] == "serve.queue"
        assert service.registry.value("serve.deadline.exceeded") == 1
        assert service.registry.value(
            "serve.deadline.expired_in_queue") == 1

    def test_generous_deadline_is_met(self):
        service = _service(max_delay_s=0.02)
        service.start()
        try:
            response = asyncio.run(service.handle(EvaluateRequest(
                "tiny", scale=0.2, spm_size=64, deadline_ms=60_000)))
        finally:
            service.stop()
        assert response.status == "ok"

    def test_drain_flips_readiness_then_finishes_inflight(self):
        service = _service(max_delay_s=0.1)
        service.start()

        async def scenario():
            inflight = asyncio.ensure_future(service.handle(
                EvaluateRequest("tiny", scale=0.2, spm_size=64)))
            await asyncio.sleep(0.02)  # let it enter the batcher
            service.begin_drain()
            assert service.readyz() is False
            healthy, _ = service.healthz()
            assert healthy is False
            late = await service.handle(
                EvaluateRequest("tiny", scale=0.2, spm_size=128))
            assert late.status == "shed"
            assert late.reason == SHED_DRAINING
            assert await service.drain(timeout_s=30.0) is True
            return await inflight

        try:
            response = asyncio.run(scenario())
        finally:
            service.stop()
        assert response.status == "ok"
        assert service.admission.inflight == 0

    def test_metrics_text_exports_gauges(self):
        service = _service()
        service.start()
        try:
            asyncio.run(service.handle(
                SimulateRequest("tiny", scale=0.2)))
            text = service.metrics_text()
        finally:
            service.stop()
        assert "repro_serve_inflight 0" in text


class TestDaemonHardening:
    """HTTP-visible behavior: sheds, 400s, adversarial clients."""

    def test_shed_is_503_with_retry_after(self):
        service = _service(retry_after_s=2.0)
        handle = start_in_thread(service)
        try:
            service.begin_drain()
            status, data, headers = _post(
                handle.port, "/v1/simulate",
                {"schema_version": 2, "workload": "tiny",
                 "scale": 0.2})
        finally:
            handle.stop()
        assert status == 503
        assert data["kind"] == "shed.response"
        assert data["status"] == "shed"
        assert data["reason"] == SHED_DRAINING
        assert headers.get("retry-after") == "2"

    def test_oversized_body_gets_structured_400(self):
        handle = start_in_thread(_service(), max_body_bytes=256)
        try:
            status, data, _ = _post(handle.port, "/v1/simulate",
                                    b"x" * 512)
        finally:
            handle.stop()
        assert status == 400
        assert data["kind"] == "error.response"
        assert data["error"]["type"] == "OversizedBody"

    def test_adversarial_modes_are_absorbed(self):
        service = _service()
        handle = start_in_thread(service, client_timeout_s=0.3)
        try:
            malformed = run_adversarial(handle.url, "malformed",
                                        count=2)
            unknown = run_adversarial(handle.url, "unknown_verb",
                                      count=2)
            slow = run_adversarial(handle.url, "slowloris", count=1,
                                   timeout_s=5.0)
            disconnect = run_adversarial(handle.url, "disconnect",
                                         count=2)
            time.sleep(0.4)  # let disconnect bookkeeping land
            # The daemon is still perfectly serviceable afterwards.
            report = run_load(handle.url, requests=4, workers=2,
                              workload="tiny", scale=0.2)
        finally:
            handle.stop()
        assert malformed["structured_400"] == 2
        assert unknown["structured_400"] == 2
        assert slow["closed_by_server"] == 1
        assert disconnect["sent"] == 2
        assert service.registry.value("serve.client_disconnects") >= 2
        assert service.registry.value("serve.client_timeouts") >= 1
        assert report.failures == 0

    def test_deadline_storm_over_http(self):
        service = _service(max_delay_s=0.05)
        handle = start_in_thread(service)
        try:
            tally = run_adversarial(handle.url, "deadline_storm",
                                    count=4, deadline_ms=1)
        finally:
            handle.stop()
        assert tally["deadline_exceeded"] == 4
        assert tally["failures"] == 0
        assert tally["resets"] == 0

    def test_drain_under_load_sees_no_resets(self):
        service = _service(max_delay_s=0.02)
        handle = start_in_thread(service)
        box = {}

        def loader():
            box["report"] = run_load(handle.url, requests=8,
                                     workers=2, mix="evaluate=1",
                                     workload="tiny", scale=0.2)

        thread = threading.Thread(target=loader)
        try:
            thread.start()
            time.sleep(0.05)  # let requests get in flight
            assert handle.drain(timeout_s=30.0) is True
            thread.join(timeout=60)
            assert not thread.is_alive()
        finally:
            handle.stop()
        report = box["report"]
        assert report.resets == 0
        assert report.failures == 0
        # Everything either completed or was cleanly shed.
        done = sum(count for label, count in report.statuses.items()
                   if label in ("ok", "retried", "degraded", "shed"))
        assert done == report.requests
