"""Tests for repro.utils.rng."""

import pytest

from repro.utils.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.uniform_int(0, 100) for _ in range(50)] == [
            b.uniform_int(0, 100) for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.uniform_int(0, 10**9) for _ in range(8)] != [
            b.uniform_int(0, 10**9) for _ in range(8)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.uniform_int(0, 10**9) == b.uniform_int(0, 10**9)

    def test_fork_does_not_disturb_parent(self):
        parent = DeterministicRng(9)
        first = parent.uniform_int(0, 10**9)
        parent2 = DeterministicRng(9)
        parent2.fork(0)
        assert parent2.uniform_int(0, 10**9) == first


class TestDraws:
    def test_coin_bounds(self):
        rng = DeterministicRng(0)
        assert not any(rng.coin(0.0) for _ in range(100))
        assert all(rng.coin(1.0) for _ in range(100))

    def test_coin_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).coin(1.5)

    def test_uniform_int_inclusive(self):
        rng = DeterministicRng(3)
        values = {rng.uniform_int(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_uniform_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).uniform_int(5, 4)

    def test_choice(self):
        rng = DeterministicRng(1)
        items = ["x", "y", "z"]
        assert all(rng.choice(items) in items for _ in range(50))

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_weighted_choice_zero_weight_never_picked(self):
        rng = DeterministicRng(5)
        picks = {
            rng.weighted_choice(["a", "b"], [1.0, 0.0])
            for _ in range(100)
        }
        assert picks == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_choice(["a"], [1.0, 2.0])

    def test_shuffled_is_permutation(self):
        rng = DeterministicRng(11)
        items = list(range(20))
        result = rng.shuffled(items)
        assert sorted(result) == items
        assert items == list(range(20))  # input unchanged
