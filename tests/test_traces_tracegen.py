"""Tests for repro.traces.tracegen."""

import pytest

from repro.errors import TraceError
from repro.isa import Opcode, make_alu, make_branch, make_return
from repro.program.basicblock import BasicBlock
from repro.program.behavior import FixedTrip
from repro.program.executor import execute_program
from repro.program.function import Function
from repro.program.program import Program
from repro.traces.memory_object import JumpKind
from repro.traces.tracegen import (
    TraceGenConfig,
    fallthrough_chains,
    generate_traces,
)
from repro.workloads.synthetic import random_program

from tests.conftest import make_loop_program


def traces_for(program, max_trace_size=1 << 20, min_ft=1):
    result = execute_program(program)
    config = TraceGenConfig(line_size=16, max_trace_size=max_trace_size,
                            min_fallthrough_count=min_ft)
    return generate_traces(program, result.profile, config)


class TestConfig:
    def test_line_size_check(self):
        with pytest.raises(TraceError):
            TraceGenConfig(line_size=2)

    def test_max_trace_size_check(self):
        with pytest.raises(TraceError):
            TraceGenConfig(line_size=16, max_trace_size=8)

    def test_min_fallthrough_check(self):
        with pytest.raises(TraceError):
            TraceGenConfig(min_fallthrough_count=-1)


class TestChains:
    def test_loop_program_is_one_chain(self):
        program = make_loop_program()
        chains = fallthrough_chains(program)
        assert [[b.name for b in chain] for chain in chains] == [
            ["main.entry", "main.loop", "main.exit"],
        ]

    def test_two_fallthrough_predecessors_rejected(self):
        blocks = [
            BasicBlock("f.a", [make_alu()], fallthrough="f.c"),
            BasicBlock(
                "f.b",
                [make_alu(), make_branch("f.a")],
                fallthrough="f.c",
                behavior=FixedTrip(2),
            ),
            BasicBlock("f.c", [make_return()]),
        ]
        program = Program([Function("f", blocks)], entry="f")
        with pytest.raises(TraceError):
            fallthrough_chains(program)


class TestCoverage:
    """Every instruction of every block appears in exactly one fragment."""

    def check_coverage(self, program, memory_objects):
        covered = {}
        for mo in memory_objects:
            for fragment in mo.fragments:
                key = fragment.block
                covered.setdefault(key, []).append(
                    (fragment.start, fragment.end)
                )
        for block in program.all_blocks():
            ranges = sorted(covered[block.name])
            expected = 0
            for start, end in ranges:
                assert start == expected
                expected = end
            assert expected == block.num_instructions

    def test_loop_program(self):
        program = make_loop_program()
        self.check_coverage(program, traces_for(program))

    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 13])
    def test_random_programs(self, seed):
        program = random_program(seed, num_functions=3, max_depth=2)
        self.check_coverage(program, traces_for(program))

    @pytest.mark.parametrize("max_size", [16, 32, 64])
    def test_with_size_caps(self, max_size):
        program = random_program(42, num_functions=3, max_depth=2)
        mos = traces_for(program, max_trace_size=max_size)
        self.check_coverage(program, mos)
        for mo in mos:
            assert mo.unpadded_size <= max_size


class TestSizeCap:
    def test_large_block_split(self):
        blocks = [
            BasicBlock(
                "f.big",
                [make_alu() for _ in range(30)] + [make_return()],
            ),
        ]
        program = Program([Function("f", blocks)], entry="f")
        mos = traces_for(program, max_trace_size=32)
        assert len(mos) > 1
        for mo in mos:
            assert mo.unpadded_size <= 32
        # intermediate fragments end in ALWAYS continuation jumps
        always = [
            frag for mo in mos for frag in mo.fragments
            if frag.appended_jump is JumpKind.ALWAYS
        ]
        assert always

    def test_unbounded_keeps_chain_together(self):
        program = make_loop_program()
        mos = traces_for(program)
        assert len(mos) == 1


class TestTailJumps:
    def test_trace_ends_unconditionally(self):
        """Paper: traces always end with an unconditional jump."""
        program = random_program(3, num_functions=3, max_depth=2)
        for mo in traces_for(program, max_trace_size=48):
            last = mo.fragments[-1]
            if last.appended_jump is not JumpKind.NONE:
                continue  # explicit appended jump
            block_instructions = program.block(last.block).instructions
            if last.end == len(block_instructions):
                terminator = block_instructions[-1]
                assert terminator.opcode in (Opcode.JUMP, Opcode.RETURN)

    def test_cold_edge_cut(self):
        # With min_fallthrough_count high, every edge is "cold" and the
        # chain splits into per-block traces.
        program = make_loop_program(trip=5)
        mos = traces_for(program, min_ft=10**9)
        assert len(mos) == 3
        # first two traces end with on-fallthrough jumps
        assert mos[0].fragments[-1].appended_jump is JumpKind.ON_FALLTHROUGH
