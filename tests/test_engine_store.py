"""Behaviour of the two-tier artifact store."""

from __future__ import annotations

from repro.engine.store import (
    ArtifactStore,
    default_store,
    set_default_store,
)


def test_memory_roundtrip_and_stats():
    store = ArtifactStore()
    assert store.get("execution", "d1") is None
    store.put("execution", "d1", {"payload": 1})
    assert store.get("execution", "d1") == {"payload": 1}
    assert store.stats.memory_hits == 1
    assert store.stats.misses == 1
    assert store.stats.puts == 1
    assert store.stats.hits == 1


def test_memory_tier_is_keyed_by_stage_and_digest():
    store = ArtifactStore()
    store.put("execution", "d1", "a")
    assert store.get("trace", "d1") is None
    assert store.get("execution", "d2") is None


def test_lru_eviction():
    store = ArtifactStore(memory_items=2)
    store.put("s", "a", 1)
    store.put("s", "b", 2)
    assert store.get("s", "a") == 1  # refresh "a"; "b" is now oldest
    store.put("s", "c", 3)
    assert store.stats.evictions == 1
    assert store.get("s", "b") is None
    assert store.get("s", "a") == 1
    assert store.get("s", "c") == 3


def test_disk_roundtrip_across_store_instances(tmp_path):
    writer = ArtifactStore(cache_dir=tmp_path)
    writer.put("trace", "deadbeef", ["obj1", "obj2"])
    count, total_bytes = writer.disk_usage()
    assert count == 1 and total_bytes > 0

    reader = ArtifactStore(cache_dir=tmp_path)
    assert reader.get("trace", "deadbeef") == ["obj1", "obj2"]
    assert reader.stats.disk_hits == 1
    # The disk hit was promoted into the memory tier.
    assert reader.get("trace", "deadbeef") == ["obj1", "obj2"]
    assert reader.stats.memory_hits == 1


def test_corrupted_entry_is_dropped_and_recomputed(tmp_path):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("graph", "feed", "good")
    [path] = store.disk_entries()
    path.write_bytes(b"not a pickle")

    fresh = ArtifactStore(cache_dir=tmp_path)
    artifact, was_cached = fresh.get_or_compute(
        "graph", "feed", lambda: "recomputed"
    )
    assert (artifact, was_cached) == ("recomputed", False)
    assert fresh.stats.disk_errors == 1
    # The replacement entry is readable again.
    again = ArtifactStore(cache_dir=tmp_path)
    assert again.get("graph", "feed") == "recomputed"


def test_foreign_schema_entry_is_a_miss(tmp_path):
    import pickle

    store = ArtifactStore(cache_dir=tmp_path)
    store.put("graph", "feed", "good")
    [path] = store.disk_entries()
    envelope = pickle.loads(path.read_bytes())
    envelope["schema"] = -1
    path.write_bytes(pickle.dumps(envelope))

    fresh = ArtifactStore(cache_dir=tmp_path)
    assert fresh.get("graph", "feed") is None
    assert fresh.stats.disk_errors == 1
    assert not path.is_file()


def test_get_or_compute_hits_on_second_call():
    store = ArtifactStore()
    calls = []
    compute = lambda: calls.append(1) or "value"  # noqa: E731
    first = store.get_or_compute("result", "d", compute)
    second = store.get_or_compute("result", "d", compute)
    assert first == ("value", False)
    assert second == ("value", True)
    assert len(calls) == 1


def test_clear_empties_both_tiers(tmp_path):
    store = ArtifactStore(cache_dir=tmp_path)
    store.put("execution", "a", 1)
    store.put("trace", "b", 2)
    removed = store.clear()
    assert removed == 2
    assert store.get("execution", "a") is None
    assert store.disk_entries() == []


def test_set_default_store_swaps_and_restores():
    replacement = ArtifactStore()
    previous = set_default_store(replacement)
    try:
        assert default_store() is replacement
    finally:
        set_default_store(previous)
    assert default_store() is not replacement
