"""Tests for the data-side hierarchy simulation and allocation."""

import pytest

from repro.data import DataHierarchyConfig, DataWorkbench, simulate_data
from repro.data.objects import DataObject, DataSpec, DataUse
from repro.data.stream import DataAccess
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.workloads import get_workload
from repro.workloads.dataspecs import get_data_spec


def tiny_spec():
    return DataSpec(
        objects=[DataObject("a", 64), DataObject("b", 64)],
        uses={},
    )


def make_stream(pattern):
    return [DataAccess(name, offset, False)
            for name, offset in pattern]


class TestSimulateData:
    def test_identity(self):
        spec = tiny_spec()
        stream = make_stream([("a", 0), ("a", 4), ("b", 0), ("a", 0)])
        result = simulate_data(
            spec, stream,
            DataHierarchyConfig(cache=CacheConfig(size=64,
                                                  line_size=16)),
        )
        assert result.report.check_identities()
        assert result.report.total_fetches == 4

    def test_spm_resident_objects_bypass_cache(self):
        spec = tiny_spec()
        stream = make_stream([("a", 0), ("a", 4)])
        result = simulate_data(
            spec, stream,
            DataHierarchyConfig(cache=CacheConfig(size=64,
                                                  line_size=16),
                                spm_size=64),
            spm_resident={"a"},
        )
        assert result.report.spm_accesses == 2
        assert result.report.cache_accesses == 0

    def test_capacity_enforced(self):
        spec = tiny_spec()
        with pytest.raises(ConfigurationError):
            simulate_data(
                spec, [],
                DataHierarchyConfig(spm_size=32),
                spm_resident={"a"},
            )

    def test_unknown_resident(self):
        with pytest.raises(ConfigurationError):
            simulate_data(tiny_spec(), [],
                          DataHierarchyConfig(spm_size=1024),
                          spm_resident={"zz"})

    def test_conflict_attribution(self):
        # objects laid out 64B apart in a 64B cache: same sets
        spec = tiny_spec()
        stream = make_stream([("a", 0), ("b", 0), ("a", 0)])
        result = simulate_data(
            spec, stream,
            DataHierarchyConfig(cache=CacheConfig(size=64,
                                                  line_size=16)),
        )
        assert result.report.conflict_misses[("a", "b")] == 1

    def test_uncached_hierarchy(self):
        spec = tiny_spec()
        stream = make_stream([("a", 0), ("b", 0)])
        result = simulate_data(spec, stream,
                               DataHierarchyConfig(cache=None))
        assert result.report.cache_misses == 2
        assert result.report.main_memory_words == 2


class TestDataWorkbench:
    @pytest.fixture(scope="class")
    def bench(self):
        workload = get_workload("adpcm", scale=0.2)
        return DataWorkbench(
            workload.program,
            get_data_spec("adpcm"),
            DataHierarchyConfig(
                cache=CacheConfig(size=256, line_size=16,
                                  associativity=1),
                spm_size=128,
            ),
        )

    def test_graph_over_data_objects(self, bench):
        names = {node.name for node in bench.conflict_graph.nodes()}
        assert "step_table" in names
        assert "coder_state" in names

    def test_casa_allocates_hot_state(self, bench):
        result = bench.run_casa()
        assert "coder_state" in result.allocation.spm_resident
        assert result.report.check_identities()

    def test_casa_beats_or_matches_baseline(self, bench):
        from repro.energy.model import compute_energy
        baseline_energy = compute_energy(
            bench.baseline.report, bench.energy_model()
        ).total
        assert bench.run_casa().energy_nj <= baseline_energy

    def test_casa_no_worse_than_steinke_predicted(self, bench):
        graph = bench.conflict_graph
        model = bench.energy_model()
        from repro.core.casa import CasaAllocator
        from repro.core.steinke import SteinkeAllocator
        casa = CasaAllocator().allocate(graph, 128, model)
        steinke = SteinkeAllocator().allocate(graph, 128, model)
        assert casa.predicted_energy <= graph.predicted_energy(
            set(steinke.spm_resident), model
        ) + 1e-6

    def test_capacity_respected(self, bench):
        result = bench.run_casa()
        used = sum(
            bench.conflict_graph.node(n).size
            for n in result.allocation.spm_resident
        )
        assert used <= 128
