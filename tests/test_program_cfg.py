"""Tests for repro.program.cfg (dominators, natural loops)."""

import pytest

from repro.errors import ConfigurationError
from repro.isa import make_alu, make_branch, make_jump, make_return
from repro.program.basicblock import BasicBlock
from repro.program.behavior import FixedTrip, TakenProbability
from repro.program.cfg import ControlFlowGraph, program_loops
from repro.program.function import Function
from repro.program.program import Program
from repro.workloads import get_workload

from tests.conftest import make_loop_program


def nested_loop_function():
    """outer loop contains an inner loop."""
    blocks = [
        BasicBlock("f.entry", [make_alu()], fallthrough="f.outer"),
        BasicBlock("f.outer", [make_alu()], fallthrough="f.inner"),
        BasicBlock(
            "f.inner",
            [make_alu(), make_branch("f.inner")],
            fallthrough="f.latch",
            behavior=FixedTrip(3),
        ),
        BasicBlock(
            "f.latch",
            [make_branch("f.outer")],
            fallthrough="f.exit",
            behavior=FixedTrip(3),
        ),
        BasicBlock("f.exit", [make_return()]),
    ]
    return Function("f", blocks)


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = ControlFlowGraph(nested_loop_function())
        for node in cfg.reachable_blocks():
            assert cfg.dominates("f.entry", node)

    def test_entry_self_mapping(self):
        cfg = ControlFlowGraph(nested_loop_function())
        assert cfg.immediate_dominators()["f.entry"] == "f.entry"

    def test_non_dominator(self):
        cfg = ControlFlowGraph(nested_loop_function())
        assert not cfg.dominates("f.inner", "f.outer")

    def test_unreachable_block_raises(self):
        blocks = [
            BasicBlock("g.b0", [make_return()]),
            BasicBlock("g.dead", [make_return()]),
        ]
        cfg = ControlFlowGraph(Function("g", blocks))
        with pytest.raises(ConfigurationError):
            cfg.dominates("g.b0", "g.dead")


class TestNaturalLoops:
    def test_nested_loops_found(self):
        cfg = ControlFlowGraph(nested_loop_function())
        loops = cfg.natural_loops()
        headers = {loop.header for loop in loops}
        assert headers == {"f.outer", "f.inner"}

    def test_inner_nested_in_outer(self):
        cfg = ControlFlowGraph(nested_loop_function())
        by_header = {loop.header: loop for loop in cfg.natural_loops()}
        inner, outer = by_header["f.inner"], by_header["f.outer"]
        assert inner.is_nested_in(outer)
        assert not outer.is_nested_in(inner)

    def test_loop_bodies(self):
        cfg = ControlFlowGraph(nested_loop_function())
        by_header = {loop.header: loop for loop in cfg.natural_loops()}
        assert by_header["f.inner"].body == frozenset({"f.inner"})
        assert by_header["f.outer"].body == frozenset(
            {"f.outer", "f.inner", "f.latch"}
        )

    def test_self_loop(self):
        program = make_loop_program(trip=2)
        cfg = ControlFlowGraph(program.function("main"))
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].body == frozenset({"main.loop"})
        assert loops[0].back_edges == frozenset(
            {("main.loop", "main.loop")}
        )

    def test_loop_free_function(self):
        blocks = [
            BasicBlock("h.b0", [make_alu()], fallthrough="h.b1"),
            BasicBlock("h.b1", [make_return()]),
        ]
        cfg = ControlFlowGraph(Function("h", blocks))
        assert cfg.natural_loops() == []

    def test_program_loops_aggregates(self):
        workload = get_workload("adpcm", scale=0.01)
        loops = program_loops(workload.program)
        assert loops, "adpcm has loops"
        functions = {loop.function for loop in loops}
        assert "main" in functions

    def test_loop_contains(self):
        program = make_loop_program(trip=2)
        loop = program_loops(program)[0]
        assert loop.contains("main.loop")
        assert not loop.contains("main.entry")
        assert loop.num_blocks == 1


class TestGraphQueries:
    def test_successors_predecessors(self):
        cfg = ControlFlowGraph(nested_loop_function())
        assert cfg.successors("f.latch") == ["f.exit", "f.outer"]
        assert cfg.predecessors("f.outer") == ["f.entry", "f.latch"]

    def test_reachable_blocks(self):
        cfg = ControlFlowGraph(nested_loop_function())
        assert cfg.reachable_blocks() == {
            "f.entry", "f.outer", "f.inner", "f.latch", "f.exit",
        }
