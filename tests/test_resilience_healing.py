"""Self-healing sweeps: retries, timeouts, crashes, fallbacks."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine.parallel import PointSpec, map_points
from repro.engine.store import ArtifactStore, set_default_store
from repro.errors import ConfigurationError
from repro.obs.events import EventRecorder, set_recorder
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience.faults import (
    FaultPlan,
    set_fault_attempt,
    set_fault_plan,
)
from repro.resilience.healing import (
    RetryPolicy,
    _finish_outcome,
    map_points_healed,
)

POINTS = [
    PointSpec("tiny", 64, "casa", scale=0.2),
    PointSpec("tiny", 64, "steinke", scale=0.2),
    PointSpec("tiny", 128, "casa", scale=0.2),
    PointSpec("tiny", 128, "steinke", scale=0.2),
]


@pytest.fixture(autouse=True)
def clean_fault_state():
    """No injection plan leaks into or out of these tests."""
    set_fault_plan(None)
    set_fault_attempt(0)
    yield
    set_fault_plan(None)
    set_fault_attempt(0)


@pytest.fixture
def registry():
    """A metrics registry installed as the active one."""
    active = MetricsRegistry()
    previous = set_registry(active)
    yield active
    set_registry(previous)


@pytest.fixture
def shared_cache(tmp_path):
    """A disk-backed default store the worker pool can share."""
    previous = set_default_store(
        ArtifactStore(cache_dir=tmp_path / "cache")
    )
    yield
    set_default_store(previous)


def signatures(results):
    """The deterministic observables of a result list."""
    return [(r.energy.total, r.report.cache_misses,
             tuple(sorted(r.allocation.spm_resident)))
            for r in results]


def test_transient_fault_is_retried_to_identical_result(registry):
    points = POINTS[:2]
    clean = map_points(points, jobs=1)
    set_fault_plan(FaultPlan.from_spec("worker.exec:error@nth=1"))
    healed = map_points_healed(
        points, policy=RetryPolicy(backoff_s=0.001))
    assert healed.ok
    assert healed.counts() == {"retried": 1, "ok": 1}
    [retried] = [o for o in healed.outcomes if o.status == "retried"]
    assert retried.attempts == 2
    assert retried.error == {
        "type": "InjectedFault",
        "message": "injected fault at worker.exec",
        "site": "worker.exec",
    }
    assert signatures(healed.results) == signatures(clean)
    assert registry.value("resilience.retries") == 1
    assert registry.value("resilience.failed_points") == 0


def test_persistent_fault_exhausts_attempts_without_aborting(registry):
    points = POINTS[:2]
    # `retries` + limit=2 keeps the fault firing on both attempts of
    # the first point; the second point must still complete.
    set_fault_plan(FaultPlan.from_spec(
        "worker.exec:error@nth=1,limit=2,retries"))
    healed = map_points_healed(
        points, policy=RetryPolicy(max_attempts=2, backoff_s=0.001))
    assert not healed.ok
    assert healed.counts() == {"failed": 1, "ok": 1}
    failed = healed.outcomes[0]
    assert failed.attempts == 2
    assert failed.error is not None
    assert failed.error["type"] == "InjectedFault"
    assert "worker.exec" in failed.describe()
    assert healed.results[0] is None
    assert healed.results[1] is not None
    assert healed.failure_report() != ""
    assert registry.value("resilience.failed_points") == 1


def test_sleep_fault_trips_timeout_then_retry_succeeds(registry):
    set_fault_plan(FaultPlan.from_spec("worker.exec:sleep=2@nth=1"))
    healed = map_points_healed(
        POINTS[:1],
        policy=RetryPolicy(max_attempts=2, backoff_s=0.001,
                           timeout_s=0.2),
    )
    assert healed.ok
    [outcome] = healed.outcomes
    assert outcome.status == "retried"
    assert outcome.error is not None
    assert outcome.error["type"] == "PointTimeoutError"
    assert registry.value("resilience.retries") == 1


def test_spawn_fault_degrades_plain_map_points_to_serial(
        shared_cache, registry):
    clean = map_points(POINTS, jobs=1)
    set_fault_plan(FaultPlan.from_spec("worker.spawn:error@nth=1"))
    fallen_back = map_points(POINTS, jobs=2)
    assert signatures(fallen_back) == signatures(clean)
    assert registry.value("faults.injected.worker.spawn") == 1


def test_spawn_fault_degrades_healed_pool_to_serial(
        shared_cache, registry):
    clean = map_points(POINTS, jobs=1)
    set_fault_plan(FaultPlan.from_spec("worker.spawn:error@nth=1"))
    healed = map_points_healed(POINTS, jobs=2,
                               policy=RetryPolicy(backoff_s=0.001))
    assert healed.ok
    assert signatures(healed.results) == signatures(clean)
    assert registry.value("faults.injected.worker.spawn") == 1


def test_worker_crash_mid_batch_heals_and_forwards_observability(
        shared_cache, registry):
    clean = map_points(POINTS, jobs=1)
    set_default_store(ArtifactStore())  # drop the warmed memory tier
    recorder = EventRecorder()
    previous_recorder = set_recorder(recorder)
    try:
        set_fault_plan(FaultPlan.from_spec("worker.exec:crash@nth=2"))
        healed = map_points_healed(
            POINTS, jobs=2, policy=RetryPolicy(backoff_s=0.001))
    finally:
        set_recorder(previous_recorder)
    assert healed.ok
    assert signatures(healed.results) == signatures(clean)
    assert registry.value("resilience.pool_restarts") >= 1
    assert registry.value("resilience.retries") >= 1
    # Worker-side observability still merges back after the restart.
    assert registry.value("sim.runs") >= 1
    assert recorder.total_events > 0


def test_outcomes_carry_wall_time_and_attempt_durations(registry):
    set_fault_plan(FaultPlan.from_spec("worker.exec:error@nth=1"))
    healed = map_points_healed(
        POINTS[:2], policy=RetryPolicy(backoff_s=0.001))
    assert healed.ok
    for outcome in healed.outcomes:
        assert outcome.wall_s > 0
        assert len(outcome.attempt_seconds) == outcome.attempts
        assert outcome.wall_s == pytest.approx(
            sum(outcome.attempt_seconds))
    [retried] = [o for o in healed.outcomes if o.status == "retried"]
    assert retried.retry_s == pytest.approx(
        sum(retried.attempt_seconds[1:]))
    assert retried.retry_s < retried.wall_s
    # Run-level aggregates mirror the per-outcome fields.
    assert healed.wall_s == pytest.approx(
        sum(o.wall_s for o in healed.outcomes))
    assert healed.retry_wall_s == pytest.approx(retried.retry_s)
    # Retry wall time also lands in the metrics histogram.
    histogram = registry.histogram("resilience.retry.seconds")
    assert histogram.count == 1
    assert histogram.total == pytest.approx(retried.retry_s, rel=1e-3)


def test_failed_outcome_still_records_attempt_durations(registry):
    set_fault_plan(FaultPlan.from_spec(
        "worker.exec:error@nth=1,limit=2,retries"))
    healed = map_points_healed(
        POINTS[:1], policy=RetryPolicy(max_attempts=2, backoff_s=0.001))
    assert not healed.ok
    [failed] = healed.outcomes
    assert failed.status == "failed"
    assert len(failed.attempt_seconds) == 2
    assert failed.wall_s > 0


def test_outcomes_carry_active_run_id(tmp_path):
    from repro.obs.logging import RunLog, set_run_log

    log = RunLog(str(tmp_path / "run.log"), run_id="feedbeefcafe")
    previous = set_run_log(log)
    try:
        healed = map_points_healed(POINTS[:1],
                                   policy=RetryPolicy(backoff_s=0.001))
    finally:
        set_run_log(previous)
        log.close()
    assert healed.outcomes[0].run_id == "feedbeefcafe"


def test_unknown_algorithm_rejected_up_front():
    with pytest.raises(ConfigurationError):
        map_points_healed([PointSpec("tiny", 64, "annealing")])


def test_finish_outcome_classifies_degraded_results(registry):
    point = POINTS[0]
    degraded = SimpleNamespace(
        allocation=SimpleNamespace(solver_status="degraded"))
    optimal = SimpleNamespace(
        allocation=SimpleNamespace(solver_status="optimal"))
    assert _finish_outcome(0, point, 1, degraded, None).status \
        == "degraded"
    assert _finish_outcome(0, point, 2, optimal, None).status \
        == "retried"
    assert _finish_outcome(0, point, 1, optimal, None).status == "ok"
    assert registry.value("resilience.degraded_points") == 1
