"""The chaos differential gate: faults in, bit-identical results out."""

from __future__ import annotations

import pytest

from repro.resilience.chaos import ChaosResult, run_chaos
from repro.resilience.faults import (
    FaultPlan,
    active_fault_plan,
    set_fault_plan,
)
from repro.resilience.healing import RetryPolicy


@pytest.fixture(autouse=True)
def clean_fault_state():
    """No injection plan leaks into or out of these tests."""
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def test_chaos_heals_store_solver_and_kernel_faults():
    result = run_chaos(
        workload="tiny",
        sizes=(64,),
        algorithms=("casa", "steinke"),
        spec="store.read:error@nth=1;store.write:error@nth=1;"
             "ilp.solve:error@nth=1;kernel.replay:error@nth=1",
        scale=0.2,
        policy=RetryPolicy(backoff_s=0.001),
    )
    assert result.ok, result.render()
    assert result.divergences == []
    # casa@64 + steinke@64 + the policy-varied (2-way LFU) rider.
    assert result.points == 3
    assert result.injected >= 4
    assert set(result.site_counts) >= {"store.read", "ilp.solve"}
    assert result.retries >= 1
    assert result.quarantined >= 1
    assert result.failed == 0
    rendered = result.render()
    assert "OK (bit-identical under faults)" in rendered
    assert "faults injected" in rendered


def test_chaos_without_faults_is_trivially_identical():
    result = run_chaos(workload="tiny", sizes=(64,),
                       algorithms=("casa",), scale=0.2)
    assert result.ok
    assert result.injected == 0
    assert result.retries == 0
    # The casa chunk plus the policy-varied (2-way LFU) rider.
    assert result.outcome_counts == {"ok": 2}


def test_chaos_restores_ambient_plan_and_reports_divergence_shape():
    ambient = FaultPlan.from_spec("ilp.solve:error@nth=99")
    set_fault_plan(ambient)
    result = run_chaos(workload="tiny", sizes=(64,),
                       algorithms=("casa",), scale=0.2,
                       spec="worker.exec:error@nth=1",
                       policy=RetryPolicy(backoff_s=0.001))
    assert active_fault_plan() is ambient
    assert result.ok
    assert result.outcome_counts.get("retried", 0) == 1


def test_chaos_result_render_lists_divergences():
    result = ChaosResult(workload="tiny", points=1, ok=False,
                         divergences=["tiny/casa@64: clean != faulty"])
    rendered = result.render()
    assert "DIVERGED" in rendered
    assert "DIVERGENCE: tiny/casa@64" in rendered
