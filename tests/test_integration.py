"""End-to-end integration tests over the full pipeline.

These check the *paper-level* invariants on real (scaled) workloads:
accounting identities, hierarchy-independence of fetch counts, and the
qualitative relations between the allocators.
"""

import pytest

from repro import CasaAllocator, CasaConfig
from repro.energy.model import compute_energy


class TestAccountingIdentities:
    def test_eq4_identity_every_simulation(self, adpcm_workbench):
        bench = adpcm_workbench
        for result in (bench.baseline_result(), bench.run_casa(64),
                       bench.run_steinke(64), bench.run_ross(128)):
            assert result.report.check_identities()

    def test_conflict_plus_compulsory_le_misses(self, adpcm_workbench):
        report = adpcm_workbench.baseline_report
        assert (report.conflict_miss_total + report.compulsory_misses
                <= report.cache_misses)

    def test_fetches_invariant_across_hierarchies(self, adpcm_workbench):
        bench = adpcm_workbench
        base = bench.baseline_report.total_fetches
        assert bench.run_casa(64).report.total_fetches == base
        assert bench.run_ross(128).report.total_fetches == base


class TestAllocatorRelations:
    def test_casa_optimal_under_its_model(self, adpcm_workbench):
        """CASA's predicted energy is minimal among the other
        allocators' selections, evaluated under the same model."""
        bench = adpcm_workbench
        graph = bench.conflict_graph
        model = bench.spm_energy_model(128)
        casa = CasaAllocator().allocate(graph, 128, model)
        for other in (bench.run_steinke(128), bench.run_greedy(128)):
            other_predicted = graph.predicted_energy(
                set(other.allocation.spm_resident), model
            )
            assert casa.predicted_energy <= other_predicted + 1e-6

    def test_casa_beats_baseline(self, adpcm_workbench):
        bench = adpcm_workbench
        baseline = bench.baseline_result().total_energy
        for size in (64, 128, 256):
            assert bench.run_casa(size).total_energy < baseline

    def test_casa_monotone_with_spm_size(self, adpcm_workbench):
        """Bigger scratchpad never hurts CASA (copy semantics keep the
        layout, so the chosen set can only improve)."""
        bench = adpcm_workbench
        energies = [bench.run_casa(size).total_energy
                    for size in (64, 128, 256)]
        # allow tiny non-monotonicity from prediction/simulation gap
        assert energies[1] <= energies[0] * 1.05
        assert energies[2] <= energies[1] * 1.05

    def test_spm_all_resident_is_floor(self, tiny_workbench):
        """With everything on the scratchpad, energy is the floor."""
        bench = tiny_workbench
        mos = bench.memory_objects
        total = sum(mo.unpadded_size for mo in mos)
        result = bench.run_casa(total + 64)
        assert result.report.cache_accesses == 0
        smaller = bench.run_casa(64)
        assert result.total_energy < smaller.total_energy


class TestEnergyConsistency:
    def test_energy_recompute_matches(self, adpcm_workbench):
        result = adpcm_workbench.run_casa(128)
        again = compute_energy(result.report, result.model)
        assert again.total == pytest.approx(result.energy.total)

    def test_breakdown_components_nonnegative(self, adpcm_workbench):
        result = adpcm_workbench.run_ross(256)
        breakdown = result.energy
        assert breakdown.spm == 0.0
        assert breakdown.loop_cache >= 0.0
        assert breakdown.lc_controller > 0.0

    def test_miss_energy_dominates_baseline(self, adpcm_workbench):
        """The premise of the whole paper: misses are where the energy
        goes in a thrashing configuration."""
        result = adpcm_workbench.baseline_result()
        assert result.energy.cache_misses > result.energy.cache_hits


class TestMpegEndToEnd:
    def test_figure4_shape(self, mpeg_workbench):
        bench = mpeg_workbench
        casa = bench.run_casa(512)
        steinke = bench.run_steinke(512)
        # CASA: fewer SPM accesses, more cache accesses (figure 4)
        assert casa.report.spm_accesses <= steinke.report.spm_accesses
        assert casa.report.cache_accesses >= \
            steinke.report.cache_accesses

    def test_loop_cache_saturates(self, mpeg_workbench):
        """Ross can preload at most 4 regions; CASA keeps filling the
        scratchpad, so at 1 kB the scratchpad covers at least as many
        fetch-serving bytes."""
        bench = mpeg_workbench
        casa = bench.run_casa(1024)
        ross = bench.run_ross(1024)
        assert len(ross.allocation.loop_regions) <= 4
        assert len(casa.allocation.spm_resident) > 4

    def test_casa_beats_loop_cache_at_1k(self, mpeg_workbench):
        bench = mpeg_workbench
        assert bench.run_casa(1024).total_energy < \
            bench.run_ross(1024).total_energy
