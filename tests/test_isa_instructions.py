"""Tests for repro.isa.instructions."""

import pytest

from repro.isa import (
    INSTRUCTION_SIZE,
    Instruction,
    Opcode,
    make_alu,
    make_branch,
    make_call,
    make_jump,
    make_load,
    make_nop,
    make_return,
    make_store,
)


class TestOpcode:
    def test_control_flow_classification(self):
        assert Opcode.BRANCH.is_control_flow
        assert Opcode.JUMP.is_control_flow
        assert Opcode.CALL.is_control_flow
        assert Opcode.RETURN.is_control_flow
        assert not Opcode.ALU.is_control_flow
        assert not Opcode.NOP.is_control_flow

    def test_terminator_classification(self):
        assert Opcode.BRANCH.is_terminator
        assert Opcode.JUMP.is_terminator
        assert Opcode.RETURN.is_terminator
        # Calls do not end a block's fall-through path.
        assert not Opcode.CALL.is_terminator
        assert not Opcode.ALU.is_terminator


class TestInstruction:
    def test_fixed_size(self):
        for maker in (make_alu, make_load, make_store, make_nop,
                      make_return):
            assert maker().size == INSTRUCTION_SIZE

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRANCH)

    def test_jump_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.JUMP)

    def test_call_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CALL)

    def test_alu_rejects_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ALU, target="x")

    def test_nop_flag(self):
        assert make_nop().is_nop
        assert not make_alu().is_nop

    def test_factories_set_targets(self):
        assert make_branch("bb1").target == "bb1"
        assert make_jump("bb2").target == "bb2"
        assert make_call("fn").target == "fn"
        assert make_alu().target is None

    def test_str_with_target(self):
        assert str(make_jump("exit")) == "jump exit"

    def test_str_with_mnemonic(self):
        assert str(make_alu("add r0, r1")) == "add r0, r1"

    def test_mnemonic_not_in_equality(self):
        assert make_alu("x") == make_alu("y")

    def test_instructions_hashable(self):
        assert len({make_alu(), make_load(), make_alu()}) == 2
