"""Round-trips of the consolidated serde module and its legacy shim."""

from __future__ import annotations

import warnings

import pytest

from repro.api import Session
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.io.serde import (
    allocation_from_dict,
    allocation_to_dict,
    energy_breakdown_from_dict,
    energy_breakdown_to_dict,
    energy_model_from_dict,
    energy_model_to_dict,
    experiment_result_from_dict,
    experiment_result_to_dict,
    report_from_dict,
    report_to_dict,
)


@pytest.fixture(scope="module")
def tiny_result():
    """One evaluated design point of the tiny workload."""
    return Session("tiny", scale=0.2, seed=0).evaluate(spm_size=64)


def test_report_roundtrip(tiny_result):
    first = report_to_dict(tiny_result.report)
    rebuilt = report_from_dict(first)
    second = report_to_dict(rebuilt)
    assert second["totals"] == first["totals"]
    assert second["objects"] == first["objects"]
    assert second["conflicts"] == first["conflicts"]


def test_report_rederives_aggregates(tiny_result):
    report = tiny_result.report
    rebuilt = report_from_dict(report_to_dict(report))
    assert rebuilt.total_fetches == report.total_fetches
    assert rebuilt.cache_misses == report.cache_misses
    assert rebuilt.conflict_miss_total == report.conflict_miss_total


def test_report_tolerates_old_payload(tiny_result):
    data = report_to_dict(tiny_result.report)
    for key in ("num_block_executions", "l2_hits", "l2_misses"):
        del data["totals"][key]
    rebuilt = report_from_dict(data)
    assert rebuilt.l2_hits == 0
    assert rebuilt.num_block_executions == 0


def test_energy_model_roundtrip():
    model = EnergyModel()
    assert energy_model_from_dict(energy_model_to_dict(model)) == model


def test_energy_breakdown_roundtrip(tiny_result):
    energy = tiny_result.energy
    rebuilt = energy_breakdown_from_dict(
        energy_breakdown_to_dict(energy))
    assert rebuilt == energy
    assert rebuilt.total == pytest.approx(energy.total)


def test_allocation_roundtrip(tiny_result):
    allocation = tiny_result.allocation
    rebuilt = allocation_from_dict(allocation_to_dict(allocation))
    assert rebuilt.algorithm == allocation.algorithm
    assert rebuilt.spm_resident == allocation.spm_resident
    assert rebuilt.capacity == allocation.capacity


def test_experiment_result_roundtrip(tiny_result):
    data = experiment_result_to_dict(tiny_result)
    rebuilt = experiment_result_from_dict(data)
    assert rebuilt.energy.total == pytest.approx(
        tiny_result.energy.total)
    assert rebuilt.allocation.spm_resident == \
        tiny_result.allocation.spm_resident
    assert experiment_result_to_dict(rebuilt) == data


def test_kind_mismatch_is_rejected(tiny_result):
    data = report_to_dict(tiny_result.report)
    data["kind"] = "allocation"
    with pytest.raises(ConfigurationError):
        report_from_dict(data)


def test_json_io_shim_warns_and_forwards():
    import repro.io.json_io as json_io

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        forwarded = json_io.report_to_dict
    assert any(issubclass(w.category, DeprecationWarning)
               for w in caught)
    assert forwarded is report_to_dict


def test_json_io_shim_rejects_unknown_names():
    import repro.io.json_io as json_io

    with pytest.raises(AttributeError):
        json_io.no_such_helper
