"""Tests for repro.workloads.mediabench and the registry."""

import pytest

from repro.errors import WorkloadError
from repro.program.executor import execute_program
from repro.workloads.mediabench import build_adpcm, build_g721, build_mpeg
from repro.workloads.registry import available_workloads, get_workload


class TestCodeSizes:
    """Code sizes should approximate the paper's (1 / 4.7 / 19.5 kB)."""

    def test_adpcm_size(self):
        size = build_adpcm().size
        assert 0.8 * 1024 <= size <= 1.25 * 1024

    def test_g721_size(self):
        size = build_g721().size
        assert 0.85 * 4813 <= size <= 1.15 * 4813

    def test_mpeg_size(self):
        size = build_mpeg().size
        assert 0.85 * 19968 <= size <= 1.15 * 19968


class TestExecution:
    @pytest.mark.parametrize("builder", [build_adpcm, build_g721])
    def test_runs_to_completion(self, builder):
        program = builder(scale=0.05)
        result = execute_program(program)
        assert result.instruction_count > 0

    def test_scale_reduces_work(self):
        small = execute_program(build_adpcm(scale=0.1))
        large = execute_program(build_adpcm(scale=0.5))
        assert small.instruction_count < large.instruction_count

    def test_deterministic_for_seed(self):
        program = build_g721(scale=0.05)
        a = execute_program(program, seed=3)
        b = execute_program(program, seed=3)
        assert a.block_sequence == b.block_sequence

    def test_mpeg_hot_kernels_executed(self):
        program = build_mpeg(scale=0.05)
        profile = execute_program(program).profile
        hot = {"dct_1d.b0", "idct_1d.b0", "quantize_block.b0",
               "sad_16x16.b0"}
        for name in hot:
            assert profile.block_count(name) > 0, name

    def test_mpeg_cold_functions_not_executed(self):
        program = build_mpeg(scale=0.05)
        profile = execute_program(program).profile
        assert profile.block_count("init_vlc_tables.b0") == 0
        assert profile.block_count("option_parsing.b0") == 0


class TestRegistry:
    def test_available(self):
        assert set(available_workloads()) == {
            "adpcm", "g721", "mpeg", "jpeg", "epic", "tiny",
        }

    def test_unknown_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("nonesuch")

    def test_paper_cache_sizes(self):
        assert get_workload("adpcm", 0.01).cache.size == 128
        assert get_workload("g721", 0.01).cache.size == 1024
        assert get_workload("mpeg", 0.01).cache.size == 2048

    def test_spm_size_lists(self):
        assert get_workload("adpcm", 0.01).spm_sizes == (64, 128, 256)
        assert get_workload("mpeg", 0.01).spm_sizes == (
            128, 256, 512, 1024,
        )

    def test_tiny_is_small_and_fast(self):
        workload = get_workload("tiny")
        assert workload.program.size < 512
        execute_program(workload.program)


class TestEpic:
    def test_size(self):
        from repro.workloads.mediabench import build_epic
        size = build_epic().size
        assert 6000 <= size <= 10000

    def test_runs(self):
        from repro.workloads.mediabench import build_epic
        result = execute_program(build_epic(scale=0.05))
        assert result.instruction_count > 0

    def test_low_conflict_profile(self):
        """epic's pyramid reuses two kernels that fit the cache: the
        conflict pressure is low by design (the negative-control
        workload for conflict-aware allocation)."""
        from repro.evaluation.sweep import make_workbench
        _, bench = make_workbench("epic", 0.2)
        report = bench.baseline_report
        assert report.conflict_miss_total < report.total_fetches * 0.02
