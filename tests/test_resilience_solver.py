"""Solver budget exhaustion: TIME_LIMIT status and the greedy ladder."""

from __future__ import annotations

import pytest

from repro.core.casa import CasaAllocator, CasaConfig
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.energy.model import EnergyModel
from repro.errors import DegradedResultError
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.model import Model, Sense, SolveStatus
from repro.obs.metrics import MetricsRegistry, set_registry

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


@pytest.fixture
def registry():
    """A metrics registry installed as the active one."""
    active = MetricsRegistry()
    previous = set_registry(active)
    yield active
    set_registry(previous)


def make_tight_graph() -> ConflictGraph:
    """A capacity-tight instance whose LP relaxation is fractional.

    Equal-benefit objects that do not pack evenly into the scratchpad
    leave the root relaxation fractional, so branch & bound cannot
    prove optimality at the root and a zero/negative budget genuinely
    cuts the search short.
    """
    graph = ConflictGraph()
    for name, fetches in (("A", 900), ("B", 880), ("C", 860),
                          ("D", 840)):
        graph.add_node(ConflictNode(name, fetches=fetches, size=64))
    graph.add_edge("A", "B", 120)
    graph.add_edge("B", "C", 110)
    graph.add_edge("C", "D", 100)
    graph.add_edge("D", "A", 90)
    return graph


def test_solver_reports_time_limit_status():
    model = Model("m", Sense.MAXIMIZE)
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constraint(2 * x + 2 * y <= 3)
    model.set_objective(x + y)
    result = BranchAndBoundSolver(max_seconds=-1.0).solve(model)
    assert result.status is SolveStatus.TIME_LIMIT


def test_time_budget_degrades_to_greedy(registry):
    graph = make_tight_graph()
    config = CasaConfig(max_seconds=-1.0)
    allocation = CasaAllocator(config).allocate(graph, 96, MODEL)
    assert allocation.solver_status == "degraded"
    assert allocation.algorithm == "casa"
    greedy = GreedyCasaAllocator().allocate(graph, 96, MODEL)
    assert allocation.spm_resident == greedy.spm_resident
    assert allocation.predicted_energy == greedy.predicted_energy
    assert registry.value("solver.degraded") == 1


def test_node_budget_degrades_to_greedy():
    graph = make_tight_graph()
    config = CasaConfig(max_nodes=0)
    allocation = CasaAllocator(config).allocate(graph, 96, MODEL)
    assert allocation.solver_status == "degraded"
    assert allocation.capacity == 96
    assert sum(graph.node(name).size
               for name in allocation.spm_resident) <= 96


def test_raise_fallback_raises_typed_error():
    graph = make_tight_graph()
    config = CasaConfig(max_seconds=-1.0, fallback="raise")
    with pytest.raises(DegradedResultError) as excinfo:
        CasaAllocator(config).allocate(graph, 96, MODEL)
    assert excinfo.value.site == "ilp.solve"


def test_unlimited_budget_stays_optimal():
    graph = make_tight_graph()
    allocation = CasaAllocator().allocate(graph, 96, MODEL)
    assert allocation.solver_status == "optimal"
