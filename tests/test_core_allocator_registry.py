"""Tests for the Allocator protocol and make_allocator registry."""

import pytest

from repro.core import (
    ALLOCATOR_NAMES,
    Allocator,
    CasaAllocator,
    GreedyCasaAllocator,
    MultiScratchpadAllocator,
    RossLoopCacheAllocator,
    ScratchpadSpec,
    SteinkeAllocator,
    make_allocator,
)
from repro.core.allocation import AllocationContext
from repro.core.annealing import AnnealingAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def toy_graph():
    graph = ConflictGraph()
    graph.add_node(ConflictNode("A", fetches=1000, size=32))
    graph.add_node(ConflictNode("B", fetches=500, size=32))
    graph.add_edge("A", "B", 100)
    graph.add_edge("B", "A", 80)
    return graph


class TestRegistry:
    def test_every_name_builds(self):
        for name in ALLOCATOR_NAMES:
            if name in ("multi-spm", "casa-multi-spm"):
                continue  # requires scratchpad specs
            allocator = make_allocator(name)
            assert isinstance(allocator, Allocator)

    def test_expected_types(self):
        assert isinstance(make_allocator("casa"), CasaAllocator)
        assert isinstance(make_allocator("steinke"), SteinkeAllocator)
        assert isinstance(make_allocator("greedy"),
                          GreedyCasaAllocator)
        assert isinstance(make_allocator("anneal"), AnnealingAllocator)
        assert isinstance(make_allocator("ross"),
                          RossLoopCacheAllocator)

    def test_name_canonicalisation(self):
        assert isinstance(make_allocator("CASA"), CasaAllocator)
        assert isinstance(make_allocator(" greedy_casa "),
                          GreedyCasaAllocator)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            make_allocator("magic")

    def test_bad_options_raise(self):
        with pytest.raises(ConfigurationError, match="bad options"):
            make_allocator("casa", warp_factor=9)

    def test_options_forwarded(self):
        allocator = make_allocator("casa", conflict_term=False)
        assert allocator.config.conflict_term is False
        multi = make_allocator(
            "multi-spm",
            scratchpads=[ScratchpadSpec("fast", 64)],
        )
        assert isinstance(multi, MultiScratchpadAllocator)


class TestProtocol:
    def test_protocol_is_runtime_checkable(self):
        assert isinstance(CasaAllocator(), Allocator)
        assert not isinstance(object(), Allocator)

    def test_unified_signature_spm(self):
        graph = toy_graph()
        for name in ("casa", "steinke", "greedy", "anneal"):
            allocation = make_allocator(name).allocate(
                graph, 32, MODEL, context=None
            )
            assert allocation.capacity == 32

    def test_ross_requires_context(self):
        with pytest.raises(ConfigurationError,
                           match="AllocationContext"):
            make_allocator("ross").allocate(toy_graph(), 64)

    def test_multi_spm_requires_energy(self):
        from repro.errors import SolverError

        allocator = make_allocator(
            "multi-spm", scratchpads=[ScratchpadSpec("fast", 64)],
        )
        with pytest.raises(SolverError, match="energy"):
            allocator.allocate(toy_graph())

    def test_capacity_overrides_ross_config(self, tiny_workbench):
        bench = tiny_workbench
        from repro.traces.layout import LinkedImage, Placement

        image = LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=frozenset(), spm_size=0,
            placement=Placement.COPY,
            main_base=bench.config.main_base,
            spm_base=bench.config.spm_base,
        )
        context = AllocationContext(
            program=bench.program,
            memory_objects=bench.memory_objects,
            image=image,
        )
        allocator = make_allocator("ross", size=256)
        allocation = allocator.allocate(
            bench.conflict_graph, 64, context=context
        )
        assert allocation.capacity == 64
