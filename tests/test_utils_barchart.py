"""Tests for the ASCII bar chart renderer."""

import pytest

from repro.utils.barchart import BAR_CHAR, REFERENCE_CHAR, horizontal_bars


class TestHorizontalBars:
    def test_structure(self):
        chart = horizontal_bars(
            ["64B", "128B"],
            {"Energy": [50.0, 120.0], "Misses": [80.0, 40.0]},
        )
        assert "64B:" in chart
        assert "128B:" in chart
        assert chart.count("Energy") == 2
        assert REFERENCE_CHAR in chart

    def test_bar_lengths_proportional(self):
        chart = horizontal_bars(["g"], {"a": [50.0], "b": [100.0]},
                                width=40)
        lines = [line for line in chart.splitlines()
                 if BAR_CHAR in line]
        length_a = lines[0].count(BAR_CHAR)
        length_b = lines[1].count(BAR_CHAR)
        assert abs(length_b - 2 * length_a) <= 2

    def test_values_printed(self):
        chart = horizontal_bars(["g"], {"m": [73.4]})
        assert "73.4%" in chart

    def test_reference_marker_beyond_bars(self):
        chart = horizontal_bars(["g"], {"m": [10.0]}, reference=100.0)
        bar_line = next(line for line in chart.splitlines()
                        if BAR_CHAR in line)
        assert bar_line.index(REFERENCE_CHAR) > \
            bar_line.rindex(BAR_CHAR)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a", "b"], {"m": [1.0]})

    def test_empty_chart(self):
        assert horizontal_bars([], {}) == "(empty chart)"

    def test_fig4_chart_rendering(self):
        from repro.evaluation.fig4 import run_fig4
        result = run_fig4("tiny", sizes=(64,), scale=0.2)
        chart = result.render_chart()
        assert "Energy" in chart
        assert BAR_CHAR in chart
