"""Wire-schema round-trips and the Session request/response adapters."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.serve.schema import (
    SCHEMA_VERSION,
    AllocateRequest,
    AllocateResponse,
    ConflictGraphRequest,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    SimulateRequest,
    SimulateResponse,
    SweepRequest,
    SweepResponse,
    request_from_json,
    response_from_json,
)
from repro.traces.tracegen import TraceGenConfig

REQUESTS = [
    SimulateRequest("tiny", scale=0.5, seed=3),
    ConflictGraphRequest("adpcm", tenant="team-a"),
    AllocateRequest("tiny", algorithm="steinke", spm_size=128),
    EvaluateRequest("tiny", algorithm="casa", spm_size=64,
                    max_regions=2),
    SweepRequest("tiny", algorithm="greedy", spm_sizes=(64, 128)),
    SimulateRequest(
        "tiny",
        cache=CacheConfig(size=256, line_size=16, associativity=2),
        tracegen=TraceGenConfig(line_size=16, max_trace_size=32),
        backend="vector",
    ),
]


@pytest.mark.parametrize("request_obj", REQUESTS,
                         ids=lambda r: type(r).__name__)
def test_request_roundtrip(request_obj):
    payload = request_obj.to_json()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["kind"] == request_obj.kind
    assert request_from_json(payload) == request_obj


def test_request_version_rejection():
    payload = SimulateRequest("tiny").to_json()
    payload["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ConfigurationError):
        request_from_json(payload)
    del payload["schema_version"]
    with pytest.raises(ConfigurationError):
        request_from_json(payload)


def test_request_unknown_kind():
    with pytest.raises(ConfigurationError):
        request_from_json({"kind": "teleport", "schema_version": 1,
                           "workload": "tiny"})


def test_request_requires_workload():
    payload = SimulateRequest("tiny").to_json()
    payload["workload"] = ""
    with pytest.raises(ConfigurationError):
        request_from_json(payload)


def test_request_unknown_algorithm():
    payload = EvaluateRequest("tiny").to_json()
    payload["algorithm"] = "oracle"
    with pytest.raises(ConfigurationError):
        request_from_json(payload)


RESPONSES = [
    SimulateResponse(report={"kind": "simulation_report"},
                     run_id="abc123"),
    AllocateResponse(allocation={"kind": "allocation"},
                     status="retried", attempts=2),
    EvaluateResponse(result={"kind": "experiment_result"},
                     status="degraded"),
    SweepResponse(spm_sizes=(64, 128),
                  results=({"kind": "experiment_result"},) * 2),
    ErrorResponse(error={"type": "SolverError", "message": "boom",
                         "site": "allocation"}),
]


@pytest.mark.parametrize("response_obj", RESPONSES,
                         ids=lambda r: type(r).__name__)
def test_response_roundtrip(response_obj):
    payload = response_obj.to_json()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert response_from_json(payload) == response_obj


def test_response_rejects_unknown_status():
    payload = SimulateResponse(report={}).to_json()
    payload["status"] = "confused"
    with pytest.raises(ConfigurationError):
        response_from_json(payload)


class TestSessionAdapters:
    """Session.as_request / Session.from_response mirror the verbs."""

    def test_simulate_request(self):
        session = Session("tiny", scale=0.2, seed=1)
        request = session.as_request("simulate")
        assert request == SimulateRequest("tiny", scale=0.2, seed=1)

    def test_evaluate_request_carries_options(self):
        session = Session("tiny", scale=0.2)
        request = session.as_request(
            "evaluate", method="steinke", spm_size=128,
            tenant="team-b")
        assert request.algorithm == "steinke"
        assert request.spm_size == 128
        assert request.tenant == "team-b"

    def test_sweep_request_takes_axis(self):
        request = Session("tiny").as_request(
            "sweep", spm_sizes=(64, 128))
        assert request.spm_sizes == (64, 128)

    def test_unknown_verb_rejected(self):
        with pytest.raises(ConfigurationError):
            Session("tiny").as_request("teleport")

    def test_raw_program_sessions_cannot_travel(self, loop_program):
        session = Session(loop_program)
        with pytest.raises(ConfigurationError):
            session.as_request("simulate")

    def test_from_response_rejects_failures(self):
        response = ErrorResponse(
            error={"type": "SolverError", "message": "boom",
                   "site": "allocation"})
        with pytest.raises(ConfigurationError):
            Session.from_response(response)
