"""Metrics: counters, gauges, histograms, the registry and merging."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
    set_registry,
)


@pytest.fixture
def registry():
    """A registry installed as the active one, restored afterwards."""
    active = MetricsRegistry()
    previous = set_registry(active)
    yield active
    set_registry(previous)


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.snapshot()["type"] == "gauge"

    def test_histogram(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0
        assert histogram.mean == 5.0

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] == 0.0 and snapshot["max"] == 0.0
        assert Histogram().mean == 0.0


class TestPercentiles:
    """Log-bucket percentile sketches: accuracy, merging, edge cases."""

    def test_empty_percentile_is_zero(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(0.99) == 0.0

    def test_single_value_all_quantiles(self):
        histogram = Histogram()
        histogram.observe(3.7)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(q) == pytest.approx(3.7)

    def test_zeros_and_negatives_land_in_zero_bucket(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(-2.0)
        histogram.observe(10.0)
        # Two of three observations are <= 0, so the median is the
        # non-positive bucket's representative (the recorded minimum).
        assert histogram.percentile(0.5) == -2.0
        assert histogram.percentile(1.0) == pytest.approx(10.0, rel=0.1)

    def test_percentile_accuracy_within_bucket_resolution(self):
        rng = random.Random(20260808)
        histogram = Histogram()
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(5000)]
        for value in values:
            histogram.observe(value)
        values.sort()
        for q in (0.5, 0.9, 0.99):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            approx = histogram.percentile(q)
            # Buckets are log-spaced at base 2**(1/8) (~9% wide); the
            # geometric-midpoint estimate stays within one bucket.
            assert abs(approx - exact) / exact < 0.10

    def test_percentiles_clamped_to_observed_range(self):
        histogram = Histogram()
        histogram.observe(5.0)
        histogram.observe(5.1)
        assert histogram.percentile(0.0) >= 5.0
        assert histogram.percentile(1.0) <= 5.1

    def test_merge_of_shards_is_exact(self):
        """Merging shard snapshots must equal a single-pass histogram."""
        rng = random.Random(7)
        values = [rng.expovariate(1.0) for _ in range(2000)] + [0.0, 0.0]
        whole = Histogram()
        shards = [Histogram() for _ in range(4)]
        for index, value in enumerate(values):
            whole.observe(value)
            shards[index % 4].observe(value)
        merged = Histogram()
        for shard in shards:
            merged.merge(shard.snapshot())
        ours, theirs = merged.snapshot(), whole.snapshot()
        # total is a float sum, so summation order costs one ulp;
        # everything feeding the percentile sketch must match exactly.
        assert ours.pop("total") == pytest.approx(theirs.pop("total"))
        assert ours == theirs
        for q in (0.5, 0.9, 0.99):
            assert merged.percentile(q) == whole.percentile(q)

    def test_merge_order_does_not_matter(self):
        a, b = Histogram(), Histogram()
        for value in (0.1, 1.0, 10.0):
            a.observe(value)
        for value in (0.5, 5.0):
            b.observe(value)
        ab = Histogram()
        ab.merge(a.snapshot())
        ab.merge(b.snapshot())
        ba = Histogram()
        ba.merge(b.snapshot())
        ba.merge(a.snapshot())
        assert ab.snapshot() == ba.snapshot()

    def test_merge_tolerates_legacy_snapshot_without_buckets(self):
        """Old payloads lack zeros/buckets; merge must not crash."""
        target = Histogram()
        target.observe(2.0)
        legacy = {
            "type": "histogram",
            "count": 3,
            "total": 9.0,
            "min": 1.0,
            "max": 5.0,
        }
        target.merge(legacy)
        assert target.count == 4
        assert target.total == 11.0
        # Percentiles still answer (from the buckets that do exist).
        assert target.percentile(0.99) >= 1.0

    def test_summary_keys(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert set(summary) == {
            "count",
            "total",
            "mean",
            "min",
            "max",
            "p50",
            "p90",
            "p99",
        }
        assert summary["count"] == 3
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_snapshot_contains_buckets(self):
        histogram = Histogram()
        histogram.observe(4.0)
        snapshot = histogram.snapshot()
        assert snapshot["zeros"] == 0
        assert len(snapshot["buckets"]) == 1

    def test_registry_counters_view(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.0)
        assert registry.counters() == {"c": 2.0}

    def test_render_shows_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.5)
        assert "p50" in registry.render()


class TestRegistry:
    def test_create_on_first_use_and_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("ilp.solves")
        counter.inc()
        assert registry.counter("ilp.solves") is counter
        assert registry.value("ilp.solves") == 1.0

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_value_default_for_missing_metric(self):
        assert MetricsRegistry().value("nope", default=7.0) == 7.0

    def test_value_of_histogram_is_total(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(3.0)
        assert registry.value("h") == 5.0

    def test_names_and_snapshot_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert registry.names() == ["alpha", "zeta"]
        assert list(registry.snapshot()) == ["alpha", "zeta"]

    def test_merge_semantics(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        source.gauge("g").set(9.0)
        source.histogram("h").observe(4.0)
        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.gauge("g").set(1.0)
        target.histogram("h").observe(10.0)
        target.merge(source.snapshot())
        assert target.value("c") == 3.0
        assert target.value("g") == 9.0  # last write wins
        histogram = target.histogram("h")
        assert histogram.count == 2
        assert histogram.total == 14.0
        assert histogram.minimum == 4.0
        assert histogram.maximum == 10.0

    def test_merge_empty_histogram_is_noop(self):
        target = MetricsRegistry()
        target.merge({"h": Histogram().snapshot()})
        assert target.histogram("h").count == 0
        assert target.histogram("h").minimum == float("inf")

    def test_merge_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"x": {"type": "summary"}})

    def test_render_lists_metrics(self):
        registry = MetricsRegistry()
        registry.counter("graph.builds").inc(3)
        registry.histogram("h").observe(1.5)
        rendered = registry.render()
        assert "graph.builds" in rendered
        assert "count=1" in rendered
        assert MetricsRegistry().render() == "metrics: (none recorded)"

    def test_pickle_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(3.0)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        clone.counter("c").inc()  # fresh lock: still usable
        assert clone.value("c") == 5.0


class TestModuleHelpers:
    def test_disabled_helpers_are_noops(self):
        assert active_registry() is None
        assert not metrics_enabled()
        inc("ignored")
        set_gauge("ignored", 1.0)
        observe("ignored", 1.0)

    def test_helpers_write_to_active_registry(self, registry):
        assert metrics_enabled()
        inc("c")
        inc("c", 2.0)
        set_gauge("g", 5.0)
        observe("h", 2.5)
        assert registry.value("c") == 3.0
        assert registry.value("g") == 5.0
        assert registry.histogram("h").count == 1

    def test_set_registry_returns_previous(self):
        first = MetricsRegistry()
        previous = set_registry(first)
        try:
            assert set_registry(None) is first
        finally:
            set_registry(previous)
