"""Tests for the command-line interface."""

import json
import re

import pytest

from repro.cli import main


class TestCli:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mpeg" in out and "adpcm" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--workload", "tiny", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "average energy improvement" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--workload", "tiny", "--scale", "0.2"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--workload", "tiny", "--sizes", "64",
            "--algorithms", "casa", "steinke", "--scale", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "casa (uJ)" in out

    def test_graph_dot(self, capsys):
        assert main(["graph", "--workload", "tiny", "--scale", "0.2"]) \
            == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_overlay(self, capsys):
        assert main(["overlay", "--workload", "jpeg", "--spm-size",
                     "128", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "overlay gain" in out

    def test_pressure(self, capsys):
        assert main(["pressure", "--workload", "tiny", "--top", "3",
                     "--scale", "0.2"]) == 0
        assert "contended cache sets" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["fig4", "--workload", "doom"])


class TestExplainOutput:
    def test_explain_header_carries_solver_telemetry(self, capsys):
        assert main(["explain", "--workload", "tiny", "--spm-size",
                     "128", "--scale", "0.2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "solver: optimal after" in out
        assert "proven gap" in out

    def test_sweep_explain_flag(self, capsys):
        code = main([
            "sweep", "--workload", "tiny", "--sizes", "64", "128",
            "--algorithms", "casa", "--scale", "0.2", "--explain",
            "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CASA at 128 B" in out
        assert "scratchpad residents" in out


class TestEventsFlag:
    def test_sweep_events_prints_stream_summary(self, capsys):
        code = main([
            "sweep", "--workload", "tiny", "--sizes", "64",
            "--algorithms", "casa", "--scale", "0.2", "--events",
            "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache events:" in out
        assert "misses" in out


class TestAuditCommand:
    def test_audit_passes(self, capsys):
        assert main(["audit", "--workload", "tiny", "--scale", "0.5",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "conflict-graph audit of 'tiny'" in out
        assert "OK" in out


class TestBenchCommand:
    def test_record_then_compare_round_trip(self, capsys, tmp_path):
        history = tmp_path / "history.jsonl"
        assert main(["bench", "record", "--history", str(history),
                     "--workloads", "tiny", "--scale", "0.2"]) == 0
        assert "recorded snapshot" in capsys.readouterr().out
        code = main(["bench", "compare", "--history", str(history),
                     "--baseline", str(history), "--workloads",
                     "tiny", "--scale", "0.2"])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_fails_on_drift(self, capsys, tmp_path):
        history = tmp_path / "history.jsonl"
        assert main(["bench", "record", "--history", str(history),
                     "--workloads", "tiny", "--scale", "0.2"]) == 0
        payload = json.loads(history.read_text().splitlines()[-1])
        payload["metrics"]["tiny.casa.energy_nj"] += 1.0
        drifted = tmp_path / "drifted.jsonl"
        drifted.write_text(json.dumps(payload) + "\n")
        code = main(["bench", "compare", "--history", str(drifted),
                     "--baseline", str(history)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestReportCommand:
    def test_report(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["report", "--scale", "0.05", "--no-charts",
                     "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Table 1" in out
        assert out_file.read_text().startswith("# CASA reproduction")


class TestDseCommand:
    def test_dse(self, capsys):
        assert main(["dse", "--workload", "tiny", "--budget", "30000",
                     "--scale", "0.2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "area budget" in out


class TestLiveTelemetryCli:
    BASE = ["sweep", "--workload", "tiny", "--sizes", "64", "128",
            "--algorithms", "casa", "--scale", "0.2", "--no-cache"]

    def test_sweep_with_full_live_pipeline(self, capsys, tmp_path):
        telemetry = tmp_path / "telemetry.jsonl"
        prom = tmp_path / "metrics.prom"
        profile = tmp_path / "profile.txt"
        log = tmp_path / "run.log"
        code = main(self.BASE + [
            "--jobs", "2", "--watch",
            "--telemetry", str(telemetry), "--telemetry-interval",
            "0.05", "--prom", str(prom),
            "--profile-sample", str(profile), "--log", str(log),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "casa (uJ)" in captured.out, "results still render"
        assert "eta" in captured.err, "--watch paints to stderr"
        # Telemetry: at least two snapshots, monotone in time and done.
        records = [json.loads(line)
                   for line in telemetry.read_text().splitlines()]
        assert len(records) >= 2
        assert all(r["kind"] == "snapshot" for r in records)
        assert [r["done"] for r in records] \
            == sorted(r["done"] for r in records)
        # The grid pipeline may bundle several sizes into one chunk
        # unit, so assert completion rather than a unit count.
        assert records[-1]["total"] >= 1
        assert records[-1]["done"] == records[-1]["total"]
        run_id = records[-1]["run_id"]
        assert run_id and len(run_id) == 12
        assert "point.evaluate" in records[-1]["percentiles"]
        # Prometheus exposition file from the final snapshot.
        assert "repro_units_done" in prom.read_text()
        # Collapsed-stack profile is non-empty and well-formed.
        assert f"profile written to {profile}" in captured.out
        profile_text = profile.read_text()
        assert profile_text.strip()
        for line in profile_text.splitlines():
            assert int(line.rsplit(" ", 1)[1]) > 0
        # Structured log brackets the run with the same run_id.
        events = [json.loads(line)
                  for line in log.read_text().splitlines()]
        assert events[0]["event"] == "run.start"
        assert events[-1]["event"] == "run.done"
        assert {e["run_id"] for e in events} == {run_id}
        assert any(e["event"] == "map.start" for e in events)

    def test_live_flags_leave_metrics_bit_identical(self, capsys,
                                                    tmp_path):
        """--watch/--telemetry must not change deterministic metrics."""

        def deterministic(text):
            # Drop timing histograms and live-artifact notices, and
            # blank the wall-clock column of the stage table — every
            # remaining byte must match exactly.
            lines = []
            for line in text.splitlines():
                if ".seconds" in line:
                    continue
                if line.startswith(("profile written",
                                    "telemetry written",
                                    "log written")):
                    continue
                lines.append(re.sub(r"\d+\.\d+ s$", "<t>", line))
            return lines

        assert main(self.BASE + ["--metrics"]) == 0
        plain = capsys.readouterr().out
        assert main(self.BASE + [
            "--metrics", "--watch",
            "--telemetry", str(tmp_path / "t.jsonl"),
            "--profile-sample", str(tmp_path / "p.txt"),
        ]) == 0
        live = capsys.readouterr().out
        assert deterministic(live) == deterministic(plain)

    def test_stall_timeout_flag_parses(self, capsys, tmp_path):
        assert main(self.BASE + [
            "--watch", "--stall-timeout", "5",
        ]) == 0
        assert "casa (uJ)" in capsys.readouterr().out
