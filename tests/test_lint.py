"""Lightweight lint enforced as tests: no unused imports, no tabs.

Keeps the source tree tidy without external tooling (the environment is
offline); the checker is a small AST walk, deliberately conservative
(``__init__.py`` re-exports and ``TYPE_CHECKING`` blocks are exempt).
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"
SOURCES = sorted(
    path for path in SRC.rglob("*.py")
)


def imported_names(tree):
    """Yield (alias, node) for every import binding in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                yield name, node
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield alias.asname or alias.name, node


def used_names(tree):
    """All identifiers and attribute roots referenced in *tree*."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            pass  # roots are Name nodes, already collected
    # names referenced in string annotations
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value,
                                                         str):
            for token in node.value.replace("|", " ").replace(
                    "[", " ").replace("]", " ").split():
                names.add(token.split(".")[0])
    return names


@pytest.mark.parametrize(
    "path", SOURCES, ids=lambda p: str(p.relative_to(SRC))
)
def test_no_unused_imports(path):
    if path.name == "__init__.py":
        pytest.skip("package __init__ files re-export")
    tree = ast.parse(path.read_text())
    used = used_names(tree)
    unused = [
        name for name, _ in imported_names(tree)
        if name not in used
    ]
    assert not unused, f"{path.name}: unused imports {unused}"


@pytest.mark.parametrize(
    "path", SOURCES, ids=lambda p: str(p.relative_to(SRC))
)
def test_no_tabs_and_no_trailing_whitespace(path):
    offenders = []
    for number, line in enumerate(path.read_text().splitlines(),
                                  start=1):
        if "\t" in line:
            offenders.append(f"{number}: tab")
        if line != line.rstrip():
            offenders.append(f"{number}: trailing whitespace")
    assert not offenders, f"{path.name}: {offenders[:5]}"
