"""Run files and reports: payload building, loading, rendering."""

from __future__ import annotations

import json

import pytest

from repro.engine.runner import RunRecord
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    POINT_SPAN,
    RUN_SCHEMA,
    RunData,
    build_run_payload,
    load_run,
    render_run_report,
    summarise_run,
    write_run_file,
)
from repro.obs.trace import TraceCollector


def make_run_file(path, run_id=None, profile=None):
    """Write a small but fully populated run file; returns its path."""
    collector = TraceCollector()
    with collector.span(POINT_SPAN, workload="tiny", algorithm="casa",
                        spm_size=128):
        with collector.span("ilp.solve", variables=5):
            pass
    with collector.span(POINT_SPAN, workload="tiny",
                        algorithm="steinke", spm_size=128):
        pass
    record = RunRecord()
    record.note("execution", hit=False, seconds=0.5)
    record.note("result", hit=True)
    record.note("result", hit=False, seconds=0.25)
    registry = MetricsRegistry()
    registry.counter("sim.cache_accesses").inc(100)
    registry.counter("sim.cache_hits").inc(90)
    registry.counter("sim.cache_misses").inc(10)
    registry.counter("sim.spm_accesses").inc(40)
    registry.counter("ilp.solves").inc(2)
    for value in (0.01, 0.02, 0.04):
        registry.histogram("point.evaluate.seconds").observe(value)
    payload = build_run_payload(
        "sweep", collector, record=record, registry=registry,
        argv=["sweep", "--workload", "tiny"],
        run_id=run_id, profile=profile,
    )
    file_path = path / "run.json"
    write_run_file(file_path, payload)
    return file_path


PROFILE = {
    "samples": 40,
    "interval_s": 0.005,
    "duration_s": 0.25,
    "estimated_busy_s": 0.2,
    "hot": [{"function": "repro.core.pipeline:run_grid", "samples": 25}],
}


class TestPayload:
    def test_payload_is_a_chrome_trace_with_metadata(self, tmp_path):
        path = make_run_file(tmp_path)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert all(e["ph"] == "X" for e in document["traceEvents"])
        metadata = document["casa"]
        assert metadata["schema"] == RUN_SCHEMA
        assert metadata["command"] == "sweep"
        assert metadata["record"]["execution"]["computed"] == 1
        assert metadata["metrics"]["ilp.solves"]["value"] == 2
        assert metadata["argv"][0] == "sweep"

    def test_payload_without_record_or_registry(self):
        payload = build_run_payload("fig4", TraceCollector())
        assert payload["casa"]["record"] == {}
        assert payload["casa"]["metrics"] == {}
        assert "argv" not in payload["casa"]


class TestLoadRun:
    def test_round_trip(self, tmp_path):
        run = load_run(make_run_file(tmp_path))
        assert run.command == "sweep"
        assert run.span_names().count(POINT_SPAN) == 2
        assert len(run.point_spans()) == 2
        assert run.record["result"]["hits"] == 1
        assert run.metric_value("sim.cache_accesses") == 100.0
        assert run.metric_value("missing", default=3.0) == 3.0
        assert run.argv == ["sweep", "--workload", "tiny"]

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_run(tmp_path / "absent.json")

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_run(path)

    def test_rejects_plain_chrome_trace(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ConfigurationError):
            load_run(path)

    def test_rejects_non_trace_document(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"results": [1, 2, 3]}))
        with pytest.raises(ConfigurationError):
            load_run(path)


class TestSummarise:
    def test_summary_fields(self, tmp_path):
        run = load_run(make_run_file(tmp_path))
        summary = summarise_run(run, top=1)
        assert summary["command"] == "sweep"
        assert summary["spans"] == 3
        assert summary["wall_ms"] > 0.0
        assert summary["stages"]["result"]["hits"] == 1
        assert summary["stages"]["result"]["hit_rate"] == 0.5
        assert summary["stages"]["execution"]["compute_seconds"] == 0.5
        assert len(summary["slowest"]) == 1
        slowest = summary["slowest"][0]
        assert slowest["name"] == POINT_SPAN
        assert "cpu_us" not in slowest["args"]
        json.dumps(summary)  # must be machine-readable

    def test_summary_of_empty_run(self):
        run = RunData(command="fig5", record={}, metrics={}, spans=[])
        summary = summarise_run(run)
        assert summary["spans"] == 0
        assert summary["wall_ms"] == 0.0
        assert summary["slowest"] == []


class TestRender:
    def test_report_sections(self, tmp_path):
        run = load_run(make_run_file(tmp_path))
        report = render_run_report(run, top=5)
        assert report.startswith("# Run report: `sweep`")
        assert "## Stage timings" in report
        assert "execution" in report
        assert "## Cache behaviour" in report
        assert "simulated I-cache: 100 accesses, 90 hits (90.0%)" \
            in report
        assert "simulated scratchpad: 40 accesses" in report
        assert "artifact store: 1/3" in report
        assert "## Slowest design points (top 5)" in report
        assert "algorithm=casa" in report
        assert "## Solver and analysis metrics" in report
        assert "ilp.solves: 2" in report

    def test_report_of_fully_cached_run(self):
        run = RunData(command="table1",
                      record={"result": {"computed": 0, "hits": 3,
                                         "seconds": 0.0}},
                      metrics={}, spans=[])
        report = render_run_report(run)
        assert "none recorded (fully cached" in report
        assert "artifact store: 3/3" in report
        assert "(no spans recorded)" in report


class TestHistogramsAndProfile:
    def test_summary_includes_histograms_run_id_and_profile(
            self, tmp_path):
        run = load_run(make_run_file(tmp_path, run_id="abc123def456",
                                     profile=PROFILE))
        summary = summarise_run(run)
        assert summary["run_id"] == "abc123def456"
        assert summary["profile"]["samples"] == 40
        entry = summary["histograms"]["point.evaluate.seconds"]
        assert entry["count"] == 3
        assert entry["p50"] <= entry["p90"] <= entry["p99"]
        assert entry["max"] == pytest.approx(0.04)
        json.dumps(summary)  # must stay machine-readable

    def test_report_renders_histogram_table_and_profile(self, tmp_path):
        run = load_run(make_run_file(tmp_path, run_id="abc123def456",
                                     profile=PROFILE))
        report = render_run_report(run)
        assert "- run id: `abc123def456`" in report
        assert "## Histogram metrics" in report
        for column in ("metric", "count", "mean", "p50", "p90", "p99",
                       "max"):
            assert f"| {column}" in report
        assert "point.evaluate.seconds" in report
        assert "## Sampling profile" in report
        assert "- samples: 40 at 5.0 ms intervals" in report
        assert "estimated busy time: 0.20 s" in report
        assert "traced span wall time:" in report
        assert "repro.core.pipeline:run_grid" in report

    def test_report_without_histograms_or_profile_omits_sections(
            self, tmp_path):
        run = load_run(make_run_file(tmp_path))
        run.metrics = {k: v for k, v in run.metrics.items()
                       if v.get("type") != "histogram"}
        report = render_run_report(run)
        assert "## Histogram metrics" not in report
        assert "## Sampling profile" not in report
        assert "- run id:" not in report
