"""Deterministic fault injection: spec grammar, firing rules, metrics."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError, InjectedFault, WorkerCrashError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    maybe_inject,
    set_fault_attempt,
    set_fault_plan,
)


@pytest.fixture(autouse=True)
def clean_fault_state():
    """No plan and attempt 0 before and after every test."""
    set_fault_plan(None)
    set_fault_attempt(0)
    yield
    set_fault_plan(None)
    set_fault_attempt(0)


@pytest.fixture
def registry():
    """A metrics registry installed as the active one."""
    active = MetricsRegistry()
    previous = set_registry(active)
    yield active
    set_registry(previous)


class TestSpecGrammar:
    def test_minimal_rule_defaults_to_error_nth_1(self):
        plan = FaultPlan.from_spec("store.read")
        [rule] = plan.rules
        assert rule.kind == "error"
        assert rule.nth == 1
        assert rule.limit == 1

    def test_full_grammar_round_trips(self):
        spec = ("store.read:corrupt@nth=2;"
                "ilp.solve:error@p=0.25,seed=7;"
                "worker.exec:sleep=0.5@nth=1,retries;"
                "worker.exec:crash@nth=3,limit=2")
        plan = FaultPlan.from_spec(spec)
        assert FaultPlan.from_spec(plan.spec()).spec() == plan.spec()
        sleep_rule = plan.rules[2]
        assert sleep_rule.sleep_s == 0.5
        assert sleep_rule.on_retries

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("store.reed:error@nth=1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("store.read:explode")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("store.read:error@when=later")

    def test_bad_attribute_value_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("store.read:error@nth=first")

    def test_value_on_non_sleep_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("store.read:error=0.5")

    def test_nth_and_probability_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            FaultRule(site="store.read", nth=1, probability=0.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "ilp.solve:error@nth=2")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.rules[0].nth == 2
        monkeypatch.delenv(FAULTS_ENV)
        assert FaultPlan.from_env() is None


class TestFiring:
    def test_nth_fires_exactly_once(self):
        rule = FaultRule(site="store.read", nth=3)
        fires = [rule.should_fire(0) for _ in range(6)]
        assert fires == [False, False, True, False, False, False]

    def test_limit_extends_nth_fires(self):
        rule = FaultRule(site="store.read", nth=2, limit=3)
        fires = [rule.should_fire(0) for _ in range(6)]
        assert fires == [False, True, True, True, False, False]

    def test_probability_is_deterministic_per_seed(self):
        first = FaultRule(site="store.read", probability=0.5, seed=11)
        second = FaultRule(site="store.read", probability=0.5, seed=11)
        pattern = [first.should_fire(0) for _ in range(32)]
        assert pattern == [second.should_fire(0) for _ in range(32)]
        assert any(pattern) and not all(pattern)

    def test_reset_replays_the_same_pattern(self):
        rule = FaultRule(site="store.read", probability=0.5, seed=3,
                         limit=None)
        pattern = [rule.should_fire(0) for _ in range(16)]
        rule.reset()
        assert rule.calls == 0 and rule.fires == 0
        assert [rule.should_fire(0) for _ in range(16)] == pattern

    def test_retry_attempts_skipped_by_default(self):
        rule = FaultRule(site="store.read", nth=1)
        assert not rule.should_fire(1)
        assert rule.calls == 0  # retry calls are not even counted
        assert rule.should_fire(0)

    def test_retries_flag_opts_into_retry_attempts(self):
        rule = FaultRule(site="store.read", nth=1, on_retries=True)
        assert rule.should_fire(2)

    def test_match_advances_every_rule_watching_a_site(self):
        plan = FaultPlan.from_spec(
            "store.read:error@nth=1;store.read:corrupt@nth=2")
        assert plan.match("store.read", 0).kind == "error"
        assert plan.match("store.read", 0).kind == "corrupt"
        assert plan.match("store.read", 0) is None
        assert plan.injected == 2
        assert plan.counts() == {"store.read": 2}


class TestMaybeInject:
    def test_noop_without_a_plan(self):
        assert active_fault_plan() is None
        maybe_inject("store.read")  # must not raise

    def test_error_kind_raises_and_counts(self, registry):
        set_fault_plan(FaultPlan.from_spec("ilp.solve:error@nth=1"))
        with pytest.raises(InjectedFault) as excinfo:
            maybe_inject("ilp.solve")
        assert excinfo.value.site == "ilp.solve"
        assert registry.value("faults.injected") == 1
        assert registry.value("faults.injected.ilp.solve") == 1
        maybe_inject("ilp.solve")  # limit exhausted: silent
        assert registry.value("faults.injected") == 1

    def test_sleep_kind_returns_after_delay(self):
        set_fault_plan(
            FaultPlan.from_spec("worker.exec:sleep=0.01@nth=1"))
        maybe_inject("worker.exec")  # must not raise

    def test_crash_kind_raises_worker_crash_in_main_process(self):
        set_fault_plan(FaultPlan.from_spec("worker.exec:crash@nth=1"))
        with pytest.raises(WorkerCrashError):
            maybe_inject("worker.exec", point="tiny/casa@64")

    def test_retry_attempt_suppresses_injection(self):
        set_fault_plan(FaultPlan.from_spec("store.read:error@nth=1"))
        set_fault_attempt(1)
        maybe_inject("store.read")  # must not raise
        set_fault_attempt(0)
        with pytest.raises(InjectedFault):
            maybe_inject("store.read")


class TestPickling:
    def test_plan_pickles_as_spec_with_fresh_state(self):
        plan = FaultPlan.from_spec("store.read:error@nth=1")
        assert plan.match("store.read", 0) is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.spec() == plan.spec()
        assert clone.injected == 0  # runtime state does not travel
        assert clone.match("store.read", 0) is not None
