"""Parallel design-point execution must be indistinguishable from serial."""

from __future__ import annotations

import pytest

from repro.engine.parallel import PointSpec, evaluate_point, map_points
from repro.engine.runner import RunRecord
from repro.engine.store import ArtifactStore, set_default_store
from repro.errors import ConfigurationError

POINTS = [
    PointSpec("tiny", 64, "casa", scale=0.2),
    PointSpec("tiny", 64, "steinke", scale=0.2),
    PointSpec("tiny", 128, "casa", scale=0.2),
    PointSpec("tiny", 0, "baseline", scale=0.2),
]


@pytest.fixture
def shared_cache(tmp_path):
    """A disk-backed default store the worker pool can share."""
    previous = set_default_store(
        ArtifactStore(cache_dir=tmp_path / "cache")
    )
    yield
    set_default_store(previous)


def test_parallel_matches_serial(shared_cache):
    serial = map_points(POINTS, jobs=1)
    parallel = map_points(POINTS, jobs=2)
    assert len(parallel) == len(serial)
    for left, right in zip(serial, parallel):
        assert left.energy.total == right.energy.total
        assert left.report.cache_misses == right.report.cache_misses
        assert left.allocation.algorithm == right.allocation.algorithm


def test_parallel_merges_worker_records(shared_cache):
    record = RunRecord()
    map_points(POINTS, jobs=2, record=record)
    assert record.computed("result") + record.hits("result") \
        == sum(1 for p in POINTS if p.algorithm != "baseline")


def test_unknown_algorithm_rejected_before_spawning():
    bogus = [PointSpec("tiny", 64, "annealing")]
    with pytest.raises(ConfigurationError):
        map_points(bogus, jobs=2)
    with pytest.raises(ConfigurationError):
        evaluate_point(bogus[0])


def test_single_point_runs_serially(shared_cache):
    record = RunRecord()
    [result] = map_points([POINTS[0]], jobs=8, record=record)
    assert result.allocation.algorithm == "casa"
    assert record.computed("execution") == 1
