"""Property tests for linker/layout invariants on random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage, Placement
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.workloads.synthetic import random_program


def build(seed, max_trace=64):
    program = random_program(seed, num_functions=3, max_depth=2)
    execution = execute_program(program, max_steps=2_000_000)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=max_trace),
    )
    return program, execution, mos


class TestLayoutInvariants:
    @given(st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_main_image_ranges_disjoint_and_aligned(self, seed):
        program, _, mos = build(seed)
        image = LinkedImage(program, mos)
        ranges = sorted(
            (image.base_address(mo.name),
             image.base_address(mo.name) + mo.padded_size)
            for mo in mos
        )
        for (start, end), (next_start, _) in zip(ranges, ranges[1:]):
            assert end <= next_start
        for start, _ in ranges:
            assert start % 16 == 0

    @given(st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_plan_words_cover_block_instructions(self, seed):
        """Every block's always-fetched words equal its instruction
        count plus its unconditional continuation jumps."""
        program, _, mos = build(seed)
        image = LinkedImage(program, mos)
        from repro.traces.memory_object import JumpKind
        always_jumps: dict[str, int] = {}
        for mo in mos:
            for fragment in mo.fragments:
                if fragment.appended_jump is JumpKind.ALWAYS:
                    always_jumps[fragment.block] = \
                        always_jumps.get(fragment.block, 0) + 1
        for block in program.all_blocks():
            plan = image.plan_for(block.name)
            expected = block.num_instructions + \
                always_jumps.get(block.name, 0)
            assert plan.always_fetched_words == expected

    @given(st.integers(0, 40), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_copy_vs_compact_same_fetch_totals(self, seed, pick):
        """Placement policy moves code around but must never change
        *what* is fetched — only where from."""
        program, execution, mos = build(seed)
        if not mos:
            return
        resident = frozenset({mos[pick % len(mos)].name})
        spm_size = sum(mo.unpadded_size for mo in mos) + 64
        config = HierarchyConfig(
            cache=CacheConfig(size=128, line_size=16, associativity=1),
            spm_size=spm_size,
        )
        reports = []
        for placement in (Placement.COPY, Placement.COMPACT):
            image = LinkedImage(
                program, mos, spm_resident=resident,
                spm_size=spm_size, placement=placement,
            )
            reports.append(
                simulate(image, config, execution.block_sequence)
            )
        copy_report, compact_report = reports
        assert copy_report.total_fetches == \
            compact_report.total_fetches
        assert copy_report.spm_accesses == compact_report.spm_accesses

    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_all_resident_simulation_has_no_cache_traffic(self, seed):
        program, execution, mos = build(seed)
        resident = frozenset(mo.name for mo in mos)
        spm_size = sum(mo.unpadded_size for mo in mos)
        image = LinkedImage(program, mos, spm_resident=resident,
                            spm_size=spm_size)
        report = simulate(
            image,
            HierarchyConfig(cache=CacheConfig(size=128, line_size=16,
                                              associativity=1),
                            spm_size=spm_size),
            execution.block_sequence,
        )
        assert report.cache_accesses == 0
        assert report.spm_accesses == report.total_fetches
