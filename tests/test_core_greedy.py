"""Tests for the greedy CASA ablation allocator."""

import pytest

from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.energy.model import EnergyModel

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def make_graph(nodes, edges=()):
    graph = ConflictGraph()
    for name, fetches, size in nodes:
        graph.add_node(ConflictNode(name, fetches=fetches, size=size))
    for victim, evictor, weight in edges:
        graph.add_edge(victim, evictor, weight)
    return graph


class TestGreedy:
    def test_capacity_respected(self):
        graph = make_graph([(f"n{i}", 100, 48) for i in range(5)])
        allocation = GreedyCasaAllocator().allocate(graph, 100, MODEL)
        assert allocation.used_bytes <= 100

    def test_conflict_aware(self):
        graph = make_graph(
            [("A", 300, 64), ("B", 300, 64), ("D", 400, 64)],
            [("A", "B", 500), ("B", "A", 500)],
        )
        allocation = GreedyCasaAllocator().allocate(graph, 64, MODEL)
        assert allocation.spm_resident & {"A", "B"}

    def test_never_worse_than_empty(self):
        graph = make_graph(
            [("A", 100, 32), ("B", 10, 32)], [("A", "B", 20)]
        )
        allocation = GreedyCasaAllocator().allocate(graph, 64, MODEL)
        empty = graph.predicted_energy(set(), MODEL)
        assert allocation.predicted_energy <= empty

    def test_zero_size_objects_skipped(self):
        graph = make_graph([("zero", 100, 0), ("a", 50, 32)])
        allocation = GreedyCasaAllocator().allocate(graph, 64, MODEL)
        assert "zero" not in allocation.spm_resident

    def test_bounded_by_ilp_optimum(self):
        """Greedy can at best match the exact ILP (model-predicted)."""
        graph = make_graph(
            [("A", 1000, 64), ("B", 800, 64), ("C", 900, 32),
             ("D", 100, 32)],
            [("A", "B", 100), ("B", "C", 150), ("C", "A", 120)],
        )
        for spm_size in (32, 64, 96, 128):
            greedy = GreedyCasaAllocator().allocate(graph, spm_size,
                                                    MODEL)
            exact = CasaAllocator().allocate(graph, spm_size, MODEL)
            assert greedy.predicted_energy >= \
                exact.predicted_energy - 1e-6

    def test_predicted_energy_consistent(self):
        graph = make_graph(
            [("A", 500, 32), ("B", 300, 32)], [("A", "B", 40)]
        )
        allocation = GreedyCasaAllocator().allocate(graph, 32, MODEL)
        assert allocation.predicted_energy == pytest.approx(
            graph.predicted_energy(set(allocation.spm_resident), MODEL)
        )
