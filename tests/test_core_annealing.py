"""Tests for the simulated-annealing allocator."""

import pytest

from repro.core.annealing import AnnealingAllocator, AnnealingConfig
from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.energy.model import EnergyModel

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5)


def make_graph(nodes, edges=()):
    graph = ConflictGraph()
    for name, fetches, size in nodes:
        graph.add_node(ConflictNode(name, fetches=fetches, size=size))
    for victim, evictor, weight in edges:
        graph.add_edge(victim, evictor, weight)
    return graph


def standard_graph():
    return make_graph(
        [("A", 1000, 64), ("B", 800, 64), ("C", 900, 32),
         ("D", 50, 32)],
        [("A", "B", 100), ("B", "C", 150), ("C", "A", 120)],
    )


class TestAnnealing:
    def test_capacity_respected(self):
        allocation = AnnealingAllocator().allocate(
            standard_graph(), 96, MODEL
        )
        assert allocation.used_bytes <= 96

    def test_deterministic_for_seed(self):
        graph = standard_graph()
        a = AnnealingAllocator(AnnealingConfig(seed=5)).allocate(
            graph, 96, MODEL)
        b = AnnealingAllocator(AnnealingConfig(seed=5)).allocate(
            graph, 96, MODEL)
        assert a.spm_resident == b.spm_resident

    def test_never_worse_than_empty(self):
        graph = standard_graph()
        allocation = AnnealingAllocator().allocate(graph, 128, MODEL)
        empty = graph.predicted_energy(set(), MODEL)
        assert allocation.predicted_energy <= empty

    def test_close_to_ilp_on_small_instance(self):
        graph = standard_graph()
        exact = CasaAllocator().allocate(graph, 128, MODEL)
        annealed = AnnealingAllocator(
            AnnealingConfig(iterations=6000)
        ).allocate(graph, 128, MODEL)
        # within 5% of the proven optimum on a 4-object instance
        assert annealed.predicted_energy <= \
            exact.predicted_energy * 1.05

    def test_oversized_objects_skipped(self):
        graph = make_graph([("huge", 1000, 4096), ("ok", 100, 32)])
        allocation = AnnealingAllocator().allocate(graph, 64, MODEL)
        assert "huge" not in allocation.spm_resident

    def test_zero_capacity(self):
        allocation = AnnealingAllocator().allocate(
            standard_graph(), 0, MODEL)
        assert allocation.spm_resident == frozenset()

    def test_metadata(self):
        allocation = AnnealingAllocator().allocate(
            standard_graph(), 64, MODEL)
        assert allocation.algorithm == "annealing"
        assert allocation.capacity == 64
