"""Tests for the overlay (dynamic copying) extension."""

import pytest

from repro import Workbench, WorkbenchConfig, get_workload
from repro.core.overlay import (
    OverlayAllocator,
    OverlayConfig,
    PhasedConflictData,
)
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.traces.tracegen import TraceGenConfig

MODEL = EnergyModel(cache_hit=1.0, cache_miss=21.0, spm_access=0.5,
                    main_word=8.0)


def two_phase_data():
    """Two phases, two objects, disjoint hotness."""
    data = PhasedConflictData(num_phases=2,
                             sizes={"A": 64, "B": 64})
    data.fetches[(0, "A")] = 10_000
    data.fetches[(0, "B")] = 10
    data.fetches[(1, "A")] = 10
    data.fetches[(1, "B")] = 10_000
    return data


@pytest.fixture(scope="module")
def jpeg_bench():
    workload = get_workload("jpeg", scale=0.2)
    return Workbench(workload.program, WorkbenchConfig(
        cache=workload.cache,
        tracegen=TraceGenConfig(line_size=16, max_trace_size=128),
    ))


class TestOverlayIlp:
    def test_swaps_objects_between_phases(self):
        allocation = OverlayAllocator().allocate(two_phase_data(), 64,
                                                 MODEL)
        assert allocation.residents[0] == {"A"}
        assert allocation.residents[1] == {"B"}

    def test_copy_words_predicted(self):
        allocation = OverlayAllocator().allocate(two_phase_data(), 64,
                                                 MODEL)
        # B is copied in at phase 1 (phase-0 fill is free by default)
        assert allocation.predicted_copy_words == 64 // 4

    def test_charge_initial_copies(self):
        allocator = OverlayAllocator(
            OverlayConfig(charge_initial_copies=True))
        allocation = allocator.allocate(two_phase_data(), 64, MODEL)
        assert allocation.predicted_copy_words == 2 * (64 // 4)

    def test_keeps_object_resident_when_copy_too_expensive(self):
        data = PhasedConflictData(num_phases=2,
                                  sizes={"A": 64, "B": 64})
        # both phases want A; B is barely warm, not worth a copy
        data.fetches[(0, "A")] = 10_000
        data.fetches[(1, "A")] = 10_000
        data.fetches[(1, "B")] = 3
        allocation = OverlayAllocator().allocate(data, 64, MODEL)
        assert allocation.residents[0] == {"A"}
        assert allocation.residents[1] == {"A"}
        assert allocation.predicted_copy_words == 0

    def test_capacity_per_phase(self):
        data = PhasedConflictData(
            num_phases=2,
            sizes={"A": 64, "B": 64, "C": 64},
        )
        for phase in (0, 1):
            for name in ("A", "B", "C"):
                data.fetches[(phase, name)] = 1000
        allocation = OverlayAllocator().allocate(data, 128, MODEL)
        for resident in allocation.residents:
            assert sum(data.sizes[n] for n in resident) <= 128

    def test_conflict_terms_respected(self):
        data = PhasedConflictData(num_phases=1,
                                  sizes={"A": 64, "B": 64, "D": 64})
        data.fetches[(0, "A")] = 300
        data.fetches[(0, "B")] = 300
        data.fetches[(0, "D")] = 400
        data.conflicts[(0, "A", "B")] = 500
        data.conflicts[(0, "B", "A")] = 500
        allocation = OverlayAllocator().allocate(data, 64, MODEL)
        assert allocation.residents[0] & {"A", "B"}

    def test_rejects_unphased_report(self, jpeg_bench):
        with pytest.raises(ConfigurationError):
            PhasedConflictData.from_simulation(
                jpeg_bench.memory_objects,
                jpeg_bench.baseline_report,  # not phase-tracked
                3,
            )


class TestOverlayEndToEnd:
    def test_overlay_beats_static_on_phased_workload(self, jpeg_bench):
        static = jpeg_bench.run_casa(128)
        overlay = jpeg_bench.run_overlay(128)
        assert overlay.energy.total < static.energy.total

    def test_copy_traffic_accounted(self, jpeg_bench):
        overlay = jpeg_bench.run_overlay(128)
        assert overlay.report.overlay_copy_words > 0
        assert overlay.energy.overlay_copies > 0

    def test_accounting_identity(self, jpeg_bench):
        overlay = jpeg_bench.run_overlay(128)
        assert overlay.report.check_identities()
        assert overlay.report.total_fetches == \
            jpeg_bench.baseline_report.total_fetches

    def test_allocation_metadata(self, jpeg_bench):
        overlay = jpeg_bench.run_overlay(128)
        assert overlay.allocation.algorithm == "casa-overlay"
        assert overlay.allocation.used_bytes <= 128

    def test_overlay_with_huge_spm_converges_to_static(self, jpeg_bench):
        """When everything fits, swapping is pointless: same energy as
        the static optimum (no copies)."""
        total = sum(
            mo.unpadded_size for mo in jpeg_bench.memory_objects
        )
        static = jpeg_bench.run_casa(total + 64)
        overlay = jpeg_bench.run_overlay(total + 64)
        assert overlay.report.overlay_copy_words == 0
        assert overlay.energy.total == pytest.approx(
            static.energy.total, rel=0.01
        )


class TestOverlayOptimality:
    """Brute-force verification of the overlay ILP on tiny instances."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def brute_force(data, spm_size, model):
        import itertools
        from repro.core.overlay import overlay_predicted_energy
        names = data.object_names
        per_phase_options = []
        for phase in range(data.num_phases):
            options = []
            for mask in itertools.product((0, 1), repeat=len(names)):
                resident = frozenset(
                    n for n, take in zip(names, mask) if take
                )
                if sum(data.sizes[n] for n in resident) <= spm_size:
                    options.append(resident)
            per_phase_options.append(options)
        best = None
        for combo in itertools.product(*per_phase_options):
            value = overlay_predicted_energy(data, list(combo), model)
            if best is None or value < best:
                best = value
        return best

    @given(
        st.lists(st.integers(0, 500), min_size=2, max_size=3),
        st.lists(st.integers(0, 500), min_size=2, max_size=3),
        st.integers(0, 2),
        st.integers(0, 200),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, phase0, phase1, capacity_words,
                                 conflict_weight):
        from repro.core.overlay import (
            OverlayAllocator, PhasedConflictData,
        )
        num = min(len(phase0), len(phase1))
        names = [f"O{i}" for i in range(num)]
        data = PhasedConflictData(
            num_phases=2,
            sizes={name: 4 for name in names},
        )
        for i, name in enumerate(names):
            data.fetches[(0, name)] = phase0[i]
            data.fetches[(1, name)] = phase1[i]
        if num >= 2 and conflict_weight:
            data.conflicts[(0, names[0], names[1])] = conflict_weight
        allocation = OverlayAllocator().allocate(
            data, capacity_words * 4, MODEL
        )
        expected = self.brute_force(data, capacity_words * 4, MODEL)
        assert allocation.predicted_energy == pytest.approx(expected)
