"""Tests for repro.program.function."""

import pytest

from repro.errors import ConfigurationError
from repro.isa import make_alu, make_jump, make_return
from repro.program.basicblock import BasicBlock
from repro.program.function import Function


def block(name, fallthrough=None, terminator=None):
    instructions = [make_alu(), make_alu()]
    if terminator is not None:
        instructions.append(terminator)
    return BasicBlock(name=name, instructions=instructions,
                      fallthrough=fallthrough)


class TestConstruction:
    def test_needs_blocks(self):
        with pytest.raises(ConfigurationError):
            Function("f", [])

    def test_needs_name(self):
        with pytest.raises(ConfigurationError):
            Function("", [block("b", terminator=make_return())])

    def test_duplicate_block_names_rejected(self):
        blocks = [
            block("b", fallthrough="b"),
            block("b", terminator=make_return()),
        ]
        with pytest.raises(ConfigurationError):
            Function("f", blocks)

    def test_entry_is_first_block(self):
        f = Function("f", [
            block("b0", fallthrough="b1"),
            block("b1", terminator=make_return()),
        ])
        assert f.entry.name == "b0"


class TestQueries:
    def make(self):
        return Function("f", [
            block("b0", fallthrough="b1"),
            block("b1", terminator=make_return()),
        ])

    def test_size(self):
        assert self.make().size == 8 + 12

    def test_lookup(self):
        f = self.make()
        assert f.block("b1").name == "b1"
        assert "b0" in f
        assert "zzz" not in f

    def test_iteration_order(self):
        assert [b.name for b in self.make()] == ["b0", "b1"]

    def test_len(self):
        assert len(self.make()) == 2


class TestLocalTargetValidation:
    def test_dangling_jump_rejected(self):
        f = Function("f", [block("b0", terminator=make_jump("nowhere"))])
        with pytest.raises(ConfigurationError):
            f.validate_local_targets()

    def test_dangling_fallthrough_rejected(self):
        f = Function("f", [
            block("b0", fallthrough="missing"),
        ])
        with pytest.raises(ConfigurationError):
            f.validate_local_targets()

    def test_valid_function_passes(self):
        f = Function("f", [
            block("b0", fallthrough="b1"),
            block("b1", terminator=make_return()),
        ])
        f.validate_local_targets()
