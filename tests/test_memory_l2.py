"""Tests for the two-level (L1 + L2) instruction-cache hierarchy.

Section 4: "If we had I-caches at different levels (e.g. L1, L2) ...
we need not do anything, as the algorithm tries to minimize the L1
I-cache misses.  The L2 I-cache misses, being a subset of the L1
I-cache misses, are thus also minimized."
"""

import pytest

from repro.core.casa import CasaAllocator
from repro.energy.model import build_energy_model, compute_energy
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig, generate_traces
from repro.workloads import get_workload

from tests.conftest import make_loop_program


def two_level(l1=128, l2=1024):
    return HierarchyConfig(
        cache=CacheConfig(size=l1, line_size=16, associativity=1),
        l2_cache=CacheConfig(size=l2, line_size=16, associativity=1),
    )


def run(program, config, spm_resident=frozenset(), spm_size=0):
    execution = execute_program(program)
    mos = generate_traces(
        program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=128),
    )
    image = LinkedImage(program, mos, spm_resident=spm_resident,
                        spm_size=spm_size)
    return simulate(image, config, execution.block_sequence), mos


class TestConfigValidation:
    def test_l2_requires_l1(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(cache=None,
                            l2_cache=CacheConfig(size=1024))

    def test_l2_must_be_larger(self):
        with pytest.raises(ConfigurationError):
            two_level(l1=1024, l2=128)

    def test_line_sizes_must_match(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                cache=CacheConfig(size=128, line_size=16),
                l2_cache=CacheConfig(size=1024, line_size=32),
            )


class TestTwoLevelSimulation:
    def test_l2_misses_subset_of_l1(self):
        program = get_workload("adpcm", scale=0.1).program
        report, _ = run(program, two_level())
        assert report.l2_hits + report.l2_misses == \
            report.cache_misses
        assert report.l2_misses <= report.cache_misses

    def test_l2_filters_offchip_traffic(self):
        program = get_workload("adpcm", scale=0.1).program
        flat, _ = run(program, HierarchyConfig(
            cache=CacheConfig(size=128, line_size=16, associativity=1)
        ))
        layered, _ = run(program, two_level())
        # same L1 behaviour, far fewer off-chip words
        assert layered.cache_misses == flat.cache_misses
        assert layered.main_memory_words < flat.main_memory_words

    def test_energy_accounting_includes_l2(self):
        program = get_workload("adpcm", scale=0.1).program
        config = two_level()
        report, _ = run(program, config)
        model = build_energy_model(config)
        assert model.l2_hit > 0 and model.l2_miss > model.l2_hit
        breakdown = compute_energy(report, model)
        assert breakdown.l2 > 0
        # L1 misses no longer carry the off-chip transfer
        flat_model = build_energy_model(HierarchyConfig(
            cache=config.cache))
        assert model.cache_miss < flat_model.cache_miss

    def test_no_l2_reports_zero(self):
        program = make_loop_program(trip=10)
        report, _ = run(program, HierarchyConfig(
            cache=CacheConfig(size=64, line_size=16, associativity=1)
        ))
        assert report.l2_hits == 0 and report.l2_misses == 0


class TestCasaWithL2:
    def test_allocation_unchanged_and_l2_misses_drop(self):
        """The paper's claim: run CASA against the L1 conflict graph,
        and the L2 benefits automatically."""
        workload = get_workload("adpcm", scale=0.2)
        program = workload.program
        config = two_level()
        baseline, mos = run(program, config)

        # CASA from the L1-only profile (the normal pipeline)
        from repro.core.conflict_graph import ConflictGraph
        l1_report, _ = run(program, HierarchyConfig(cache=config.cache))
        graph = ConflictGraph.from_simulation(mos, l1_report)
        spm_config = HierarchyConfig(cache=config.cache, spm_size=128)
        model = build_energy_model(spm_config)
        allocation = CasaAllocator().allocate(graph, 128, model)

        with_spm_config = HierarchyConfig(
            cache=config.cache, spm_size=128,
            l2_cache=config.l2_cache,
        )
        allocated, _ = run(program, with_spm_config,
                           spm_resident=allocation.spm_resident,
                           spm_size=128)
        assert allocated.cache_misses < baseline.cache_misses
        assert allocated.l2_misses <= baseline.l2_misses
        layered_model = build_energy_model(with_spm_config)
        assert compute_energy(allocated, layered_model).total < \
            compute_energy(baseline, build_energy_model(config)).total
