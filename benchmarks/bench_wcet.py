"""Extension benchmark: WCET tightening through scratchpad allocation.

Quantifies the paper's introductory claim that scratchpads "allow
tighter bounds on WCET prediction": the IPET bound of each benchmark
under (a) cache-only fetching (every touched line conservatively
misses) and (b) CASA scratchpad allocations of growing size (resident
code fetches deterministically).
"""

import pytest

from repro.analysis.wcet import FetchLatency, compute_wcet
from repro.engine import make_workbench
from repro.traces.layout import LinkedImage
from repro.utils.tables import format_table

from conftest import BENCH_SCALE, write_report

LATENCY = FetchLatency(spm=1, cache_hit=1, cache_miss=20)


@pytest.fixture(scope="module")
def wcet_rows():
    rows = []
    for name in ("adpcm", "g721"):
        workload, bench = make_workbench(name, min(BENCH_SCALE, 0.5))
        baseline_image = LinkedImage(bench.program,
                                     bench.memory_objects)
        baseline = compute_wcet(bench.program, baseline_image,
                                LATENCY).program_wcet
        for size in workload.spm_sizes:
            result = bench.run_casa(size)
            image = LinkedImage(
                bench.program, bench.memory_objects,
                spm_resident=result.allocation.spm_resident,
                spm_size=size,
            )
            bound = compute_wcet(bench.program, image,
                                 LATENCY).program_wcet
            rows.append((name, size, baseline, bound))
    return rows


def test_wcet_report(benchmark, wcet_rows):
    workload, bench = make_workbench("adpcm", min(BENCH_SCALE, 0.5))
    image = LinkedImage(bench.program, bench.memory_objects)
    benchmark.pedantic(
        lambda: compute_wcet(bench.program, image, LATENCY),
        rounds=3, iterations=1,
    )
    table = []
    for name, size, baseline, bound in wcet_rows:
        table.append([
            name, f"{size}B", f"{baseline:.0f}", f"{bound:.0f}",
            f"{(1 - bound / baseline) * 100:.1f}",
        ])
    write_report(
        "wcet",
        format_table(
            ["workload", "SPM", "cache-only WCET (cycles)",
             "CASA WCET (cycles)", "tightening %"],
            table,
            title="Extension - WCET bounds (IPET) with and without "
                  "the scratchpad",
        ),
    )


def test_scratchpad_tightens_every_bound(wcet_rows):
    for _, _, baseline, bound in wcet_rows:
        assert bound <= baseline + 1e-6


def test_bigger_spm_never_loosens(wcet_rows):
    by_workload: dict[str, list[float]] = {}
    for name, size, _, bound in wcet_rows:
        by_workload.setdefault(name, []).append(bound)
    for bounds in by_workload.values():
        for small, large in zip(bounds, bounds[1:]):
            assert large <= small + 1e-6
