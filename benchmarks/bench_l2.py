"""Extension benchmark: CASA under a two-level cache hierarchy.

Section 4's claim, measured: "If we had I-caches at different levels
(e.g. L1, L2) ... we need not do anything, as the algorithm tries to
minimize the L1 I-cache misses.  The L2 I-cache misses, being a subset
of the L1 I-cache misses, are thus also minimized."  CASA is run from
the plain L1 conflict graph (unchanged pipeline), then evaluated with
an 8 kB L2 between the L1 and main memory.
"""

import pytest

from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import build_energy_model, compute_energy
from repro.engine import make_workbench
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.traces.layout import LinkedImage
from repro.utils.tables import format_table

from conftest import BENCH_SCALE, write_report

L2 = CacheConfig(size=8192, line_size=16, associativity=2)
SPM_SIZES = (128, 256, 512)


@pytest.fixture(scope="module")
def l2_rows():
    workload, bench = make_workbench("mpeg", BENCH_SCALE)
    l1 = bench.config.cache
    rows = []

    def run_layered(spm_resident, spm_size):
        config = HierarchyConfig(cache=l1, spm_size=spm_size,
                                 l2_cache=L2)
        image = LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=spm_resident, spm_size=spm_size,
        )
        report = simulate(image, config, bench.block_sequence)
        energy = compute_energy(report, build_energy_model(config))
        return report, energy

    baseline_report, baseline_energy = run_layered(frozenset(), 0)
    for size in SPM_SIZES:
        allocation = CasaAllocator().allocate(
            bench.conflict_graph, size, bench.spm_energy_model(size)
        )
        report, energy = run_layered(allocation.spm_resident, size)
        rows.append((size, baseline_report, baseline_energy, report,
                     energy))
    return rows


def test_l2_report(benchmark, l2_rows):
    benchmark.pedantic(lambda: l2_rows, rounds=1, iterations=1)
    table = []
    for size, base_report, base_energy, report, energy in l2_rows:
        table.append([
            f"{size}B",
            base_report.l2_misses, report.l2_misses,
            f"{base_energy.total / 1e3:.2f}",
            f"{energy.total / 1e3:.2f}",
            f"{(1 - energy.total / base_energy.total) * 100:.1f}",
        ])
    write_report(
        "l2",
        format_table(
            ["SPM", "L2 misses (no SPM)", "L2 misses (CASA)",
             "energy no SPM uJ", "energy CASA uJ", "saving %"],
            table,
            title="Extension - CASA under an L1+L2 hierarchy (mpeg, "
                  "8 kB L2)",
        ),
    )


def test_l2_misses_also_minimised(l2_rows):
    """The subset argument: fewer L1 misses -> no more L2 misses."""
    for _, base_report, _, report, _ in l2_rows:
        assert report.l2_misses <= base_report.l2_misses


def test_energy_still_improves_with_l2(l2_rows):
    for _, _, base_energy, _, energy in l2_rows:
        assert energy.total < base_energy.total
