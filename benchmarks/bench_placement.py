"""Baseline benchmark: code placement vs. scratchpad allocation.

The related work (section 2) positions CASA against placement-based
I-cache optimisation [10, 14]: placement decides *where* code sits,
allocation decides *what* to copy to the scratchpad.  This benchmark
runs both and their combination on adpcm:

* original layout, cache only (the reference);
* conflict-aware placement, cache only;
* CASA scratchpad on the original layout;
* CASA on top of the placed layout (re-profiled).

Expected shape: placement alone recovers part of the conflict misses
for free (no scratchpad needed), CASA recovers more (it removes fetch
energy too), and the combination is at least as good as CASA alone.
"""

import pytest

from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph
from repro.core.placement import ConflictAwarePlacer
from repro.engine import make_workbench
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.energy.model import build_energy_model, compute_energy
from repro.traces.layout import LinkedImage
from repro.utils.tables import format_table

from conftest import BENCH_SCALE, write_report

SPM_SIZE = 128


@pytest.fixture(scope="module")
def placement_setup():
    workload, bench = make_workbench("g721", min(BENCH_SCALE, 0.5))
    placer = ConflictAwarePlacer(bench.config.cache)
    placed = placer.place(bench.memory_objects, bench.conflict_graph)

    hierarchy = HierarchyConfig(cache=bench.config.cache)
    model = build_energy_model(hierarchy)

    placed_image = LinkedImage(bench.program, placed.order)
    placed_report = simulate(placed_image, hierarchy,
                             bench.block_sequence)
    placed_energy = compute_energy(placed_report, model).total

    placed_graph = ConflictGraph.from_simulation(placed.order,
                                                 placed_report)
    spm_model = bench.spm_energy_model(SPM_SIZE)
    combo_allocation = CasaAllocator().allocate(
        placed_graph, SPM_SIZE, spm_model
    )
    combo_image = LinkedImage(
        bench.program, placed.order,
        spm_resident=combo_allocation.spm_resident,
        spm_size=SPM_SIZE,
    )
    combo_hierarchy = HierarchyConfig(cache=bench.config.cache,
                                      spm_size=SPM_SIZE)
    combo_report = simulate(combo_image, combo_hierarchy,
                            bench.block_sequence)
    combo_energy = compute_energy(
        combo_report, build_energy_model(combo_hierarchy)
    ).total

    return {
        "bench": bench,
        "baseline": bench.baseline_result(),
        "placed_report": placed_report,
        "placed_energy": placed_energy,
        "casa": bench.run_casa(SPM_SIZE),
        "combo_report": combo_report,
        "combo_energy": combo_energy,
    }


def test_placement_report(benchmark, placement_setup):
    setup = placement_setup
    bench = setup["bench"]
    placer = ConflictAwarePlacer(bench.config.cache)
    benchmark.pedantic(
        lambda: placer.place(bench.memory_objects,
                             bench.conflict_graph),
        rounds=3, iterations=1,
    )
    baseline = setup["baseline"]
    rows = [
        ["original layout, cache only",
         baseline.report.cache_misses,
         f"{baseline.energy.total / 1e3:.2f}"],
        ["placed layout, cache only",
         setup["placed_report"].cache_misses,
         f"{setup['placed_energy'] / 1e3:.2f}"],
        [f"original + CASA {SPM_SIZE}B",
         setup["casa"].report.cache_misses,
         f"{setup['casa'].energy.total / 1e3:.2f}"],
        [f"placed + CASA {SPM_SIZE}B",
         setup["combo_report"].cache_misses,
         f"{setup['combo_energy'] / 1e3:.2f}"],
    ]
    write_report(
        "placement",
        format_table(
            ["configuration", "I-cache misses", "energy uJ"],
            rows,
            title="Baseline - placement vs. allocation (g721)",
        ),
    )


def test_placement_reduces_misses(placement_setup):
    setup = placement_setup
    assert setup["placed_report"].cache_misses < \
        setup["baseline"].report.cache_misses


def test_combination_dominates_each_technique(placement_setup):
    """Placement and allocation compose: CASA on the placed layout is
    at least as good as either technique alone.  (Placement *alone*
    can beat a small scratchpad — it fixes all sets at once for free —
    which is exactly why the paper treats it as the fair preprocessing
    step for both allocators.)"""
    setup = placement_setup
    assert setup["combo_energy"] <= setup["placed_energy"] * 1.02
    assert setup["combo_energy"] <= setup["casa"].energy.total * 1.02


def test_combination_beats_baseline(placement_setup):
    setup = placement_setup
    assert setup["combo_energy"] < \
        setup["baseline"].energy.total
