"""Extension benchmark: one scratchpad shared by code and data.

Steinke et al. allocated "both program and data parts" to the
scratchpad; the unified CASA ILP does the same with conflict awareness
on both sides.  Sweeping the shared capacity on adpcm shows how the
optimiser re-balances the split between instruction traces and data
objects as space grows.
"""

import pytest

from repro.core.unified import UnifiedCasaAllocator, unified_steinke
from repro.data import DataHierarchyConfig, DataWorkbench
from repro.engine import make_workbench
from repro.memory.cache import CacheConfig
from repro.utils.tables import format_table
from repro.workloads.dataspecs import get_data_spec

from conftest import BENCH_SCALE, write_report

SPM_SIZES = (64, 128, 256, 512)


@pytest.fixture(scope="module")
def unified_setup():
    workload, code_bench = make_workbench("adpcm",
                                          min(BENCH_SCALE, 0.5))
    data_bench = DataWorkbench(
        code_bench.program,
        get_data_spec("adpcm"),
        DataHierarchyConfig(
            cache=CacheConfig(size=256, line_size=16, associativity=1),
            spm_size=max(SPM_SIZES),
        ),
    )
    rows = []
    for size in SPM_SIZES:
        code_model = code_bench.spm_energy_model(size)
        data_model = data_bench.energy_model()
        casa = UnifiedCasaAllocator().allocate(
            code_bench.conflict_graph, code_model,
            data_bench.conflict_graph, data_model, size,
        )
        steinke = unified_steinke(
            code_bench.conflict_graph, code_model,
            data_bench.conflict_graph, data_model, size,
        )
        rows.append((size, casa, steinke))
    return code_bench, data_bench, rows


def test_unified_report(benchmark, unified_setup):
    code_bench, data_bench, rows = unified_setup

    def resolve_once():
        return UnifiedCasaAllocator().allocate(
            code_bench.conflict_graph,
            code_bench.spm_energy_model(128),
            data_bench.conflict_graph,
            data_bench.energy_model(),
            128,
        )

    benchmark.pedantic(resolve_once, rounds=1, iterations=1)
    table = []
    for size, casa, steinke in rows:
        table.append([
            f"{size}B",
            len(casa.code_resident), len(casa.data_resident),
            f"{casa.used_bytes}",
            len(steinke.code_resident), len(steinke.data_resident),
        ])
    write_report(
        "unified",
        format_table(
            ["SPM", "CASA code objs", "CASA data objs", "CASA bytes",
             "Steinke code objs", "Steinke data objs"],
            table,
            title="Extension - unified code+data allocation (adpcm)",
        ),
    )


def test_capacity_shared_and_respected(unified_setup):
    _, _, rows = unified_setup
    for size, casa, steinke in rows:
        assert casa.used_bytes <= size
        assert steinke.used_bytes <= size


def test_mix_evolves_with_capacity(unified_setup):
    """More capacity can only grow (or keep) the resident population."""
    _, _, rows = unified_setup
    counts = [
        len(casa.code_resident) + len(casa.data_resident)
        for _, casa, _ in rows
    ]
    assert counts[-1] >= counts[0]
    assert counts[-1] >= 2  # both kinds compete successfully at 512 B
