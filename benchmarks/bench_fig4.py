"""Benchmark: regenerate figure 4 (CASA vs. Steinke on MPEG).

Paper series (percent of Steinke = 100): scratchpad accesses, I-cache
accesses, I-cache misses and energy, for SPM sizes 128-1024 B over a
2 kB direct-mapped I-cache.  The expected *shape*: CASA shows fewer
scratchpad accesses, more I-cache accesses, (mostly) fewer misses, and
lower energy — the paper reports up to 60 % energy reduction and a 28 %
mpeg average.
"""

import pytest

from repro.evaluation.fig4 import run_fig4

from conftest import BENCH_SCALE, write_report


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4("mpeg", scale=BENCH_SCALE)


def test_fig4_regenerate(benchmark, fig4_result):
    """Time one full figure-4 sweep and print the paper's series."""
    result = benchmark.pedantic(
        lambda: run_fig4("mpeg", scale=BENCH_SCALE),
        rounds=1, iterations=1,
    )
    lines = [result.render(), ""]
    lines.append(
        f"average energy improvement: "
        f"{result.average_energy_improvement:.1f}% "
        "(paper: 28.0% average for mpeg)"
    )
    write_report("fig4", "\n".join(lines))


def test_fig4_shape_spm_accesses_lower(fig4_result):
    """CASA never chases scratchpad accesses (figure 4, observation 1)."""
    for row in fig4_result.rows:
        assert row.spm_access_pct <= 100.0 + 1e-9


def test_fig4_shape_icache_accesses_higher(fig4_result):
    """Correspondingly, CASA leaves more fetches on the cache path."""
    for row in fig4_result.rows:
        assert row.icache_access_pct >= 100.0 - 1e-9


def test_fig4_shape_energy_wins_on_average(fig4_result):
    """CASA's average energy across the sweep beats Steinke's."""
    assert fig4_result.average_energy_improvement > 0.0


def test_fig4_shape_big_spm_reduces_misses(fig4_result):
    """At the largest scratchpad CASA removes a large share of misses."""
    last = fig4_result.rows[-1]
    assert last.icache_miss_pct < 90.0
