"""Ablation A: exact ILP vs. greedy CASA vs. solver machinery timing.

Not in the paper — quantifies what the exact ILP buys over a greedy
conflict-aware heuristic, and times the allocator itself (the paper
notes "less than a second" for CPLEX on up to 19.5 kB programs; the
pure-Python branch & bound should stay in the same ballpark).
"""

import pytest

from repro.core.annealing import AnnealingAllocator
from repro.core.casa import CasaAllocator
from repro.core.greedy_allocator import GreedyCasaAllocator
from repro.utils.tables import format_table

from conftest import write_report

SPM_SIZES = (128, 256, 512, 1024)


@pytest.fixture(scope="module")
def comparison(mpeg_bench):
    rows = []
    for size in SPM_SIZES:
        model = mpeg_bench.spm_energy_model(size)
        graph = mpeg_bench.conflict_graph
        exact = CasaAllocator().allocate(graph, size, model)
        greedy = GreedyCasaAllocator().allocate(graph, size, model)
        annealed = AnnealingAllocator().allocate(graph, size, model)
        exact_sim = mpeg_bench.evaluate_spm(exact, size)
        greedy_sim = mpeg_bench.evaluate_spm(greedy, size)
        rows.append((size, exact, greedy, annealed, exact_sim,
                     greedy_sim))
    return rows


def test_ablation_report(benchmark, comparison):
    benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    headers = ["SPM", "ILP pred uJ", "greedy pred uJ",
               "annealing pred uJ", "ILP sim uJ", "greedy sim uJ",
               "B&B nodes"]
    table_rows = []
    for size, exact, greedy, annealed, exact_sim, greedy_sim \
            in comparison:
        table_rows.append([
            f"{size}B",
            f"{exact.predicted_energy / 1e3:.2f}",
            f"{greedy.predicted_energy / 1e3:.2f}",
            f"{annealed.predicted_energy / 1e3:.2f}",
            f"{exact_sim.energy.total / 1e3:.2f}",
            f"{greedy_sim.energy.total / 1e3:.2f}",
            exact.solver_nodes,
        ])
    write_report(
        "ablation_solvers",
        format_table(headers, table_rows,
                     title="Ablation A - exact ILP vs. greedy vs. "
                           "annealing (mpeg)"),
    )


def test_ilp_never_worse_than_greedy_under_model(comparison):
    for _, exact, greedy, _, _, _ in comparison:
        assert exact.predicted_energy <= greedy.predicted_energy + 1e-6


def test_ilp_never_worse_than_annealing_under_model(comparison):
    for _, exact, _, annealed, _, _ in comparison:
        assert exact.predicted_energy <= \
            annealed.predicted_energy + 1e-6


def test_ilp_solver_speed(benchmark, mpeg_bench):
    """Time one CASA ILP solve on the mpeg conflict graph (paper:
    'less than a second' with CPLEX)."""
    graph = mpeg_bench.conflict_graph
    model = mpeg_bench.spm_energy_model(512)
    allocator = CasaAllocator()
    result = benchmark.pedantic(
        lambda: allocator.allocate(graph, 512, model),
        rounds=3, iterations=1,
    )
    assert result.predicted_energy is not None


def test_greedy_solver_speed(benchmark, mpeg_bench):
    graph = mpeg_bench.conflict_graph
    model = mpeg_bench.spm_energy_model(512)
    allocator = GreedyCasaAllocator()
    benchmark.pedantic(
        lambda: allocator.allocate(graph, 512, model),
        rounds=3, iterations=1,
    )
