"""Benchmark: regenerate figure 5 (scratchpad+CASA vs. loop cache+Ross).

Paper series (percent of the loop-cache system = 100): local-memory
accesses, I-cache accesses, I-cache misses, energy, over sizes
128-1024 B.  Expected shape: at small sizes the loop cache is
competitive; as the size grows it saturates at its 4-region limit while
the scratchpad keeps absorbing objects, so the scratchpad's I-cache
misses and energy drop well below — a 26 % mpeg average in the paper.
"""

import pytest

from repro.evaluation.fig5 import run_fig5

from conftest import BENCH_SCALE, write_report


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5("mpeg", scale=BENCH_SCALE)


def test_fig5_regenerate(benchmark, fig5_result):
    """Time one full figure-5 sweep and print the paper's series."""
    result = benchmark.pedantic(
        lambda: run_fig5("mpeg", scale=BENCH_SCALE),
        rounds=1, iterations=1,
    )
    lines = [result.render(), ""]
    lines.append(
        f"average energy improvement: "
        f"{result.average_energy_improvement:.1f}% "
        "(paper: 26.0% average for mpeg)"
    )
    write_report("fig5", "\n".join(lines))


def test_fig5_loop_cache_region_limit(fig5_result):
    """Ross can never preload more than 4 regions at any size."""
    for row in fig5_result.rows:
        assert len(row.ross.allocation.loop_regions) <= 4


def test_fig5_scratchpad_object_count_grows(fig5_result):
    """The scratchpad keeps accepting objects as its size grows."""
    counts = [len(r.casa.allocation.spm_resident)
              for r in fig5_result.rows]
    assert counts[-1] > counts[0]
    assert counts[-1] > 4  # beyond any loop-cache region table


def test_fig5_energy_advantage_grows(fig5_result):
    """The scratchpad's energy advantage widens with size (the
    saturation effect the paper highlights)."""
    improvements = [100.0 - row.energy_pct for row in fig5_result.rows]
    assert improvements[-1] > improvements[0]
    assert improvements[-1] > 0.0


def test_fig5_misses_drop_below_loop_cache(fig5_result):
    last = fig5_result.rows[-1]
    assert last.icache_miss_pct < 100.0
