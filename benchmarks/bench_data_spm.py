"""Extension benchmark: data-side scratchpad allocation.

The second half of the paper's future work ("preloading of data"): the
unchanged CASA ILP on the data-object conflict graph of the adpcm and
g721 models, swept over data-scratchpad sizes, against the Steinke
access-count baseline.
"""

import pytest

from repro.data import DataHierarchyConfig, DataWorkbench
from repro.memory.cache import CacheConfig
from repro.utils.tables import format_table
from repro.workloads import get_workload
from repro.workloads.dataspecs import get_data_spec

from conftest import BENCH_SCALE, write_report

DSPM_SIZES = (64, 128, 256, 512)


def make_bench(workload_name: str, dspm_size: int) -> DataWorkbench:
    workload = get_workload(workload_name, scale=min(BENCH_SCALE, 0.5))
    return DataWorkbench(
        workload.program,
        get_data_spec(workload_name),
        DataHierarchyConfig(
            cache=CacheConfig(size=256, line_size=16, associativity=1),
            spm_size=dspm_size,
        ),
    )


@pytest.fixture(scope="module")
def data_rows():
    rows = []
    for workload_name in ("adpcm", "g721"):
        for size in DSPM_SIZES:
            bench = make_bench(workload_name, size)
            casa = bench.run_casa()
            steinke = bench.run_steinke()
            rows.append((workload_name, size, casa, steinke))
    return rows


def test_data_spm_report(benchmark, data_rows):
    benchmark.pedantic(
        lambda: make_bench("adpcm", 128).run_casa(),
        rounds=1, iterations=1,
    )
    table = []
    for workload_name, size, casa, steinke in data_rows:
        table.append([
            workload_name, f"{size}B",
            f"{casa.energy_nj / 1e3:.2f}",
            f"{steinke.energy_nj / 1e3:.2f}",
            ",".join(sorted(casa.allocation.spm_resident)) or "-",
        ])
    write_report(
        "data_spm",
        format_table(
            ["workload", "D-SPM", "CASA uJ", "Steinke uJ",
             "CASA residents"],
            table,
            title="Extension - data-side scratchpad allocation",
        ),
    )


def test_casa_never_much_worse_than_steinke_on_data(data_rows):
    """CASA is optimal under its *model*; after re-simulation the
    conflict-redistribution gap can cost a few percent (the same
    phenomenon behind the paper's own -4.2 % / -2.0 % table entries)."""
    for _, _, casa, steinke in data_rows:
        assert casa.energy_nj <= steinke.energy_nj * 1.05


def test_bigger_dspm_never_hurts(data_rows):
    for workload_name in ("adpcm", "g721"):
        energies = [casa.energy_nj for w, _, casa, _ in data_rows
                    if w == workload_name]
        for small, large in zip(energies, energies[1:]):
            assert large <= small * 1.001


def test_identities_hold(data_rows):
    for _, _, casa, steinke in data_rows:
        assert casa.report.check_identities()
        assert steinke.report.check_identities()
