"""Architecture benchmark: spending silicon on cache vs. scratchpad.

The design question the paper's architecture poses: for a fixed
on-chip area budget, what split between I-cache and CASA-managed
scratchpad minimises instruction-memory energy?  Expected shape on a
thrashing workload: the optimum is a *mixed* configuration — a smaller
cache plus a scratchpad beats spending the whole budget on the cache
(the paper's architectural premise).
"""

import pytest

from repro.evaluation.dse import explore, render_design_points

from conftest import BENCH_SCALE, write_report

AREA_BUDGET = 30_000.0


@pytest.fixture(scope="module")
def design_points():
    return explore("adpcm", area_budget=AREA_BUDGET,
                   scale=min(BENCH_SCALE, 0.5))


def test_dse_report(benchmark, design_points):
    benchmark.pedantic(lambda: design_points, rounds=1, iterations=1)
    lines = [render_design_points(design_points, top=8)]
    best = design_points[0]
    pure = min((p for p in design_points if p.spm_size == 0),
               key=lambda p: p.energy)
    lines.append(
        f"\nbest split: {best.cache_size}B cache + {best.spm_size}B "
        f"SPM ({best.energy / 1e3:.2f} uJ) vs best cache-only "
        f"{pure.cache_size}B ({pure.energy / 1e3:.2f} uJ): "
        f"{(1 - best.energy / pure.energy) * 100:.1f}% saved"
    )
    write_report("dse", "\n".join(lines))


def test_mixed_configuration_wins(design_points):
    best = design_points[0]
    assert best.spm_size > 0


def test_all_points_within_budget(design_points):
    for point in design_points:
        assert point.area <= AREA_BUDGET
