"""Methodology benchmark: robustness to the profiling input.

CASA is profile-driven ("for a given input data set", section 3.4), so
the classic threat is over-fitting: does an allocation chosen from one
input's profile still pay off on a different input?  The workloads'
probabilistic branches model input-dependence; we profile with seed 0,
allocate, and then replay executions driven by different seeds.
"""

import pytest

from repro.energy.model import build_energy_model, compute_energy
from repro.engine import make_workbench
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.program.executor import execute_program
from repro.traces.layout import LinkedImage
from repro.utils.tables import format_table

from conftest import BENCH_SCALE, write_report

SPM_SIZE = 256
SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def cross_input_rows():
    workload, bench = make_workbench("g721", min(BENCH_SCALE, 0.5))
    allocation = bench.run_casa(SPM_SIZE).allocation

    hierarchy = HierarchyConfig(cache=bench.config.cache,
                                spm_size=SPM_SIZE)
    model = build_energy_model(hierarchy)
    baseline_config = HierarchyConfig(cache=bench.config.cache)
    baseline_model = build_energy_model(baseline_config)

    image = LinkedImage(
        bench.program, bench.memory_objects,
        spm_resident=allocation.spm_resident, spm_size=SPM_SIZE,
    )
    baseline_image = LinkedImage(bench.program, bench.memory_objects)

    rows = []
    for seed in (0,) + SEEDS:
        execution = execute_program(bench.program, seed=seed)
        with_spm = compute_energy(
            simulate(image, hierarchy, execution.block_sequence),
            model,
        ).total
        without = compute_energy(
            simulate(baseline_image, baseline_config,
                     execution.block_sequence),
            baseline_model,
        ).total
        rows.append((seed, without, with_spm))
    return rows


def test_cross_input_report(benchmark, cross_input_rows):
    benchmark.pedantic(lambda: cross_input_rows, rounds=1,
                       iterations=1)
    table = []
    for seed, without, with_spm in cross_input_rows:
        label = "profiling input" if seed == 0 else f"input seed {seed}"
        table.append([
            label, f"{without / 1e3:.2f}", f"{with_spm / 1e3:.2f}",
            f"{(1 - with_spm / without) * 100:.1f}",
        ])
    write_report(
        "cross_input",
        format_table(
            ["input", "cache-only uJ", "CASA (seed-0 profile) uJ",
             "saving %"],
            table,
            title=f"Methodology - profile robustness (g721, "
                  f"{SPM_SIZE} B SPM, allocation frozen from seed 0)",
        ),
    )


def test_allocation_generalises_across_inputs(cross_input_rows):
    """The frozen allocation must keep saving energy on unseen inputs
    (hot loops dominate; input-dependence only modulates them)."""
    for seed, without, with_spm in cross_input_rows:
        assert with_spm < without, f"seed {seed}"


def test_savings_stable_within_band(cross_input_rows):
    savings = [
        (1 - with_spm / without) * 100
        for _, without, with_spm in cross_input_rows
    ]
    reference = savings[0]
    for saving in savings[1:]:
        assert abs(saving - reference) < 20.0
