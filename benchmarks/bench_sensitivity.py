"""Sensitivity studies: cache geometry and replacement policy.

Not a paper exhibit — these sweeps probe how robust CASA's advantage is
to the parameters the paper holds fixed (direct-mapped, 16 B lines,
LRU-irrelevant):

* **associativity**: more ways absorb conflicts in hardware, shrinking
  the miss pool CASA feeds on — the gap to Steinke should narrow;
* **line size**: longer lines change the padding overhead and the
  miss/hit energy ratio;
* **replacement policy**: the conflict graph definition is
  policy-agnostic (section 3.3); the flow must work unchanged for
  FIFO/random.
"""

import pytest

from repro.engine import make_workbench
from repro.memory.cache import CacheConfig
from repro.traces.tracegen import TraceGenConfig
from repro.utils.tables import format_table

from conftest import BENCH_SCALE, write_report

SPM_SIZE = 128


def run_config(cache: CacheConfig):
    _, bench = make_workbench(
        "adpcm", min(BENCH_SCALE, 0.5),
        cache=cache,
        tracegen=TraceGenConfig(line_size=cache.line_size,
                                max_trace_size=64),
    )
    casa = bench.run_casa(SPM_SIZE)
    steinke = bench.run_steinke(SPM_SIZE)
    improvement = (1 - casa.energy.total / steinke.energy.total) * 100
    return casa, steinke, improvement


@pytest.fixture(scope="module")
def associativity_sweep():
    return {
        ways: run_config(CacheConfig(size=128, line_size=16,
                                     associativity=ways))
        for ways in (1, 2, 4)
    }


def test_sensitivity_report(benchmark, associativity_sweep):
    benchmark.pedantic(
        lambda: run_config(CacheConfig(size=128, line_size=16,
                                       associativity=1)),
        rounds=1, iterations=1,
    )
    rows = []
    for ways, (casa, steinke, improvement) in \
            associativity_sweep.items():
        rows.append([
            f"{ways}-way", f"{casa.energy.total / 1e3:.2f}",
            f"{steinke.energy.total / 1e3:.2f}",
            casa.report.cache_misses, f"{improvement:.1f}",
        ])
    for line_size in (8, 32):
        casa, steinke, improvement = run_config(
            CacheConfig(size=128, line_size=line_size, associativity=1)
        )
        rows.append([
            f"DM/{line_size}B-line", f"{casa.energy.total / 1e3:.2f}",
            f"{steinke.energy.total / 1e3:.2f}",
            casa.report.cache_misses, f"{improvement:.1f}",
        ])
    for policy in ("fifo", "random"):
        casa, steinke, improvement = run_config(
            CacheConfig(size=128, line_size=16, associativity=2,
                        policy=policy)
        )
        rows.append([
            f"2-way/{policy}", f"{casa.energy.total / 1e3:.2f}",
            f"{steinke.energy.total / 1e3:.2f}",
            casa.report.cache_misses, f"{improvement:.1f}",
        ])
    write_report(
        "sensitivity",
        format_table(
            ["cache config", "CASA uJ", "Steinke uJ", "CASA misses",
             "improvement %"],
            rows,
            title="Sensitivity - cache geometry/policy (adpcm, "
                  f"{SPM_SIZE} B SPM)",
        ),
    )


def test_technology_scaling_report(benchmark):
    """Does the CASA advantage survive at newer process nodes?

    Off-chip energy shrinks slower than on-chip energy, so misses
    become relatively *more* expensive — the advantage should persist
    or grow.
    """
    from repro.energy.model import build_energy_model, compute_energy
    from repro.energy.technology import TechnologyNode
    from repro.memory.hierarchy import HierarchyConfig

    workload, bench = make_workbench(
        "adpcm", min(BENCH_SCALE, 0.5),
        tracegen=TraceGenConfig(line_size=16, max_trace_size=64),
    )
    casa = bench.run_casa(SPM_SIZE)
    steinke = bench.run_steinke(SPM_SIZE)
    benchmark.pedantic(lambda: casa, rounds=1, iterations=1)

    rows = []
    hierarchy = HierarchyConfig(cache=workload.cache,
                                spm_size=SPM_SIZE)
    for node in TechnologyNode:
        model = build_energy_model(hierarchy, node)
        casa_energy = compute_energy(casa.report, model).total
        steinke_energy = compute_energy(steinke.report, model).total
        improvement = (1 - casa_energy / steinke_energy) * 100
        rows.append([
            node.value, f"{casa_energy / 1e3:.2f}",
            f"{steinke_energy / 1e3:.2f}", f"{improvement:.1f}",
        ])
        assert improvement > 0.0
    write_report(
        "technology",
        format_table(
            ["node", "CASA uJ", "Steinke uJ", "improvement %"],
            rows,
            title="Sensitivity - technology scaling (adpcm, same "
                  "event counts, re-priced)",
        ),
    )


def test_works_for_every_associativity(associativity_sweep):
    for ways, (casa, _, _) in associativity_sweep.items():
        assert casa.report.check_identities()


def test_associativity_changes_behaviour(associativity_sweep):
    """Associativity must influence the measured misses.  (It need not
    reduce them: a thrashing working set larger than the cache is the
    textbook case where LRU misses *rise* with associativity.)"""
    misses = {
        ways: steinke.report.cache_misses
        for ways, (_, steinke, _) in associativity_sweep.items()
    }
    assert len(set(misses.values())) > 1
    assert all(count > 0 for count in misses.values())
