"""Microbenchmarks of the substrate: cache simulator and executor.

These time the two inner loops everything else is built on, so
regressions in the hot paths are visible independently of the
figure-level numbers.
"""

import pytest

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import HierarchyConfig, simulate
from repro.program.executor import execute_program
from repro.workloads import get_workload
from repro.traces.layout import LinkedImage
from repro.traces.tracegen import TraceGenConfig, generate_traces


def test_cache_access_throughput(benchmark):
    """Raw line-probe throughput of the attributed cache."""
    cache = Cache(CacheConfig(size=2048, line_size=16, associativity=1))
    lines = [(i * 7) % 400 for i in range(10_000)]

    def run():
        for line in lines:
            cache.access_line(line, "M")

    benchmark(run)


def test_executor_throughput(benchmark):
    """CFG execution speed on the g721 workload."""
    program = get_workload("g721", scale=0.2).program
    benchmark.pedantic(
        lambda: execute_program(program), rounds=3, iterations=1,
    )


def test_hierarchy_replay_throughput(benchmark):
    """Block-sequence replay through fetch plans + cache."""
    workload = get_workload("g721", scale=0.2)
    execution = execute_program(workload.program)
    mos = generate_traces(
        workload.program, execution.profile,
        TraceGenConfig(line_size=16, max_trace_size=128),
    )
    image = LinkedImage(workload.program, mos)
    config = HierarchyConfig(cache=workload.cache)

    benchmark.pedantic(
        lambda: simulate(image, config, execution.block_sequence),
        rounds=3, iterations=1,
    )
