"""Extension benchmark: scratchpad overlay (the paper's future work).

"We intend to extend the approach by considering ... dynamic copying
(overlay) of memory objects on the scratchpad" (section 7).  On a
phased workload (the jpeg model: colour conversion -> DCT/quantisation
-> entropy coding) the overlay ILP re-loads the scratchpad at each
phase boundary, paying explicit copy energy — and beats the best
*static* allocation whenever the per-phase working sets differ.
"""

import pytest

from repro.engine import make_workbench
from repro.utils.tables import format_table

from conftest import BENCH_SCALE, write_report

SPM_SIZES = (128, 256, 512)


@pytest.fixture(scope="module")
def jpeg_bench():
    return make_workbench("jpeg", BENCH_SCALE)[1]


@pytest.fixture(scope="module")
def overlay_rows(jpeg_bench):
    rows = []
    for size in SPM_SIZES:
        static = jpeg_bench.run_casa(size)
        overlay = jpeg_bench.run_overlay(size)
        rows.append((size, static, overlay))
    return rows


def test_overlay_report(benchmark, jpeg_bench, overlay_rows):
    benchmark.pedantic(
        lambda: jpeg_bench.run_overlay(SPM_SIZES[0]),
        rounds=1, iterations=1,
    )
    headers = ["SPM", "static CASA uJ", "overlay uJ", "copy words",
               "copy uJ", "gain %"]
    table_rows = []
    for size, static, overlay in overlay_rows:
        gain = (1 - overlay.energy.total / static.energy.total) * 100
        table_rows.append([
            f"{size}B",
            f"{static.energy.total / 1e3:.2f}",
            f"{overlay.energy.total / 1e3:.2f}",
            overlay.report.overlay_copy_words,
            f"{overlay.energy.overlay_copies / 1e3:.2f}",
            f"{gain:.1f}",
        ])
    write_report(
        "overlay",
        format_table(headers, table_rows,
                     title="Extension - scratchpad overlay on the "
                           "phased jpeg workload"),
    )


def test_overlay_never_loses_to_static(overlay_rows):
    """The overlay ILP contains every static allocation as a feasible
    point, so (up to model/simulation noise) it should not lose."""
    for _, static, overlay in overlay_rows:
        assert overlay.energy.total <= static.energy.total * 1.05


def test_overlay_wins_at_small_sizes(overlay_rows):
    """When the scratchpad cannot hold all phases' working sets at
    once, swapping wins decisively."""
    size, static, overlay = overlay_rows[0]
    assert overlay.energy.total < static.energy.total * 0.95


def test_copy_energy_smaller_than_savings(overlay_rows):
    for _, static, overlay in overlay_rows:
        saving = static.energy.total - overlay.energy.total
        if saving > 0:
            assert overlay.energy.overlay_copies < \
                static.energy.total
