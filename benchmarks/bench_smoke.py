"""Engine smoke check: one tiny design point per exhibit, cold and warm.

Not a paper exhibit — this is the cheap end-to-end proof that the
experiment engine's artifact cache works the way the exhibits rely on:
each exhibit's algorithm pairing is evaluated once against an empty
on-disk cache (cold) and once more through a *fresh* store on the same
directory (warm, so the in-memory tier cannot help).  The warm run must
perform zero profiling executions and zero baseline cache simulations,
and must reproduce the cold energies exactly.

Also the regression gate: ``repro bench record`` + ``repro bench
compare`` run against the committed seed baseline
(``benchmarks/baselines/smoke.jsonl``), and the disabled event-hook
cost in the cache probe path is bounded below 2%.

Runs in seconds on the ``tiny`` workload; wired into ``make test`` via
``make bench-smoke``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.engine import (
    ArtifactStore,
    PointSpec,
    RunRecord,
    map_points,
    set_default_store,
)
from repro.obs.metrics import MetricsRegistry, inc, set_registry
from repro.obs.trace import TraceCollector, set_collector, span
from repro.resilience.faults import FaultPlan, maybe_inject, \
    set_fault_plan

#: The committed seed baseline ``make bench-smoke`` gates against.
BASELINE_HISTORY = Path(__file__).resolve().parent / "baselines" \
    / "smoke.jsonl"

SMOKE_SCALE = 0.2

#: One minimal design-point set per exhibit family.
EXHIBIT_POINTS = {
    "fig4": [PointSpec("tiny", 128, algorithm, scale=SMOKE_SCALE)
             for algorithm in ("casa", "steinke")],
    "fig5": [PointSpec("tiny", 128, algorithm, scale=SMOKE_SCALE)
             for algorithm in ("casa", "ross")],
    "table1": [PointSpec("tiny", 64, algorithm, scale=SMOKE_SCALE)
               for algorithm in ("casa", "steinke", "ross")],
    "dse": [PointSpec("tiny", 0, "baseline", scale=SMOKE_SCALE)],
}


@pytest.mark.parametrize("exhibit", sorted(EXHIBIT_POINTS))
def test_exhibit_cold_then_warm(exhibit, tmp_path):
    points = EXHIBIT_POINTS[exhibit]
    cache_dir = tmp_path / "cache"
    previous = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        cold = RunRecord()
        cold_results = map_points(points, record=cold)
        assert cold.computed("execution") == 1
        assert cold.computed("baseline") == 1

        # A fresh store on the same directory: the memory tier is gone,
        # so every warm hit below is served by the on-disk cache.
        set_default_store(ArtifactStore(cache_dir=cache_dir))
        warm = RunRecord()
        warm_results = map_points(points, record=warm)

        for stage in ("execution", "trace", "baseline", "graph"):
            assert warm.computed(stage) == 0, stage
            assert warm.hits(stage) == 1, stage
        cached_allocations = sum(
            1 for point in points if point.algorithm != "baseline"
        )
        assert warm.computed("result") == 0
        assert warm.hits("result") == cached_allocations

        assert [r.energy.total for r in warm_results] \
            == [r.energy.total for r in cold_results]
    finally:
        set_default_store(previous)


class _CountingRegistry(MetricsRegistry):
    """Registry that counts how many metric operations reach it."""

    def __init__(self) -> None:
        super().__init__()
        self.operations = 0

    def _get(self, name, factory):
        self.operations += 1
        return super()._get(name, factory)


def _observed_run(points, cache_dir):
    """One fully observed run; returns (record, collector, registry)."""
    collector = TraceCollector()
    registry = _CountingRegistry()
    previous_store = set_default_store(ArtifactStore(cache_dir=cache_dir))
    previous_collector = set_collector(collector)
    previous_registry = set_registry(registry)
    try:
        record = RunRecord()
        map_points(points, record=record)
    finally:
        set_default_store(previous_store)
        set_collector(previous_collector)
        set_registry(previous_registry)
    return record, collector, registry


def test_bench_run_emits_spans_and_metrics(tmp_path):
    """The observability layer sees the bench workload end to end."""
    _, collector, registry = _observed_run(
        EXHIBIT_POINTS["table1"], tmp_path / "cache"
    )
    names = set(collector.span_names())
    assert "point.evaluate" in names
    assert "engine.resolve.result" in names
    assert "engine.resolve.workbench" in names
    assert "ilp.solve" in names
    assert "sim.hierarchy" in names
    assert "trace.generate" in names
    assert "graph.build" in names
    point_count = collector.span_names().count("point.evaluate")
    assert point_count == len(EXHIBIT_POINTS["table1"])
    assert registry.value("ilp.solves") >= 1
    assert registry.value("graph.builds") == 1
    assert registry.value("sim.cache_accesses") > 0


def _disabled_call_cost(iterations: int = 20_000) -> tuple[float, float]:
    """Per-call seconds of a disabled span() and a disabled inc()."""
    started = time.perf_counter()
    for _ in range(iterations):
        with span("overhead.probe"):
            pass
    span_cost = (time.perf_counter() - started) / iterations
    started = time.perf_counter()
    for _ in range(iterations):
        inc("overhead.probe")
    inc_cost = (time.perf_counter() - started) / iterations
    return span_cost, inc_cost


def test_disabled_instrumentation_overhead_below_two_percent(tmp_path):
    """Acceptance: disabled-by-default instrumentation costs < 2%.

    An observed warm run counts exactly how many span and metric
    operations the bench workload performs; the measured per-call cost
    of the disabled fast path (one global read + comparison) bounds
    the total overhead a plain ``make bench-smoke`` run pays.  The
    warm run is the strict case — it is the fastest run with the
    highest instrumentation density per second of work.
    """
    points = EXHIBIT_POINTS["table1"]
    cache_dir = tmp_path / "cache"
    _observed_run(points, cache_dir)  # cold: populate the disk cache

    # Warm observed run: count the instrumented operations.
    _, collector, registry = _observed_run(points, cache_dir)
    span_count = len(collector.events())
    metric_operations = registry.operations

    # Warm *disabled* run: the wall time the bench actually pays.
    previous_store = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        started = time.perf_counter()
        map_points(points, record=RunRecord())
        wall = time.perf_counter() - started
    finally:
        set_default_store(previous_store)

    span_cost, inc_cost = _disabled_call_cost()
    overhead = span_count * span_cost + metric_operations * inc_cost
    assert overhead < 0.02 * wall, (
        f"disabled instrumentation overhead {overhead * 1e6:.0f} us "
        f"({span_count} spans, {metric_operations} metric ops) is not "
        f"< 2% of the {wall * 1e3:.1f} ms warm run"
    )


class _GuardProbe:
    """Mirrors the cache's bound-recorder guard (slot read + is-None)."""

    __slots__ = ("_recorder",)

    def __init__(self) -> None:
        self._recorder = None


def _disabled_hook_cost(iterations: int = 100_000) -> float:
    """Per-probe seconds of the disabled event-hook guard."""
    probe = _GuardProbe()
    sink = 0
    started = time.perf_counter()
    for _ in range(iterations):
        recorder = probe._recorder
        if recorder is not None:
            sink += 1
    cost = (time.perf_counter() - started) / iterations
    assert sink == 0
    return cost


def test_disabled_event_hook_overhead_below_two_percent(tmp_path):
    """Acceptance: the cache's event hooks cost < 2% when disabled.

    Every cache probe pays one bound-attribute read and one ``None``
    comparison when no recorder is installed.  An observed cold run
    counts the probes the bench workload performs; the measured
    per-probe guard cost then bounds the total hook overhead a plain
    (cold, event-recording off) run pays.  Cold is the strict case —
    it is the only kind of run that simulates at all.
    """
    points = EXHIBIT_POINTS["table1"]
    _, _, registry = _observed_run(points, tmp_path / "observed")
    probes = registry.value("sim.cache_accesses")
    assert probes > 0

    previous_store = set_default_store(
        ArtifactStore(cache_dir=tmp_path / "disabled")
    )
    try:
        started = time.perf_counter()
        map_points(points, record=RunRecord())
        wall = time.perf_counter() - started
    finally:
        set_default_store(previous_store)

    overhead = probes * _disabled_hook_cost()
    assert overhead < 0.02 * wall, (
        f"disabled event-hook overhead {overhead * 1e6:.0f} us "
        f"({probes:.0f} cache probes) is not < 2% of the "
        f"{wall * 1e3:.1f} ms cold run"
    )


class _CountingFaultPlan(FaultPlan):
    """Plan with no rules that counts how many sites consult it."""

    def __init__(self) -> None:
        super().__init__([])
        self.consultations = 0

    def match(self, site, attempt):
        """Count the call and never fire."""
        self.consultations += 1
        return None


def _disabled_inject_cost(iterations: int = 100_000) -> float:
    """Per-call seconds of maybe_inject() with no plan installed."""
    started = time.perf_counter()
    for _ in range(iterations):
        maybe_inject("store.read")
    return (time.perf_counter() - started) / iterations


def test_disabled_fault_injection_overhead_below_two_percent(tmp_path):
    """Acceptance: disabled fault-injection sites cost < 2%.

    A run under an empty counting plan measures how many times the
    bench workload actually reaches an injection site; the measured
    per-call cost of the disabled fast path (one global read + one
    ``None`` comparison) then bounds the overhead a plain, uninjected
    run pays for having the sites compiled in.
    """
    points = EXHIBIT_POINTS["table1"]
    cache_dir = tmp_path / "cache"
    plan = _CountingFaultPlan()
    previous_plan = set_fault_plan(plan)
    previous_store = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        map_points(points, record=RunRecord())
    finally:
        set_default_store(previous_store)
        set_fault_plan(previous_plan)
    sites_reached = plan.consultations
    assert sites_reached > 0

    previous_store = set_default_store(
        ArtifactStore(cache_dir=tmp_path / "disabled")
    )
    try:
        started = time.perf_counter()
        map_points(points, record=RunRecord())
        wall = time.perf_counter() - started
    finally:
        set_default_store(previous_store)

    overhead = sites_reached * _disabled_inject_cost()
    assert overhead < 0.02 * wall, (
        f"disabled fault-injection overhead {overhead * 1e6:.0f} us "
        f"({sites_reached} site consultations) is not < 2% of the "
        f"{wall * 1e3:.1f} ms run"
    )


def test_vector_backend_speedup_at_least_5x():
    """Acceptance: the vector kernel is ≥5× faster on a fig4 sweep.

    Times the simulation load of one figure-4 sweep (baseline image
    plus one scratchpad image per catalogued SPM size) through both
    backends — the same measurement ``repro bench record`` snapshots
    as ``kernel.wall.speedup``.  Stream compilation is charged to the
    kernel, once per layout, as the engine's ``stream`` artifact
    amortises it.
    """
    from repro.obs.history import measure_kernel_speedup

    metrics = measure_kernel_speedup()
    assert metrics["kernel.wall.speedup"] >= 5.0, metrics


def test_grid_replay_speedup_at_least_3x():
    """Acceptance: single-pass grid replay is ≥3× the per-point path.

    Times a constant-geometry cache axis (line 16, 32/64 sets, 1–8
    ways, all LRU) over the fig4-shaped image set through one
    :func:`simulate_grid` call per image versus one vector-backend
    replay per configuration with the compiled stream reused — the
    same measurement ``repro bench record`` snapshots as
    ``grid.wall.speedup``.  Best of two runs, so one scheduler hiccup
    cannot fail the gate.
    """
    from repro.obs.history import measure_grid_speedup

    metrics = measure_grid_speedup()
    if metrics["grid.wall.speedup"] < 3.0:
        metrics = max(metrics, measure_grid_speedup(),
                      key=lambda m: m["grid.wall.speedup"])
    assert metrics["grid.wall.speedup"] >= 3.0, metrics


def test_verify_kernel_smoke():
    """``repro verify-kernel`` passes on the smoke workload."""
    from repro.cli import main

    assert main(["verify-kernel", "--workloads", "tiny",
                 "--trials", "5", "--no-cache"]) == 0


def test_verify_grid_smoke():
    """``repro verify-grid`` passes on the smoke workload."""
    from repro.cli import main

    assert main(["verify-grid", "--workloads", "tiny",
                 "--no-cache"]) == 0


@pytest.mark.parametrize("workload", ["tiny", "adpcm"])
def test_policy_suite_opt_is_the_floor(workload):
    """The snapshotted Belady row never beats an online policy.

    ``repro bench record`` snapshots ``<workload>.policy.<name>.misses``
    for every deterministic policy at two ways; offline optimality
    means the ``opt`` row must be <= every other row, whatever the
    workload or seed.
    """
    from repro.obs.history import SUITE_POLICIES, \
        measure_policy_misses

    misses = measure_policy_misses(workload, scale=SMOKE_SCALE)
    floor = misses[f"{workload}.policy.opt.misses"]
    for policy in SUITE_POLICIES:
        assert floor <= misses[f"{workload}.policy.{policy}.misses"], \
            policy


@pytest.mark.parametrize("policy", ["lfu", "2q"])
def test_policy_sweep_stays_on_the_kernel(policy, tmp_path):
    """An LFU/2Q sweep under ``auto`` never leaves the vector kernel.

    Set-associative non-stack policies cannot join the single-pass
    scan, but their per-config replay is still vectorized: the grid
    counts them in ``sim.grid.per_config`` and ``sim.kernel.fallbacks``
    (reserved for reference-interpreter diversions) must stay zero.
    """
    from dataclasses import replace

    from repro.engine.grid import GridChunk
    from repro.workloads.registry import get_workload

    cache = replace(
        get_workload("tiny", scale=SMOKE_SCALE).cache,
        associativity=2, policy=policy,
    )
    registry = MetricsRegistry()
    previous_store = set_default_store(
        ArtifactStore(cache_dir=tmp_path / "cache")
    )
    previous_registry = set_registry(registry)
    try:
        map_points(
            [GridChunk(workload="tiny", spm_sizes=(64, 128),
                       algorithm="casa", scale=SMOKE_SCALE,
                       cache=cache, backend="auto")],
            record=RunRecord(),
        )
    finally:
        set_default_store(previous_store)
        set_registry(previous_registry)
    assert registry.value("sim.kernel.fallbacks") == 0


@pytest.mark.parametrize("policy", ["lfu", "2q"])
def test_grid_replays_policy_configs_without_leaving_kernel(policy):
    """A grid axis with a set-associative LFU/2Q member stays vector.

    The single-pass scan cannot cover non-stack policies, so the grid
    replays them one at a time — but on the vector kernel's per-set
    interpreters (``sim.grid.per_config``), never the reference
    interpreter (``sim.kernel.fallbacks`` stays zero).
    """
    from dataclasses import replace as dc_replace

    from repro.memory.cache import CacheConfig
    from repro.memory.hierarchy import HierarchyConfig
    from repro.memory.kernel import SweepGrid, compile_stream, \
        simulate_grid
    from repro.memory.kernel.verify import workload_images

    bench, images = workload_images("tiny", SMOKE_SCALE, 0)
    _, image, _ = images[0]
    stream = compile_stream(image, bench.block_sequence,
                            spm_base=bench.config.spm_base)
    axis = SweepGrid.of([
        HierarchyConfig(cache=CacheConfig(size=128, line_size=16,
                                          associativity=2,
                                          policy="lru")),
        HierarchyConfig(cache=dc_replace(
            bench.config.cache, associativity=2, policy=policy,
        )),
    ])
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    try:
        simulate_grid(stream, axis, spm_base=bench.config.spm_base)
    finally:
        set_registry(previous_registry)
    assert registry.value("sim.grid.per_config") == 1
    assert registry.value("sim.kernel.fallbacks") == 0


def test_bench_record_then_compare_gates_on_baseline(tmp_path):
    """``repro bench record`` + ``compare`` vs the committed baseline.

    Records a fresh suite snapshot through the CLI, then compares it
    against ``benchmarks/baselines/smoke.jsonl``: every deterministic
    metric must match the seed exactly, proving the whole
    profile/allocate/simulate pipeline still reproduces bit-identical
    numbers.
    """
    from repro.cli import main

    history = tmp_path / "history.jsonl"
    assert main(["bench", "record", "--history", str(history)]) == 0
    assert main(["bench", "compare", "--history", str(history),
                 "--baseline", str(BASELINE_HISTORY)]) == 0


def test_bench_compare_fails_on_deviation(tmp_path):
    """A deterministic metric drifting by any amount exits non-zero."""
    from repro.cli import main
    from repro.obs.history import load_history

    snapshot = load_history(BASELINE_HISTORY)[-1]
    payload = snapshot.as_json()
    key = "tiny.casa.energy_nj"
    assert key in payload["metrics"]
    payload["metrics"][key] += 0.001
    tampered = tmp_path / "tampered.jsonl"
    tampered.write_text(json.dumps(payload) + "\n")
    code = main(["bench", "compare", "--history", str(tampered),
                 "--baseline", str(BASELINE_HISTORY)])
    assert code == 1


class _CountingSink:
    """Progress sink that counts how many notes reach it."""

    def __init__(self) -> None:
        self.notes = 0

    def add_total(self, count):
        """Count the call."""
        self.notes += 1

    def unit_started(self, label):
        """Count the call."""
        self.notes += 1

    def unit_finished(self, label, seconds):
        """Count the call."""
        self.notes += 1

    def phase(self, name):
        """Count the call."""
        self.notes += 1

    def stage(self, name):
        """Count the call."""
        self.notes += 1


def _disabled_note_cost(iterations: int = 100_000) -> float:
    """Per-call seconds of the progress-note helpers with no sink."""
    from repro.obs.live import note_phase, note_unit_finished, \
        note_unit_started

    started = time.perf_counter()
    for _ in range(iterations):
        note_unit_started("probe")
        note_phase("probe")
        note_unit_finished("probe", 0.0)
    return (time.perf_counter() - started) / (3 * iterations)


def test_disabled_live_telemetry_overhead_below_two_percent(tmp_path):
    """Acceptance: disabled live-telemetry hooks cost < 2%.

    A run under a counting sink measures how many progress notes the
    bench workload emits; the measured per-call cost of the disabled
    fast path (one global read + one ``None`` comparison) then bounds
    the overhead a plain run (no ``--watch``/``--telemetry``) pays.
    The duration-histogram observations ride the already-bounded
    metrics fast path, so the note count is the live layer's entire
    disabled surface.
    """
    from repro.obs.live import set_progress_sink

    points = EXHIBIT_POINTS["table1"]
    cache_dir = tmp_path / "cache"
    _observed_run(points, cache_dir)  # cold: populate the disk cache

    sink = _CountingSink()
    previous_sink = set_progress_sink(sink)
    previous_store = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        map_points(points, record=RunRecord())
    finally:
        set_default_store(previous_store)
        set_progress_sink(previous_sink)
    notes = sink.notes
    assert notes > 0

    previous_store = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        started = time.perf_counter()
        map_points(points, record=RunRecord())
        wall = time.perf_counter() - started
    finally:
        set_default_store(previous_store)

    overhead = notes * _disabled_note_cost()
    assert overhead < 0.02 * wall, (
        f"disabled live-telemetry overhead {overhead * 1e6:.0f} us "
        f"({notes} progress notes) is not < 2% of the "
        f"{wall * 1e3:.1f} ms warm run"
    )


def _deterministic_metrics(registry):
    """A registry snapshot with the timing histograms removed."""
    return {
        name: data for name, data in registry.snapshot().items()
        if not name.endswith(".seconds")
    }


def test_watch_instrumented_run_metrics_bit_identical(tmp_path):
    """Acceptance: live consumers never change deterministic metrics.

    The same warm sweep runs once plain and once under the full live
    pipeline (progress bus, watch renderer into a sink stream,
    telemetry exporter, sampling profiler); every non-timing metric
    must match bit for bit, because live consumers only *read*
    snapshots.
    """
    import io

    from repro.obs.live import ProgressBus, TelemetryWriter, \
        WatchRenderer, set_progress_sink
    from repro.obs.profiler import SamplingProfiler

    points = EXHIBIT_POINTS["table1"]
    cache_dir = tmp_path / "cache"
    _observed_run(points, cache_dir)  # cold: populate the disk cache

    _, _, plain_registry = _observed_run(points, cache_dir)

    live_registry = MetricsRegistry()
    bus = ProgressBus(run_id="bench")
    watcher = WatchRenderer(bus, live_registry, stream=io.StringIO(),
                            interval=0.01)
    telemetry = TelemetryWriter(bus, str(tmp_path / "telemetry.jsonl"),
                                live_registry, interval=0.01)
    profiler = SamplingProfiler(interval=0.001)
    previous_store = set_default_store(ArtifactStore(cache_dir=cache_dir))
    previous_registry = set_registry(live_registry)
    previous_sink = set_progress_sink(bus)
    telemetry.start()
    watcher.start()
    profiler.start()
    try:
        map_points(points, record=RunRecord())
    finally:
        profiler.stop()
        watcher.stop()
        telemetry.stop()
        set_progress_sink(previous_sink)
        set_registry(previous_registry)
        set_default_store(previous_store)

    assert telemetry.snapshots_written >= 2
    assert _deterministic_metrics(live_registry) \
        == _deterministic_metrics(plain_registry)
