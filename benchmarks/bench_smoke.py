"""Engine smoke check: one tiny design point per exhibit, cold and warm.

Not a paper exhibit — this is the cheap end-to-end proof that the
experiment engine's artifact cache works the way the exhibits rely on:
each exhibit's algorithm pairing is evaluated once against an empty
on-disk cache (cold) and once more through a *fresh* store on the same
directory (warm, so the in-memory tier cannot help).  The warm run must
perform zero profiling executions and zero baseline cache simulations,
and must reproduce the cold energies exactly.

Runs in seconds on the ``tiny`` workload; wired into ``make test`` via
``make bench-smoke``.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    ArtifactStore,
    PointSpec,
    RunRecord,
    map_points,
    set_default_store,
)

SMOKE_SCALE = 0.2

#: One minimal design-point set per exhibit family.
EXHIBIT_POINTS = {
    "fig4": [PointSpec("tiny", 128, algorithm, scale=SMOKE_SCALE)
             for algorithm in ("casa", "steinke")],
    "fig5": [PointSpec("tiny", 128, algorithm, scale=SMOKE_SCALE)
             for algorithm in ("casa", "ross")],
    "table1": [PointSpec("tiny", 64, algorithm, scale=SMOKE_SCALE)
               for algorithm in ("casa", "steinke", "ross")],
    "dse": [PointSpec("tiny", 0, "baseline", scale=SMOKE_SCALE)],
}


@pytest.mark.parametrize("exhibit", sorted(EXHIBIT_POINTS))
def test_exhibit_cold_then_warm(exhibit, tmp_path):
    points = EXHIBIT_POINTS[exhibit]
    cache_dir = tmp_path / "cache"
    previous = set_default_store(ArtifactStore(cache_dir=cache_dir))
    try:
        cold = RunRecord()
        cold_results = map_points(points, record=cold)
        assert cold.computed("execution") == 1
        assert cold.computed("baseline") == 1

        # A fresh store on the same directory: the memory tier is gone,
        # so every warm hit below is served by the on-disk cache.
        set_default_store(ArtifactStore(cache_dir=cache_dir))
        warm = RunRecord()
        warm_results = map_points(points, record=warm)

        for stage in ("execution", "trace", "baseline", "graph"):
            assert warm.computed(stage) == 0, stage
            assert warm.hits(stage) == 1, stage
        cached_allocations = sum(
            1 for point in points if point.algorithm != "baseline"
        )
        assert warm.computed("result") == 0
        assert warm.hits("result") == cached_allocations

        assert [r.energy.total for r in warm_results] \
            == [r.energy.total for r in cold_results]
    finally:
        set_default_store(previous)
