"""Benchmark: regenerate table 1 (overall energy savings).

For adpcm (128 B cache), g721 (1 kB) and mpeg (2 kB), the paper lists
absolute energies of SP(CASA) / SP(Steinke) / LC(Ross) per scratchpad
size plus improvement percentages.  Paper averages: 29.0 / 8.2 / 28.0 %
vs. Steinke and 44.1 / 19.7 / 26.0 % vs. the loop cache; overall
21.1 % and 28.6 %.  The reproduction is checked for the *shape*: CASA
wins on average per benchmark and overall, with per-size noise allowed
(the paper itself has -4.2 % and -2.0 % entries).
"""

import pytest

from repro.evaluation.table1 import run_table1

from conftest import BENCH_SCALE, write_report


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(scale=BENCH_SCALE)


def test_table1_regenerate(benchmark, table1_result):
    """Time the full three-benchmark table and print it."""
    result = benchmark.pedantic(
        lambda: run_table1(scale=BENCH_SCALE), rounds=1, iterations=1,
    )
    lines = [result.render(), ""]
    lines.append(
        f"overall: {result.overall_vs_steinke:.1f}% vs. Steinke "
        "(paper: 21.1%), "
        f"{result.overall_vs_loop_cache:.1f}% vs. loop cache "
        "(paper: 28.6%)"
    )
    write_report("table1", "\n".join(lines))


def test_table1_casa_wins_overall(table1_result):
    assert table1_result.overall_vs_steinke > 0.0
    assert table1_result.overall_vs_loop_cache > 0.0


@pytest.mark.parametrize("benchmark_name", ["adpcm", "g721", "mpeg"])
def test_table1_per_benchmark_average_vs_steinke(table1_result,
                                                 benchmark_name):
    block = table1_result.benchmark(benchmark_name)
    assert block.average_vs_steinke > 0.0


@pytest.mark.parametrize("benchmark_name", ["adpcm", "g721", "mpeg"])
def test_table1_per_benchmark_average_vs_loop_cache(table1_result,
                                                    benchmark_name):
    block = table1_result.benchmark(benchmark_name)
    assert block.average_vs_loop_cache > 0.0


def test_table1_loop_cache_advantage_band(table1_result):
    """Paper abstract: 20-44 % average savings vs. loop caches; allow a
    generous band around it for the synthetic substrate."""
    overall = table1_result.overall_vs_loop_cache
    assert 10.0 <= overall <= 70.0
