"""Ablation B: the conflict term of the CASA objective.

Drops the edge terms from eq. 12 (``conflict_term=False``), reducing
CASA to a cache-blind fetch-count optimiser *with copy semantics*.
The gap between the two is exactly the value of modelling the cache —
the paper's contribution isolated from everything else.
"""

import pytest

from repro.core.casa import CasaAllocator, CasaConfig
from repro.utils.tables import format_table

from conftest import write_report

SPM_SIZES = (128, 256, 512, 1024)


@pytest.fixture(scope="module")
def ablation(mpeg_bench):
    rows = []
    for size in SPM_SIZES:
        model = mpeg_bench.spm_energy_model(size)
        graph = mpeg_bench.conflict_graph
        aware = CasaAllocator().allocate(graph, size, model)
        blind = CasaAllocator(
            CasaConfig(conflict_term=False)
        ).allocate(graph, size, model)
        aware_sim = mpeg_bench.evaluate_spm(aware, size)
        blind_sim = mpeg_bench.evaluate_spm(blind, size)
        rows.append((size, aware_sim, blind_sim))
    return rows


def test_conflict_term_report(benchmark, ablation):
    def regenerate():
        return ablation

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    headers = ["SPM", "conflict-aware uJ", "conflict-blind uJ",
               "aware misses", "blind misses", "gain %"]
    table_rows = []
    for size, aware, blind in ablation:
        gain = (1 - aware.energy.total / blind.energy.total) * 100
        table_rows.append([
            f"{size}B",
            f"{aware.energy.total / 1e3:.2f}",
            f"{blind.energy.total / 1e3:.2f}",
            aware.report.cache_misses,
            blind.report.cache_misses,
            f"{gain:.1f}",
        ])
    write_report(
        "ablation_conflict_term",
        format_table(headers, table_rows,
                     title="Ablation B - value of the conflict term "
                           "(mpeg)"),
    )


def test_conflict_awareness_helps_on_average(ablation):
    gains = [
        (1 - aware.energy.total / blind.energy.total) * 100
        for _, aware, blind in ablation
    ]
    assert sum(gains) / len(gains) > 0.0
