"""Extension benchmark: multiple scratchpads at one level (section 4).

Compares a single 512 B scratchpad against 2 x 256 B scratchpads with
the extended ILP.  Two smaller memories are individually cheaper per
access, so splitting a fixed byte budget can reduce energy further —
the effect the paper's extension enables.
"""

import pytest

from repro.core.casa import CasaAllocator
from repro.core.multi_spm import MultiScratchpadAllocator, ScratchpadSpec
from repro.utils.tables import format_table

from conftest import write_report


@pytest.fixture(scope="module")
def results(mpeg_bench):
    # The multi-SPM ILP doubles the binary count per object; restrict
    # it to the hottest objects (the cold tail is never allocated
    # anyway) so the pure-Python branch & bound stays fast.
    graph = mpeg_bench.conflict_graph.hottest(40)
    model = mpeg_bench.spm_energy_model(512)

    single = CasaAllocator().allocate(graph, 512, model)
    # equal capacities make this a hard partitioning instance; accept
    # a proven 1% gap so the benchmark stays fast
    split = MultiScratchpadAllocator([
        ScratchpadSpec("spm0", 256),
        ScratchpadSpec("spm1", 256),
    ], relative_gap=0.01).allocate(graph, energy=model)
    return single, split


def test_multi_spm_report(benchmark, mpeg_bench, results):
    single, split = results
    graph = mpeg_bench.conflict_graph.hottest(40)
    model = mpeg_bench.spm_energy_model(512)

    def solve_split():
        return MultiScratchpadAllocator([
            ScratchpadSpec("spm0", 256),
            ScratchpadSpec("spm1", 256),
        ], relative_gap=0.01).allocate(graph, energy=model)

    benchmark.pedantic(solve_split, rounds=1, iterations=1)

    headers = ["configuration", "objects", "predicted uJ", "B&B nodes"]
    rows = [
        ["1 x 512B", len(single.spm_resident),
         f"{single.predicted_energy / 1e3:.2f}", single.solver_nodes],
        ["2 x 256B", len(split.all_residents),
         f"{split.predicted_energy / 1e3:.2f}", split.solver_nodes],
    ]
    write_report(
        "multi_spm",
        format_table(headers, rows,
                     title="Extension - multi-scratchpad ILP (mpeg, "
                           "512 B total)"),
    )


def test_split_budget_not_worse(results):
    """Same byte budget, finer granularity: the extended ILP should
    find an assignment at least as good under its own model."""
    single, split = results
    assert split.predicted_energy <= single.predicted_energy * 1.02


def test_split_respects_both_capacities(mpeg_bench, results):
    _, split = results
    graph = mpeg_bench.conflict_graph.hottest(40)
    for spm in ("spm0", "spm1"):
        used = sum(graph.node(n).size for n in split.residents_of(spm))
        assert used <= 256
