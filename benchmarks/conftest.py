"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's exhibits and prints the
same rows/series the paper reports (run with ``-s`` to see them inline;
they are also written to ``benchmarks/out/``).

``REPRO_BENCH_SCALE`` (default 1.0) multiplies the workloads'
outer-loop trip counts; smaller values give proportionally faster runs
with the same qualitative shapes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Workload trip-count multiplier for all benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_report(name: str, text: str) -> None:
    """Print an exhibit and persist it under benchmarks/out/."""
    print()
    print(text)
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """The configured workload scale."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def mpeg_bench():
    """Profiled mpeg workbench at the benchmark scale."""
    from repro.engine import make_workbench
    return make_workbench("mpeg", BENCH_SCALE)[1]
