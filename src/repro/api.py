"""The one-stop :class:`Session` facade over the whole pipeline.

Every experiment in this repository walks the same figure-3 flow —
profile the program, form traces, simulate the baseline cache, build
the conflict graph, allocate, re-simulate — but historically each
consumer assembled it from scattered pieces (``Workbench`` +
``WorkbenchConfig`` + ``TraceGenConfig`` + per-allocator classes).
:class:`Session` packages the flow behind four verbs::

    from repro import Session

    session = Session("mpeg", spm_size=256)
    report = session.simulate()             # baseline cache statistics
    graph = session.conflict_graph()        # the paper's G = (X, E)
    decision = session.allocate("casa")     # just the decision
    result = session.evaluate("casa")       # decision + energy
    curve = session.sweep("casa")           # whole capacity axis

Sessions are cheap to create: all profiling work is deferred to the
first call that needs it and resolved through the engine's artifact
store, so repeated sessions over the same configuration recompute
nothing.  The ``backend`` knob selects the simulation backend
(``reference`` | ``vector`` | ``auto``) for every simulation the
session runs.

The older entry points (:class:`repro.core.pipeline.Workbench`,
:func:`repro.engine.runner.make_workbench`, the allocator classes)
remain public — :class:`Session` is sugar over them, not a
replacement.
"""

from __future__ import annotations

from typing import Any

from repro.core import make_allocator
from repro.core.allocation import AllocationContext
from repro.core.conflict_graph import ConflictGraph
from repro.core.pipeline import (
    ExperimentResult,
    Workbench,
    WorkbenchConfig,
)
from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.stats import SimulationReport
from repro.program.program import Program
from repro.traces.tracegen import TraceGenConfig

#: Methods :meth:`Session.evaluate` accepts (``baseline`` = no
#: scratchpad, cache only).
EVALUATE_METHODS = ("baseline", "casa", "steinke", "greedy", "ross",
                    "anneal", "overlay")


class Session:
    """One workload + hierarchy configuration, end to end.

    Args:
        workload: a registered workload name (see
            :func:`repro.workloads.available_workloads`) or a
            :class:`~repro.program.program.Program` of your own.
        cache: I-cache configuration (defaults to the workload's paper
            configuration, or the default :class:`CacheConfig` for a
            raw program).
        spm_size: default scratchpad / loop-cache capacity in bytes
            for :meth:`allocate` and :meth:`evaluate` (defaults to the
            workload's smallest table-1 size; a raw program has no
            default, so those calls then need an explicit size).
        scale: outer-loop trip-count multiplier.
        seed: executor seed for probabilistic branches.
        backend: simulation backend (``reference`` | ``vector`` |
            ``auto``; ``None`` defers to ``CASA_BACKEND``, then
            ``auto``).
        tracegen: trace-formation override (defaults to the cache's
            line size and the session's scratchpad capacity).
    """

    def __init__(
        self,
        workload: str | Program,
        cache: CacheConfig | None = None,
        spm_size: int | None = None,
        *,
        scale: float = 1.0,
        seed: int = 0,
        backend: str | None = None,
        tracegen: TraceGenConfig | None = None,
    ) -> None:
        self._workload_name = workload if isinstance(workload, str) \
            else None
        self._program = workload if isinstance(workload, Program) \
            else None
        self._cache = cache
        self._spm_size = spm_size
        self._scale = scale
        self._seed = seed
        self._backend = backend
        self._tracegen = tracegen
        self._bench: Workbench | None = None

    # -- lazy workbench -------------------------------------------------------

    @property
    def workbench(self) -> Workbench:
        """The profiled workbench behind this session (built lazily)."""
        if self._bench is None:
            if self._workload_name is not None:
                from repro.engine.runner import make_workbench

                workload, bench = make_workbench(
                    self._workload_name, self._scale, self._seed,
                    cache=self._cache, tracegen=self._tracegen,
                    backend=self._backend,
                )
                if self._spm_size is None:
                    self._spm_size = min(workload.spm_sizes)
                self._bench = bench
            else:
                cache = self._cache if self._cache is not None \
                    else CacheConfig()
                tracegen = self._tracegen or TraceGenConfig(
                    line_size=cache.line_size,
                    max_trace_size=self._spm_size or cache.size,
                )
                self._bench = Workbench(
                    self._program,
                    WorkbenchConfig(cache=cache, tracegen=tracegen,
                                    seed=self._seed,
                                    backend=self._backend),
                )
        return self._bench

    @property
    def spm_size(self) -> int | None:
        """The session's default scratchpad capacity in bytes."""
        if self._spm_size is None and self._workload_name is not None:
            self.workbench  # resolves the workload default
        return self._spm_size

    def _capacity(self, spm_size: int | None) -> int:
        size = spm_size if spm_size is not None else self.spm_size
        if size is None:
            raise ConfigurationError(
                "this session has no default scratchpad size; pass "
                "spm_size= to the call (or to Session())"
            )
        return size

    # -- the four verbs -------------------------------------------------------

    def simulate(self) -> SimulationReport:
        """Statistics of the baseline (cache-only) profiling run."""
        return self.workbench.baseline_report

    def conflict_graph(self) -> ConflictGraph:
        """The profiled conflict graph G = (X, E) of section 3.3."""
        return self.workbench.conflict_graph

    def allocate(self, method: str = "casa",
                 spm_size: int | None = None, **options: Any):
        """Run one allocator and return its decision (no simulation).

        Args:
            method: an allocator name accepted by
                :func:`repro.core.make_allocator` (``casa``,
                ``steinke``, ``greedy``, ``ross``, ``anneal``, ...).
            spm_size: capacity override (defaults to the session's).
            **options: allocator configuration, e.g.
                ``allocate("casa", conflict_term=False)`` or
                ``allocate("ross", max_regions=2)``.

        Returns:
            The allocator's decision (an
            :class:`~repro.core.allocation.Allocation` for the
            scratchpad and loop-cache methods).
        """
        capacity = self._capacity(spm_size)
        bench = self.workbench
        allocator = make_allocator(method, **options)
        return allocator.allocate(
            bench.conflict_graph,
            capacity,
            bench.spm_energy_model(capacity),
            context=self.context(),
        )

    def evaluate(self, method: str = "casa",
                 spm_size: int | None = None,
                 **options: Any) -> ExperimentResult:
        """Allocate with *method* and simulate the outcome.

        Args:
            method: one of :data:`EVALUATE_METHODS`.
            spm_size: capacity override (defaults to the session's;
                ignored for ``baseline``).
            **options: method options (``ross`` accepts
                ``max_regions``; ``anneal`` accepts its annealing
                schedule parameters).

        Returns:
            The evaluated
            :class:`~repro.core.pipeline.ExperimentResult`: decision,
            simulation report and energy breakdown.
        """
        bench = self.workbench
        if method == "baseline":
            return bench.baseline_result()
        capacity = self._capacity(spm_size)
        if method == "casa":
            return bench.run_casa(capacity)
        if method == "steinke":
            return bench.run_steinke(capacity)
        if method == "greedy":
            return bench.run_greedy(capacity)
        if method == "ross":
            return bench.run_ross(capacity, **options)
        if method == "overlay":
            return bench.run_overlay(capacity)
        if method in ("anneal", "annealing"):
            allocation = self.allocate(method, capacity, **options)
            return bench.evaluate_spm(allocation, capacity)
        raise ConfigurationError(
            f"unknown evaluation method {method!r}; choose from "
            f"{', '.join(EVALUATE_METHODS)}"
        )

    def sweep(self, method: str = "casa",
              spm_sizes: tuple[int, ...] | None = None,
              policies: list[str] | None = None,
              **options: Any):
        """Evaluate *method* across a whole capacity axis.

        Routes through the grid pipeline
        (:meth:`~repro.core.pipeline.Workbench.run_grid`): the
        workbench profiles once, capacities solve in ascending order —
        CASA warm-starting each branch & bound from its neighbour's
        incumbent — and every step's result is bit-identical to the
        corresponding :meth:`evaluate` call.

        Args:
            method: ``casa`` | ``steinke`` | ``greedy`` | ``ross`` |
                ``baseline``.
            spm_sizes: the capacity axis in bytes (defaults to the
                named workload's table-1 sizes; a raw-program session
                must pass it explicitly).
            policies: replacement policies to cross with the capacity
                axis (any
                :func:`~repro.memory.replacement.available_policies`
                names, e.g. ``["lru", "lfu", "2q", "opt"]``).  Each
                policy is profiled and allocated under its own cache
                configuration; include ``"opt"`` to sweep the Belady
                lower bound alongside the online policies.
            **options: method options (``ross`` accepts
                ``max_regions``).

        Returns:
            Without *policies*: one result per capacity, in the order
            of *spm_sizes*.  With *policies*: a dict mapping each
            policy name to that list, in the order given.
        """
        if spm_sizes is None:
            if self._workload_name is None:
                raise ConfigurationError(
                    "this session has no default capacity axis; pass "
                    "spm_sizes= to sweep()"
                )
            from repro.workloads.registry import get_workload
            spm_sizes = get_workload(
                self._workload_name, scale=self._scale
            ).spm_sizes
        if policies is not None:
            from repro.memory.replacement import available_policies
            known = available_policies()
            for name in policies:
                if name not in known:
                    from repro.errors import UnknownPolicyError
                    raise UnknownPolicyError(name, known)
            return {
                name: self._with_policy(name).workbench.run_grid(
                    method, tuple(spm_sizes), **options
                )
                for name in dict.fromkeys(policies)
            }
        return self.workbench.run_grid(method, tuple(spm_sizes),
                                       **options)

    def _with_policy(self, policy: str) -> "Session":
        """A sibling session whose cache uses *policy*.

        Built from the resolved workbench configuration, so the cache
        geometry and trace formation — and therefore the memory
        objects every allocator sees — are identical across the
        policy axis; only victim selection differs.
        """
        from dataclasses import replace

        base = self.workbench.config
        workload = self._workload_name \
            if self._workload_name is not None else self._program
        return Session(
            workload,
            cache=replace(base.cache, policy=policy),
            spm_size=self._spm_size,
            scale=self._scale,
            seed=self._seed,
            backend=self._backend,
            tracegen=base.tracegen,
        )

    # -- wire adapters --------------------------------------------------------

    def as_request(self, verb: str, *, tenant: str = "default",
                   **options: Any):
        """This session's configuration as a ``repro serve`` request.

        The wire schemas (:mod:`repro.serve.schema`) are the canonical
        public API of the verbs; this adapter builds the request a
        remote daemon would answer exactly like the local call.

        Args:
            verb: ``simulate`` | ``conflict_graph`` | ``allocate`` |
                ``evaluate`` | ``sweep``.
            tenant: artifact-store shard on the serving side.
            **options: verb options — ``allocate``/``evaluate`` accept
                ``method``, ``spm_size`` and ``max_regions``;
                ``sweep`` accepts ``method``, ``spm_sizes`` and
                ``max_regions``.

        Raises:
            ConfigurationError: for a raw-program session (programs
                cannot travel as JSON; the wire API serves registered
                workloads only) or an unknown verb.
        """
        if self._workload_name is None:
            raise ConfigurationError(
                "only sessions over registered workloads can become "
                "serve requests (a raw Program cannot travel as JSON)"
            )
        from repro.serve import schema

        common = {
            "workload": self._workload_name,
            "scale": self._scale,
            "seed": self._seed,
            "cache": self._cache,
            "tracegen": self._tracegen,
            "backend": self._backend,
            "tenant": tenant,
        }
        if verb == "simulate":
            return schema.SimulateRequest(**common)
        if verb == "conflict_graph":
            return schema.ConflictGraphRequest(**common)
        if verb in ("allocate", "evaluate"):
            cls = schema.AllocateRequest if verb == "allocate" \
                else schema.EvaluateRequest
            return cls(
                algorithm=options.get("method", "casa"),
                spm_size=options.get("spm_size", self._spm_size),
                max_regions=options.get("max_regions", 4),
                **common,
            )
        if verb == "sweep":
            sizes = options.get("spm_sizes")
            return schema.SweepRequest(
                algorithm=options.get("method", "casa"),
                spm_sizes=tuple(sizes) if sizes is not None else None,
                max_regions=options.get("max_regions", 4),
                **common,
            )
        raise ConfigurationError(
            f"unknown serve verb {verb!r}; choose from simulate, "
            "conflict_graph, allocate, evaluate, sweep"
        )

    @staticmethod
    def from_response(response):
        """Decode a serve response into the local verb's return type.

        ``SimulateResponse`` → :class:`SimulationReport`,
        ``ConflictGraphResponse`` → :class:`ConflictGraph`,
        ``AllocateResponse`` → an allocation decision,
        ``EvaluateResponse`` → :class:`ExperimentResult`,
        ``SweepResponse`` → a result list — the same objects the
        corresponding :class:`Session` method returns locally.

        Raises:
            ConfigurationError: for a ``failed`` response (the error
                record is included) or an unknown response type.
        """
        from repro.io import serde
        from repro.serve import schema

        if response.status == "failed":
            error = response.error or {}
            raise ConfigurationError(
                "serve request failed: "
                f"{error.get('type', 'unknown')}: "
                f"{error.get('message', '(no message)')}"
            )
        if isinstance(response, schema.SimulateResponse):
            return serde.report_from_dict(response.report)
        if isinstance(response, schema.ConflictGraphResponse):
            return serde.conflict_graph_from_dict(response.graph)
        if isinstance(response, schema.AllocateResponse):
            return serde.allocation_from_dict(response.allocation)
        if isinstance(response, schema.EvaluateResponse):
            return serde.experiment_result_from_dict(response.result)
        if isinstance(response, schema.SweepResponse):
            return [serde.experiment_result_from_dict(step)
                    for step in response.results]
        raise ConfigurationError(
            f"cannot decode response type {type(response).__name__}"
        )

    # -- supporting accessors -------------------------------------------------

    def context(self) -> AllocationContext:
        """The allocation context (program, traces, baseline image)."""
        return self.workbench.allocation_context()

    def energy_model(self, spm_size: int | None = None) -> EnergyModel:
        """Per-event energy model of the cache + scratchpad hierarchy."""
        return self.workbench.spm_energy_model(
            self._capacity(spm_size)
        )

    def __repr__(self) -> str:
        target = self._workload_name or (
            self._program.name if self._program is not None else "?"
        )
        return (f"Session({target!r}, spm_size={self._spm_size}, "
                f"scale={self._scale}, seed={self._seed}, "
                f"backend={self._backend!r})")
