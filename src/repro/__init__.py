"""repro — Cache-Aware Scratchpad Allocation (CASA), reproduced.

A from-scratch Python implementation of M. Verma, L. Wehmeyer and
P. Marwedel, *"Cache-Aware Scratchpad Allocation Algorithm"*, DATE 2004:
the CASA ILP allocator plus every substrate the paper's evaluation
needs — an ARM-like program model and executor, trace generation, a
set-associative I-cache simulator with conflict attribution, scratchpad
and preloaded-loop-cache models, CACTI-style energy models, an ILP
solver, the Steinke and Ross baselines, and the figure/table harnesses.

Quickstart::

    from repro import Session

    session = Session("mpeg", spm_size=256, scale=0.1)
    result = session.evaluate("casa")
    print(result.energy.total, result.allocation.spm_resident)

:class:`~repro.api.Session` wraps the full figure-3 pipeline; the
underlying pieces (:class:`~repro.core.pipeline.Workbench`, the
allocator classes, :func:`~repro.core.make_allocator`) stay public
for fine-grained control.
"""

from repro.api import Session
from repro.core import (
    ALLOCATOR_NAMES,
    Allocation,
    Allocator,
    CasaAllocator,
    make_allocator,
    CasaConfig,
    ConflictGraph,
    ExperimentResult,
    GreedyCasaAllocator,
    MultiScratchpadAllocator,
    RossLoopCacheAllocator,
    ScratchpadSpec,
    SteinkeAllocator,
    Workbench,
    WorkbenchConfig,
)
from repro.energy import EnergyModel, build_energy_model, compute_energy
from repro.memory import CacheConfig, HierarchyConfig, LoopCacheConfig
from repro.program import Program, execute_program
from repro.traces import TraceGenConfig, generate_traces
from repro.workloads import available_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "ALLOCATOR_NAMES",
    "Allocation",
    "Allocator",
    "Session",
    "make_allocator",
    "CasaAllocator",
    "CasaConfig",
    "ConflictGraph",
    "ExperimentResult",
    "GreedyCasaAllocator",
    "MultiScratchpadAllocator",
    "RossLoopCacheAllocator",
    "ScratchpadSpec",
    "SteinkeAllocator",
    "Workbench",
    "WorkbenchConfig",
    "EnergyModel",
    "build_energy_model",
    "compute_energy",
    "CacheConfig",
    "HierarchyConfig",
    "LoopCacheConfig",
    "Program",
    "execute_program",
    "TraceGenConfig",
    "generate_traces",
    "available_workloads",
    "get_workload",
    "__version__",
]
