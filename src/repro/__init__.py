"""repro — Cache-Aware Scratchpad Allocation (CASA), reproduced.

A from-scratch Python implementation of M. Verma, L. Wehmeyer and
P. Marwedel, *"Cache-Aware Scratchpad Allocation Algorithm"*, DATE 2004:
the CASA ILP allocator plus every substrate the paper's evaluation
needs — an ARM-like program model and executor, trace generation, a
set-associative I-cache simulator with conflict attribution, scratchpad
and preloaded-loop-cache models, CACTI-style energy models, an ILP
solver, the Steinke and Ross baselines, and the figure/table harnesses.

Quickstart::

    from repro import Workbench, WorkbenchConfig, get_workload
    from repro.traces import TraceGenConfig

    workload = get_workload("mpeg", scale=0.1)
    bench = Workbench(
        workload.program,
        WorkbenchConfig(
            cache=workload.cache,
            tracegen=TraceGenConfig(
                line_size=workload.cache.line_size, max_trace_size=128
            ),
        ),
    )
    result = bench.run_casa(spm_size=256)
    print(result.energy.total, result.allocation.spm_resident)
"""

from repro.core import (
    Allocation,
    CasaAllocator,
    CasaConfig,
    ConflictGraph,
    ExperimentResult,
    GreedyCasaAllocator,
    MultiScratchpadAllocator,
    RossLoopCacheAllocator,
    ScratchpadSpec,
    SteinkeAllocator,
    Workbench,
    WorkbenchConfig,
)
from repro.energy import EnergyModel, build_energy_model, compute_energy
from repro.memory import CacheConfig, HierarchyConfig, LoopCacheConfig
from repro.program import Program, execute_program
from repro.traces import TraceGenConfig, generate_traces
from repro.workloads import available_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "CasaAllocator",
    "CasaConfig",
    "ConflictGraph",
    "ExperimentResult",
    "GreedyCasaAllocator",
    "MultiScratchpadAllocator",
    "RossLoopCacheAllocator",
    "ScratchpadSpec",
    "SteinkeAllocator",
    "Workbench",
    "WorkbenchConfig",
    "EnergyModel",
    "build_energy_model",
    "compute_energy",
    "CacheConfig",
    "HierarchyConfig",
    "LoopCacheConfig",
    "Program",
    "execute_program",
    "TraceGenConfig",
    "generate_traces",
    "available_workloads",
    "get_workload",
    "__version__",
]
