"""Bit/alignment arithmetic used throughout the memory models.

All cache geometry in the library (line size, number of sets, capacities)
is a power of two, so these helpers validate and manipulate such values.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return ``True`` iff *value* is a positive integral power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ConfigurationError: if *value* is not a power of two.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment*.

    Works for any positive *alignment*, not only powers of two.
    """
    if alignment <= 0:
        raise ConfigurationError(f"alignment must be positive, got {alignment}")
    if value < 0:
        raise ConfigurationError(f"value must be non-negative, got {value}")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to the previous multiple of *alignment*."""
    if alignment <= 0:
        raise ConfigurationError(f"alignment must be positive, got {alignment}")
    if value < 0:
        raise ConfigurationError(f"value must be non-negative, got {value}")
    return value - (value % alignment)


def is_aligned(value: int, alignment: int) -> bool:
    """Return ``True`` iff *value* is a multiple of *alignment*."""
    if alignment <= 0:
        raise ConfigurationError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0
