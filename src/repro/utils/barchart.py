"""Horizontal ASCII bar charts for figure-style series.

The paper's figures 4 and 5 are grouped bar charts (one group per
scratchpad size, one bar per metric, normalised to the baseline =
100 %).  This renders the same structure in plain text so the harness
output visually mirrors the exhibits.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Character used for bar bodies.
BAR_CHAR = "#"
#: Character marking the 100 % reference line position.
REFERENCE_CHAR = "|"


def horizontal_bars(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    reference: float = 100.0,
    unit: str = "%",
) -> str:
    """Render grouped horizontal bars.

    Args:
        groups: group labels (e.g. scratchpad sizes).
        series: metric name -> one value per group.
        width: bar width in characters for the largest value.
        reference: value marked with a reference tick (the baseline).
        unit: printed after each value.

    Returns:
        The chart as a multi-line string.
    """
    for metric, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {metric!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return "(empty chart)"
    maximum = max(max(all_values), reference)
    label_width = max(len(name) for name in series)
    group_width = max(len(str(group)) for group in groups)

    def bar(value: float) -> str:
        length = 0 if maximum <= 0 else round(width * value / maximum)
        body = BAR_CHAR * length
        ref_pos = round(width * reference / maximum)
        # overlay the reference tick
        if ref_pos >= len(body):
            body = body + " " * (ref_pos - len(body)) + REFERENCE_CHAR
        else:
            body = body[:ref_pos] + REFERENCE_CHAR + body[ref_pos + 1:]
        return body

    lines: list[str] = []
    for group_index, group in enumerate(groups):
        lines.append(f"{group}:")
        for metric, values in series.items():
            value = values[group_index]
            lines.append(
                f"  {metric.ljust(label_width)} "
                f"{bar(value)} {value:.1f}{unit}"
            )
        lines.append("")
    lines.append(
        f"({REFERENCE_CHAR} marks the {reference:.0f}{unit} baseline)"
    )
    return "\n".join(lines)
