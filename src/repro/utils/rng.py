"""Deterministic random number generation.

Every stochastic decision in the library (workload branch outcomes, random
cache replacement, random CFG generation for property tests) goes through
:class:`DeterministicRng` so a seed fully determines an experiment.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with a compact, purpose-named API.

    Wraps :class:`random.Random` rather than numpy's generator because the
    quantities drawn are tiny (single ints/floats on control-flow edges) and
    ``random.Random`` guarantees cross-platform stream stability for the
    methods used here.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """Seed the stream was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Return an independent stream derived from this seed and *salt*.

        Forking lets sub-components draw randomness without perturbing the
        parent stream, keeping experiments insensitive to evaluation order.
        """
        return DeterministicRng(hash((self._seed, int(salt))) & 0x7FFFFFFF)

    def coin(self, probability_true: float) -> bool:
        """Bernoulli draw: ``True`` with the given probability."""
        if not 0.0 <= probability_true <= 1.0:
            raise ValueError(f"probability out of range: {probability_true}")
        return self._random.random() < probability_true

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a new list with the items in random order."""
        result = list(items)
        self._random.shuffle(result)
        return result
