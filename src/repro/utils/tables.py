"""Plain-text table rendering for experiment reports.

The evaluation harness prints the paper's tables and figure series as
ASCII tables; this module is the single formatting implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Args:
        headers: column titles.
        rows: the table body; each cell is converted with ``str``.
        title: optional caption printed above the table.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    for row in str_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)
