"""Human-friendly size and energy formatting/parsing.

The paper quotes sizes such as "2kB" and "19.5 kBytes" and energies in
micro-joules; these helpers keep reports consistent with that convention.
"""

from __future__ import annotations

import re

_SIZE_PATTERN = re.compile(
    r"^\s*(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>k|ki|m|mi)?\s*b(?:ytes?)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    None: 1,
    "k": 1024,
    "ki": 1024,
    "m": 1024 * 1024,
    "mi": 1024 * 1024,
}


def parse_size(text: str | int) -> int:
    """Parse a byte size such as ``"2kB"``, ``"19.5 kBytes"`` or ``512``.

    Following embedded-systems convention (and the paper), ``k`` is
    interpreted as 1024.

    Returns:
        The size in bytes, as an integer.

    Raises:
        ValueError: if the text cannot be parsed or yields a fractional
            byte count.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size: {text}")
        return text
    match = _SIZE_PATTERN.match(text)
    if match is None:
        raise ValueError(f"cannot parse size: {text!r}")
    number = float(match.group("number"))
    unit = match.group("unit")
    factor = _UNIT_FACTORS[unit.lower() if unit else None]
    value = number * factor
    if abs(value - round(value)) > 1e-9:
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(round(value))


def format_size(num_bytes: int) -> str:
    """Format a byte count the way the paper does (``64``, ``2kB`` ...)."""
    if num_bytes < 0:
        raise ValueError(f"negative size: {num_bytes}")
    if num_bytes >= 1024 and num_bytes % 1024 == 0:
        return f"{num_bytes // 1024}kB"
    if num_bytes >= 1024:
        return f"{num_bytes / 1024:.1f}kB"
    return f"{num_bytes}B"


def format_energy(nanojoules: float) -> str:
    """Format an energy in nJ, switching to µJ/mJ for large values."""
    if nanojoules < 0:
        sign = "-"
        nanojoules = -nanojoules
    else:
        sign = ""
    if nanojoules >= 1e6:
        return f"{sign}{nanojoules / 1e6:.2f}mJ"
    if nanojoules >= 1e3:
        return f"{sign}{nanojoules / 1e3:.2f}uJ"
    return f"{sign}{nanojoules:.2f}nJ"
