"""Small shared helpers: bit arithmetic, units, tables, deterministic RNG."""

from repro.utils.bitops import (
    align_down,
    align_up,
    is_aligned,
    is_power_of_two,
    log2_int,
)
from repro.utils.rng import DeterministicRng
from repro.utils.tables import format_table
from repro.utils.units import format_energy, format_size, parse_size

__all__ = [
    "align_down",
    "align_up",
    "is_aligned",
    "is_power_of_two",
    "log2_int",
    "DeterministicRng",
    "format_table",
    "format_energy",
    "format_size",
    "parse_size",
]
