"""Data-memory hierarchy simulation.

Reuses the attributed :class:`~repro.memory.cache.Cache` for the
D-cache, so data conflict misses are attributed to the data object that
caused them — giving the data-side conflict graph for free.  Writes are
modelled write-allocate and cost the same as reads (adequate for
allocation decisions; refine per-technology if needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.objects import DataSpec
from repro.data.stream import DataAccess
from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.mainmem import MainMemory
from repro.memory.stats import SimulationReport
from repro.utils.bitops import align_up

#: Base address of the data image in the (separate) data address space.
DATA_BASE = 0x1000_0000


@dataclass(frozen=True)
class DataHierarchyConfig:
    """The data side of the Harvard hierarchy.

    Attributes:
        cache: D-cache configuration (``None`` = uncached).
        spm_size: data scratchpad capacity in bytes (0 = none).
    """

    cache: CacheConfig | None = CacheConfig(size=1024)
    spm_size: int = 0

    def __post_init__(self) -> None:
        if self.spm_size < 0:
            raise ConfigurationError(
                f"negative data scratchpad size: {self.spm_size}"
            )


@dataclass
class DataSimulationResult:
    """Statistics of one data-hierarchy simulation.

    ``report`` reuses the instruction-side container: ``fetches`` are
    element accesses, ``spm_accesses``/``cache_hits``/``cache_misses``
    partition them, and ``conflict_misses`` carries the attribution.
    """

    report: SimulationReport
    layout: dict[str, int]  # object name -> base address


def layout_data(spec: DataSpec, line_size: int,
                base: int = DATA_BASE) -> dict[str, int]:
    """Assign every object a line-aligned base address."""
    cursor = base
    layout: dict[str, int] = {}
    for obj in spec.objects:
        layout[obj.name] = cursor
        cursor += align_up(obj.size, line_size)
    return layout


def simulate_data(
    spec: DataSpec,
    stream: list[DataAccess],
    config: DataHierarchyConfig,
    spm_resident: frozenset[str] | set[str] = frozenset(),
) -> DataSimulationResult:
    """Run a data access stream through the data hierarchy.

    Args:
        spec: the data objects.
        stream: accesses from
            :func:`repro.data.stream.generate_access_stream`.
        config: D-cache / data-scratchpad configuration.
        spm_resident: objects held in the data scratchpad.

    Raises:
        ConfigurationError: if the resident set is unknown or exceeds
            the scratchpad.
    """
    unknown = set(spm_resident) - {obj.name for obj in spec.objects}
    if unknown:
        raise ConfigurationError(
            f"unknown data objects: {sorted(unknown)}"
        )
    resident_bytes = sum(
        spec.object(name).size for name in spm_resident
    )
    if resident_bytes > config.spm_size:
        raise ConfigurationError(
            f"data allocation needs {resident_bytes} bytes but the "
            f"scratchpad holds only {config.spm_size}"
        )

    line_size = config.cache.line_size if config.cache else 16
    layout = layout_data(spec, line_size)
    cache = Cache(config.cache) if config.cache else None
    main = MainMemory()
    report = SimulationReport()

    resident = frozenset(spm_resident)
    for access in stream:
        stats = report.stats_for(access.object_name)
        stats.fetches += 1
        if access.object_name in resident:
            stats.spm_accesses += 1
            continue
        if cache is None:
            stats.cache_misses += 1
            main.read_words(1)
            continue
        address = layout[access.object_name] + access.offset
        before = cache.compulsory_misses
        hit = cache.access_line(address // line_size,
                                access.object_name)
        if hit:
            stats.cache_hits += 1
        else:
            stats.cache_misses += 1
            if cache.compulsory_misses > before:
                stats.compulsory_misses += 1
            main.read_line(line_size // 4)

    report.main_memory_words = main.word_reads
    if cache is not None:
        report.conflict_misses = cache.conflict_misses.copy()
    return DataSimulationResult(report=report, layout=layout)
