"""Data objects and access annotations.

A :class:`DataObject` is an allocatable unit of the data address space
(a global array, a coefficient table, a state struct).  A
:class:`DataSpec` attaches objects to a program together with
*annotations*: how many times each execution of a function touches each
object, and in what pattern.  Annotations are per function (applied on
entry-block execution), which matches how profile-based data allocators
attribute accesses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.program.program import Program


class DataAccessPattern(enum.Enum):
    """How a kernel walks an object."""

    #: consecutive elements, wrapping at the end (array streaming).
    SEQUENTIAL = "sequential"
    #: every access hits the same few leading elements (scalars, state).
    HOT_FIELDS = "hot_fields"
    #: deterministic stride-N walk (column access, interleaved buffers).
    STRIDED = "strided"


@dataclass(frozen=True)
class DataObject:
    """One allocatable data object.

    Attributes:
        name: unique identifier.
        size: size in bytes.
        element_size: bytes per accessed element (stride unit).
    """

    name: str
    size: int
    element_size: int = 4

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"data object {self.name!r} needs a positive size"
            )
        if self.element_size <= 0 or self.size % self.element_size:
            raise ConfigurationError(
                f"data object {self.name!r}: size {self.size} is not a "
                f"multiple of element size {self.element_size}"
            )

    @property
    def num_elements(self) -> int:
        """Number of elements."""
        return self.size // self.element_size


@dataclass(frozen=True)
class DataUse:
    """One function's use of one object.

    Attributes:
        object_name: the object touched.
        reads: element reads per function execution.
        writes: element writes per function execution.
        pattern: access pattern.
        stride_elements: stride for :attr:`DataAccessPattern.STRIDED`.
    """

    object_name: str
    reads: int = 0
    writes: int = 0
    pattern: DataAccessPattern = DataAccessPattern.SEQUENTIAL
    stride_elements: int = 1

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise ConfigurationError("negative access counts")
        if self.reads == 0 and self.writes == 0:
            raise ConfigurationError(
                f"use of {self.object_name!r} has no accesses"
            )
        if self.stride_elements < 1:
            raise ConfigurationError("stride must be >= 1")


@dataclass
class DataSpec:
    """Data objects + per-function access annotations for a program."""

    objects: list[DataObject]
    #: function name -> uses applied on each execution of the function.
    uses: dict[str, list[DataUse]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [obj.name for obj in self.objects]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate data objects: {names}")
        self._by_name = {obj.name: obj for obj in self.objects}
        for function, uses in self.uses.items():
            for use in uses:
                if use.object_name not in self._by_name:
                    raise ConfigurationError(
                        f"function {function!r} uses unknown object "
                        f"{use.object_name!r}"
                    )

    def object(self, name: str) -> DataObject:
        """Look up an object by name."""
        return self._by_name[name]

    @property
    def total_size(self) -> int:
        """Combined size of all objects in bytes."""
        return sum(obj.size for obj in self.objects)

    def validate_against(self, program: Program) -> None:
        """Check that every annotated function exists in *program*."""
        for function in self.uses:
            if function not in {f.name for f in program.functions}:
                raise ConfigurationError(
                    f"annotation references unknown function "
                    f"{function!r}"
                )
