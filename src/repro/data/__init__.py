"""Data-side scratchpad allocation (the paper's other future work).

Section 7 announces "preloading of data" as future work, and the
Steinke et al. baseline [13] already allocated data objects alongside
code.  This package provides the data half of a Harvard hierarchy: data
objects (global arrays/tables), profile-annotated access streams, a
D-cache simulation that reuses the attributed cache model, and — as the
paper promises ("the algorithm can be easily applied to any memory
hierarchy") — the *same* CASA ILP running on a data conflict graph.

Pipeline mirror of the instruction side:

    DataSpec (objects + per-function access annotations)
        -> access stream (from the executed block sequence)
        -> D-cache simulation with eviction attribution
        -> ConflictGraph over data objects
        -> CasaAllocator / SteinkeAllocator (unchanged!)
        -> re-simulation with the data scratchpad
"""

from repro.data.objects import DataAccessPattern, DataObject, DataSpec
from repro.data.stream import DataAccess, generate_access_stream
from repro.data.simulation import (
    DataHierarchyConfig,
    DataSimulationResult,
    simulate_data,
)
from repro.data.pipeline import DataWorkbench

__all__ = [
    "DataAccessPattern",
    "DataObject",
    "DataSpec",
    "DataAccess",
    "generate_access_stream",
    "DataHierarchyConfig",
    "DataSimulationResult",
    "simulate_data",
    "DataWorkbench",
]
