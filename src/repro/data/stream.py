"""Data access stream generation.

Expands an executed block sequence into the sequence of data accesses
the annotations imply: each time a function's entry block executes, its
:class:`~repro.data.objects.DataUse` entries emit element accesses,
with per-use cursors modelling the access pattern (a sequential scan
resumes where the previous call left off, as array-processing kernels
do).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.objects import DataAccessPattern, DataSpec
from repro.program.program import Program


@dataclass(frozen=True)
class DataAccess:
    """One element access.

    Attributes:
        object_name: the object touched.
        offset: byte offset inside the object.
        is_write: write vs. read.
    """

    object_name: str
    offset: int
    is_write: bool


class _UseCursor:
    """Stateful offset generator for one (function, use) pair."""

    def __init__(self, spec: DataSpec, use) -> None:
        self._use = use
        obj = spec.object(use.object_name)
        self._element_size = obj.element_size
        self._num_elements = obj.num_elements
        self._position = 0

    def next_offset(self) -> int:
        use = self._use
        if use.pattern is DataAccessPattern.HOT_FIELDS:
            # cycle over the first few elements
            hot = min(4, self._num_elements)
            offset = (self._position % hot) * self._element_size
            self._position += 1
            return offset
        step = (use.stride_elements
                if use.pattern is DataAccessPattern.STRIDED else 1)
        offset = (self._position % self._num_elements) \
            * self._element_size
        self._position += step
        return offset


def generate_access_stream(
    program: Program,
    spec: DataSpec,
    block_sequence: list[str],
) -> list[DataAccess]:
    """Expand *block_sequence* into the data access stream.

    Returns:
        The accesses in program order (deterministic).
    """
    spec.validate_against(program)
    entry_uses: dict[str, list] = {}
    cursors: dict[tuple[str, int], _UseCursor] = {}
    for function, uses in spec.uses.items():
        entry = program.function(function).entry.name
        entry_uses[entry] = uses
        for index, use in enumerate(uses):
            cursors[(entry, index)] = _UseCursor(spec, use)

    stream: list[DataAccess] = []
    for block_name in block_sequence:
        uses = entry_uses.get(block_name)
        if uses is None:
            continue
        for index, use in enumerate(uses):
            cursor = cursors[(block_name, index)]
            for _ in range(use.reads):
                stream.append(DataAccess(
                    object_name=use.object_name,
                    offset=cursor.next_offset(),
                    is_write=False,
                ))
            for _ in range(use.writes):
                stream.append(DataAccess(
                    object_name=use.object_name,
                    offset=cursor.next_offset(),
                    is_write=True,
                ))
    return stream
