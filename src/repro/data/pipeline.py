"""End-to-end data-side allocation: profile -> graph -> CASA -> verify.

The mirror of :class:`repro.core.pipeline.Workbench` for the data
hierarchy.  The conflict graph is built over *data objects* and handed
to the **unchanged** instruction-side allocators — demonstrating the
paper's claim that the formulation "can be easily applied to any memory
hierarchy".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation
from repro.core.casa import CasaAllocator
from repro.core.conflict_graph import ConflictGraph, ConflictNode
from repro.core.steinke import SteinkeAllocator
from repro.data.objects import DataSpec
from repro.data.simulation import (
    DataHierarchyConfig,
    DataSimulationResult,
    simulate_data,
)
from repro.data.stream import DataAccess, generate_access_stream
from repro.energy.banakar import scratchpad_access_energy
from repro.energy.cacti import cache_access_energy, cache_refill_energy
from repro.energy.mainmem import MAIN_MEMORY_WORD_ENERGY_NJ
from repro.energy.model import EnergyModel, compute_energy
from repro.program.executor import execute_program
from repro.program.program import Program


@dataclass
class DataExperimentResult:
    """One data-side allocation decision, simulated."""

    allocation: Allocation
    result: DataSimulationResult
    energy_nj: float

    @property
    def report(self):
        """The underlying statistics."""
        return self.result.report


class DataWorkbench:
    """Profiles a program's data accesses once, evaluates allocations."""

    def __init__(
        self,
        program: Program,
        spec: DataSpec,
        config: DataHierarchyConfig,
        seed: int = 0,
    ) -> None:
        self._program = program
        self._spec = spec
        self._config = config
        execution = execute_program(program, seed=seed)
        self._stream = generate_access_stream(
            program, spec, execution.block_sequence
        )
        baseline_config = DataHierarchyConfig(
            cache=config.cache, spm_size=0
        )
        self._baseline = simulate_data(spec, self._stream,
                                       baseline_config)
        self._graph = self._build_graph()

    def _build_graph(self) -> ConflictGraph:
        graph = ConflictGraph()
        report = self._baseline.report
        for obj in self._spec.objects:
            stats = report.mo_stats.get(obj.name)
            graph.add_node(ConflictNode(
                name=obj.name,
                fetches=stats.fetches if stats else 0,
                size=obj.size,
                compulsory_misses=(
                    stats.compulsory_misses if stats else 0
                ),
            ))
        for (victim, evictor), count in report.conflict_misses.items():
            if victim == evictor:
                graph.node(victim).self_misses += count
            else:
                graph.add_edge(victim, evictor, count)
        return graph

    # ------------------------------------------------------------------

    @property
    def conflict_graph(self) -> ConflictGraph:
        """The data-object conflict graph."""
        return self._graph

    @property
    def access_stream(self) -> list[DataAccess]:
        """The profiled data access stream."""
        return list(self._stream)

    @property
    def baseline(self) -> DataSimulationResult:
        """The D-cache-only profiling simulation."""
        return self._baseline

    def energy_model(self) -> EnergyModel:
        """Per-event energies of the data hierarchy."""
        cache = self._config.cache
        if cache is not None:
            hit = cache_access_energy(cache.size, cache.line_size,
                                      cache.associativity)
            miss = (hit
                    + cache.words_per_line * MAIN_MEMORY_WORD_ENERGY_NJ
                    + cache_refill_energy(cache.size, cache.line_size,
                                          cache.associativity))
        else:
            hit, miss = 0.0, MAIN_MEMORY_WORD_ENERGY_NJ
        spm = (scratchpad_access_energy(self._config.spm_size)
               if self._config.spm_size else 0.0)
        return EnergyModel(cache_hit=hit, cache_miss=miss,
                           spm_access=spm)

    def evaluate(self, allocation: Allocation) -> DataExperimentResult:
        """Re-simulate with the allocation's residents on the data SPM."""
        result = simulate_data(
            self._spec, self._stream, self._config,
            spm_resident=allocation.spm_resident,
        )
        energy = compute_energy(result.report, self.energy_model())
        return DataExperimentResult(
            allocation=allocation,
            result=result,
            energy_nj=energy.total,
        )

    def run_casa(self) -> DataExperimentResult:
        """CASA on the data conflict graph."""
        allocation = CasaAllocator().allocate(
            self._graph, self._config.spm_size, self.energy_model()
        )
        return self.evaluate(allocation)

    def run_steinke(self) -> DataExperimentResult:
        """The access-count knapsack baseline on data objects."""
        allocation = SteinkeAllocator().allocate(
            self._graph, self._config.spm_size, self.energy_model()
        )
        return self.evaluate(allocation)
