"""Grid differential gate: the grid pipeline vs. the per-point path.

The grid pipeline's contract is that batching changes *nothing* but
wall-clock time: one :func:`~repro.memory.kernel.grid.simulate_grid`
pass over a fetch stream must produce byte-identical
:class:`~repro.memory.stats.SimulationReport`\\ s to per-configuration
simulation, and a sweep scheduled as grid chunks (shared conflict
graph, warm-started branch & bound) must produce byte-identical
reports *and* :class:`~repro.core.allocation.Allocation`\\ s to one
scheduled as independent design points.  This module checks that
contract from three directions:

1. **Coverage** — the verification axis itself must partition into at
   least one single-pass scan group; a zero-coverage grid means every
   configuration silently fell back to per-config replay and the gate
   proved nothing.
2. **Replay** — committed workloads' baseline and scratchpad-resident
   streams are replayed through :func:`simulate_grid` across the
   line-size × associativity LRU cross product (plus one
   set-associative configuration per non-stack policy — FIFO, LFU,
   2Q — exercising the grid's own per-config fallback) and compared
   field by field against the reference simulator.
3. **Sweep** — a full allocator sweep runs twice on fresh artifact
   stores, once as grid chunks and once per-point, and every
   (size, allocator) cell is compared: full report, energy total, and
   every :class:`Allocation` field except ``solver_nodes`` (warm and
   cold branch & bound may prove the same optimum exploring different
   node counts).

``repro verify-grid`` runs all three and exits non-zero on any
difference; ``make test`` gates on it next to ``verify-kernel`` and
``chaos``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.engine.store import ArtifactStore, set_default_store
from repro.memory.cache import CacheConfig
from repro.memory.kernel import (
    SweepGrid,
    VerifyCase,
    report_differences,
    simulate_grid,
)
from repro.memory.kernel.verify import (
    ASSOCIATIVITIES,
    LINE_SIZES,
    workload_images,
)
from repro.obs.trace import span

#: Default workloads of the replay and sweep checks.
DEFAULT_WORKLOADS = ("tiny", "adpcm")

#: Allocators of the sweep-level check.
DEFAULT_ALGORITHMS = ("casa", "steinke", "ross")

#: Allocation fields that must match bit-for-bit between the grid and
#: per-point paths.  ``solver_nodes`` is deliberately absent: a
#: warm-started branch & bound may reach the identical optimum through
#: a different number of nodes.
ALLOCATION_FIELDS = (
    "algorithm",
    "spm_resident",
    "loop_regions",
    "placement",
    "predicted_energy",
    "solver_status",
    "solver_gap",
    "capacity",
    "used_bytes",
)


@dataclass(frozen=True)
class GridVerifyReport:
    """Outcome of one full grid-verification run."""

    cases: tuple[VerifyCase, ...]

    @property
    def ok(self) -> bool:
        """Whether every case passed."""
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> list[VerifyCase]:
        """The cases that found a difference."""
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        """Human-readable verdict, one line per failing case."""
        by_kind: Counter = Counter(case.kind for case in self.cases)
        coverage = ", ".join(
            f"{count} {kind}" for kind, count in sorted(by_kind.items())
        )
        lines = [f"grid differential verification: "
                 f"{len(self.cases)} cases ({coverage})"]
        if self.ok:
            lines.append(
                "  OK — grid pipeline matches the per-point path "
                "bit-for-bit"
            )
            return "\n".join(lines)
        lines.append(f"  {len(self.failures)} FAILING CASES:")
        for case in self.failures:
            lines.append(f"  - [{case.kind}] {case.description}")
            for diff in case.differences[:8]:
                lines.append(f"      {diff}")
            hidden = len(case.differences) - 8
            if hidden > 0:
                lines.append(f"      ... and {hidden} more")
        return "\n".join(lines)


# -- the verification axis ----------------------------------------------------


def verification_axis(spm_size: int) -> SweepGrid:
    """The cache axis the replay check sweeps.

    The full line-size × associativity LRU cross product at a fixed
    small capacity (so conflicts occur), plus one set-associative
    configuration per non-stack kernel-supported policy (FIFO, LFU,
    2Q) that the single-pass scan cannot cover — proving the grid's
    own per-config fallback path returns exact results too.
    """
    from repro.memory.hierarchy import HierarchyConfig

    configs = []
    for line_size in LINE_SIZES:
        for associativity in ASSOCIATIVITIES:
            configs.append(HierarchyConfig(
                cache=CacheConfig(
                    size=line_size * associativity * 4,
                    line_size=line_size,
                    associativity=associativity,
                    policy="lru",
                ),
                spm_size=spm_size,
            ))
    for policy in ("fifo", "lfu", "2q"):
        configs.append(HierarchyConfig(
            cache=CacheConfig(size=128, line_size=16, associativity=2,
                              policy=policy),
            spm_size=spm_size,
        ))
    return SweepGrid.of(configs)


# -- check 1: grid coverage ---------------------------------------------------


def _coverage_case(grid: SweepGrid) -> VerifyCase:
    """The axis must have at least one single-pass scan group."""
    covered, fallback = grid.coverage()
    differences: tuple[str, ...] = ()
    if covered == 0:
        differences = (
            f"zero-coverage grid: 0 of {len(grid)} configurations "
            f"are single-pass scannable ({fallback} fallbacks) — the "
            f"replay check would only exercise the per-config path",
        )
    description = (
        f"verification axis: {covered} covered + {fallback} fallback "
        f"of {len(grid)} configurations"
    )
    return VerifyCase("coverage", description, differences)


# -- check 2: single-pass replay vs. reference --------------------------------


def _replay_cases(workload_name: str, scale: float,
                  seed: int) -> list[VerifyCase]:
    """Grid-replay-vs-reference cases for one workload's images."""
    from repro.memory.hierarchy import simulate
    from repro.memory.kernel.stream import compile_stream

    bench, images = workload_images(workload_name, scale, seed)
    config = bench.config
    cases: list[VerifyCase] = []
    for label, image, spm_size in images:
        stream = compile_stream(image, bench.block_sequence,
                                spm_base=config.spm_base)
        grid = verification_axis(spm_size)
        actual_reports = simulate_grid(stream, grid,
                                       spm_base=config.spm_base)
        for hierarchy, actual in zip(grid, actual_reports):
            expected = simulate(
                image, hierarchy, bench.block_sequence,
                spm_base=config.spm_base, backend="reference",
            )
            cache = hierarchy.cache
            description = (
                f"{workload_name}/{label} size={cache.size} "
                f"line={cache.line_size} assoc={cache.associativity} "
                f"policy={cache.policy}"
            )
            cases.append(VerifyCase(
                "replay", description,
                tuple(report_differences(expected, actual)),
            ))
    return cases


# -- check 3: grid sweep vs. per-point sweep ----------------------------------


def allocation_differences(expected, actual) -> list[str]:
    """Every compared Allocation field where two decisions disagree.

    ``expected`` is the per-point decision, ``actual`` the grid one;
    see :data:`ALLOCATION_FIELDS` for the compared set.
    """
    differences = []
    for field_name in ALLOCATION_FIELDS:
        expected_value = getattr(expected, field_name)
        actual_value = getattr(actual, field_name)
        if expected_value != actual_value:
            differences.append(
                f"allocation.{field_name}: per-point "
                f"{expected_value!r} != grid {actual_value!r}"
            )
    return differences


def _sweep_cases(workload_name: str, scale: float, seed: int,
                 algorithms: tuple[str, ...]) -> list[VerifyCase]:
    """Grid-vs-point cases across one workload's full sweep.

    Both passes run serially on fresh in-memory artifact stores, so
    neither can serve the other's results from a cache — every cell
    is genuinely computed twice, once per scheduling shape.
    """
    from repro.evaluation.sweep import run_sweep

    def sweep_pass(grid: bool):
        previous = set_default_store(ArtifactStore())
        try:
            return run_sweep(
                workload_name, algorithms=algorithms, scale=scale,
                seed=seed, grid=grid,
            )
        finally:
            set_default_store(previous)

    expected_points = sweep_pass(grid=False)
    actual_points = sweep_pass(grid=True)
    cases: list[VerifyCase] = []
    for expected_point, actual_point in zip(expected_points,
                                            actual_points):
        for algorithm in algorithms:
            expected = expected_point.result(algorithm)
            actual = actual_point.result(algorithm)
            differences = report_differences(expected.report,
                                             actual.report)
            differences += allocation_differences(
                expected.allocation, actual.allocation
            )
            if expected.energy.total != actual.energy.total:
                differences.append(
                    f"energy.total: per-point "
                    f"{expected.energy.total!r} != grid "
                    f"{actual.energy.total!r}"
                )
            description = (
                f"{workload_name}/{algorithm}"
                f"@{expected_point.spm_size}"
            )
            cases.append(VerifyCase("sweep", description,
                                    tuple(differences)))
    return cases


# -- entry point --------------------------------------------------------------


def verify_grid(
    workloads: tuple[str, ...] | list[str] | None = None,
    seed: int = 0,
    scale: float = 1.0,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
) -> GridVerifyReport:
    """Run the full grid differential gate.

    Args:
        workloads: workload names of the replay and sweep checks
            (default :data:`DEFAULT_WORKLOADS`).
        seed: executor seed of every run.
        scale: workload trip-count multiplier.
        algorithms: allocators of the sweep-level check.

    Returns:
        A :class:`GridVerifyReport`; ``report.ok`` is the verdict.
    """
    names = tuple(workloads) if workloads else DEFAULT_WORKLOADS
    cases: list[VerifyCase] = []
    with span("grid.verify", workloads=len(names)) as verify_span:
        cases.append(_coverage_case(verification_axis(0)))
        for workload_name in names:
            cases.extend(_replay_cases(workload_name, scale, seed))
            cases.extend(_sweep_cases(workload_name, scale, seed,
                                      algorithms))
        report = GridVerifyReport(tuple(cases))
        verify_span.add(cases=len(cases),
                        failures=len(report.failures))
    return report
