"""Figure 4 — CASA vs. Steinke's algorithm on the MPEG benchmark.

The paper plots, for a 2 kB direct-mapped I-cache and scratchpad sizes
128-1024 bytes, four quantities of the CASA-allocated system as a
percentage of the Steinke-allocated system (= 100 %):

* scratchpad accesses   (CASA's are *lower* — it does not chase the
  cheapest memory),
* I-cache accesses      (CASA's are *higher*, for the same reason),
* I-cache misses        (CASA's are much lower — the whole point),
* energy                (lower, up to 60 % in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import ExperimentResult
from repro.evaluation.reporting import series_table
from repro.evaluation.sweep import run_sweep

#: Scratchpad sizes shown in the paper's figure.
DEFAULT_SIZES = (128, 256, 512, 1024)


@dataclass
class Fig4Row:
    """CASA-as-percent-of-Steinke at one scratchpad size."""

    spm_size: int
    casa: ExperimentResult
    steinke: ExperimentResult

    @staticmethod
    def _pct(value: float, base: float) -> float:
        return 100.0 if base == 0 else 100.0 * value / base

    @property
    def spm_access_pct(self) -> float:
        """CASA scratchpad accesses as % of Steinke's."""
        return self._pct(self.casa.report.spm_accesses,
                         self.steinke.report.spm_accesses)

    @property
    def icache_access_pct(self) -> float:
        """CASA I-cache accesses as % of Steinke's."""
        return self._pct(self.casa.report.cache_accesses,
                         self.steinke.report.cache_accesses)

    @property
    def icache_miss_pct(self) -> float:
        """CASA I-cache misses as % of Steinke's."""
        return self._pct(self.casa.report.cache_misses,
                         self.steinke.report.cache_misses)

    @property
    def energy_pct(self) -> float:
        """CASA energy as % of Steinke's."""
        return self._pct(self.casa.energy.total,
                         self.steinke.energy.total)


@dataclass
class Fig4Result:
    """The full figure: one row per scratchpad size."""

    workload: str
    rows: list[Fig4Row]

    @property
    def sizes(self) -> tuple[int, ...]:
        """Scratchpad sizes, ascending."""
        return tuple(row.spm_size for row in self.rows)

    @property
    def average_energy_improvement(self) -> float:
        """Mean energy reduction of CASA vs. Steinke in percent."""
        return sum(100.0 - row.energy_pct for row in self.rows) / len(
            self.rows
        )

    def _series(self) -> dict[str, list[float]]:
        return {
            "SPM accesses": [r.spm_access_pct for r in self.rows],
            "I-cache accesses": [r.icache_access_pct for r in self.rows],
            "I-cache misses": [r.icache_miss_pct for r in self.rows],
            "Energy": [r.energy_pct for r in self.rows],
        }

    def render(self) -> str:
        """Text rendering of the figure's series."""
        return series_table(
            f"Figure 4 - CASA vs. Steinke on {self.workload} "
            "(Steinke = 100%)",
            "metric (% of Steinke)",
            self.sizes,
            self._series(),
        )

    def render_chart(self) -> str:
        """Grouped-bar rendering (the paper's visual form)."""
        from repro.utils.barchart import horizontal_bars
        return horizontal_bars(
            [f"{size}B" for size in self.sizes], self._series()
        )


def run_fig4(
    workload: str = "mpeg",
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    record=None,
    backend: str | None = None,
    grid: bool = True,
) -> Fig4Result:
    """Reproduce figure 4 (optionally on another workload or scale).

    ``jobs`` fans the sweep's work units across worker processes;
    ``record`` (a :class:`~repro.engine.runner.RunRecord`) collects the
    engine's per-stage hit/compute counters; ``backend`` picks the
    simulation backend; ``grid=False`` trades the grid path for
    per-point scheduling (identical results).
    """
    points = run_sweep(
        workload, sizes, algorithms=("casa", "steinke"),
        scale=scale, seed=seed, jobs=jobs, record=record,
        backend=backend, grid=grid,
    )
    rows = [
        Fig4Row(
            spm_size=point.spm_size,
            casa=point.result("casa"),
            steinke=point.result("steinke"),
        )
        for point in points
    ]
    return Fig4Result(workload=workload, rows=rows)
