"""Reproduction harnesses for the paper's evaluation (section 6).

One module per exhibit:

* :mod:`repro.evaluation.fig4` — figure 4: CASA vs. Steinke on MPEG
  (I-cache accesses, scratchpad accesses, I-cache misses, energy, as a
  percentage of Steinke = 100 %);
* :mod:`repro.evaluation.fig5` — figure 5: CASA scratchpad vs. Ross
  preloaded loop cache (loop cache = 100 %);
* :mod:`repro.evaluation.table1` — table 1: absolute energies and
  improvement percentages for adpcm, g721 and mpeg.

:mod:`repro.evaluation.sweep` provides the generic size sweep all three
build on, and :mod:`repro.evaluation.reporting` the text rendering.
"""

from repro.evaluation.dse import DesignPoint, explore, render_design_points
from repro.evaluation.explain import (
    ObjectExplanation,
    explain_allocation,
    render_explanation,
)
from repro.evaluation.fig4 import Fig4Result, Fig4Row, run_fig4
from repro.evaluation.reportgen import generate_report
from repro.evaluation.fig5 import Fig5Result, Fig5Row, run_fig5
from repro.evaluation.sweep import SweepPoint, make_workbench, run_sweep
from repro.evaluation.table1 import (
    Table1Benchmark,
    Table1Result,
    Table1Row,
    run_table1,
)

__all__ = [
    "DesignPoint",
    "explore",
    "render_design_points",
    "ObjectExplanation",
    "explain_allocation",
    "render_explanation",
    "generate_report",
    "Fig4Result",
    "Fig4Row",
    "run_fig4",
    "Fig5Result",
    "Fig5Row",
    "run_fig5",
    "SweepPoint",
    "make_workbench",
    "run_sweep",
    "Table1Benchmark",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
