"""Generic scratchpad-size sweeps over workloads and allocators.

The paper's methodology (section 6): vary the scratchpad / loop-cache
size while keeping the rest of the instruction-memory subsystem
invariant, count the accesses to each level, and compute energy from the
model.  :func:`run_sweep` implements exactly that for any subset of the
allocators; the figure/table modules post-process its output.

Sweeps run through the staged experiment engine.  On the default grid
path each requested allocator becomes one
:class:`~repro.engine.grid.GridChunk` covering the whole capacity
axis — the workbench profiles once, the kernel replays the cache work
in shared passes, and CASA warm-starts each capacity step's branch &
bound from its neighbour.  ``grid=False`` falls back to one
:class:`~repro.engine.parallel.PointSpec` per (size, allocator) pair —
bit-identical results (the ``repro verify-grid`` gate enforces it),
finer-grained parallelism.  Either unit shape fans through
:func:`~repro.engine.parallel.map_points`, so a sweep can use worker
processes (``jobs``), reuses every allocation-independent stage from
the artifact store, and can report per-stage hit/compute counters
through a :class:`~repro.engine.runner.RunRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import ExperimentResult, Workbench
from repro.engine.grid import GridChunk
from repro.engine.parallel import PointSpec, map_points
from repro.engine.runner import RunRecord
from repro.engine.runner import make_workbench as _engine_make_workbench
from repro.errors import ConfigurationError
from repro.workloads.registry import Workload, get_workload

#: Allocator identifiers accepted by :func:`run_sweep`.
ALGORITHMS = ("casa", "steinke", "greedy", "ross")


def make_workbench(workload_name: str, scale: float = 1.0,
                   seed: int = 0, backend: str | None = None
                   ) -> tuple[Workload, Workbench]:
    """Build (and cache) the profiled workbench of a named workload.

    Thin compatibility wrapper over the engine's
    :func:`repro.engine.runner.make_workbench`, which memoises the
    workbench in the artifact store's memory tier (replacing the old
    eight-entry ``functools.lru_cache`` that sweeps over many
    workloads/scales silently thrashed, and whose float ``scale`` keys
    defeated reuse between ``1`` and ``1.0``).
    """
    return _engine_make_workbench(workload_name, scale, seed,
                                  backend=backend)


@dataclass
class SweepPoint:
    """All requested allocators evaluated at one scratchpad size."""

    workload: str
    spm_size: int
    results: dict[str, ExperimentResult]

    def result(self, algorithm: str) -> ExperimentResult:
        """Result of one allocator at this size."""
        return self.results[algorithm]

    def energy(self, algorithm: str) -> float:
        """Total energy (nJ) of one allocator at this size."""
        return self.results[algorithm].energy.total

    def improvement(self, algorithm: str, baseline: str) -> float:
        """Energy improvement of *algorithm* over *baseline* in percent."""
        base = self.energy(baseline)
        if base == 0:
            raise ConfigurationError(f"baseline {baseline!r} has no energy")
        return (1.0 - self.energy(algorithm) / base) * 100.0


def run_sweep(
    workload_name: str,
    sizes: tuple[int, ...] | None = None,
    algorithms: tuple[str, ...] = ("casa", "steinke", "ross"),
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    record: RunRecord | None = None,
    backend: str | None = None,
    grid: bool = True,
) -> list[SweepPoint]:
    """Evaluate allocators across scratchpad sizes.

    Args:
        workload_name: registered benchmark name.
        sizes: scratchpad/loop-cache sizes in bytes (defaults to the
            benchmark's table 1 sizes).
        algorithms: subset of :data:`ALGORITHMS`.
        scale: workload trip-count multiplier.
        seed: executor seed.
        jobs: worker processes for the work units (1 = serial; results
            are identical either way).
        record: optional engine run record receiving per-stage
            hit/compute counters.
        backend: simulation backend for every design point
            (``reference`` | ``vector`` | ``auto``; ``None`` defers to
            ``CASA_BACKEND``, then ``auto``).
        grid: schedule one grid chunk per allocator (single-pass cache
            replay, warm-started solves) instead of one design point
            per (size, allocator) pair.  Results are bit-identical
            either way.

    Returns:
        One :class:`SweepPoint` per size, in ascending size order.
    """
    unknown = set(algorithms) - set(ALGORITHMS)
    if unknown:
        raise ConfigurationError(
            f"unknown algorithms {sorted(unknown)}; choose from "
            f"{ALGORITHMS}"
        )
    if sizes is None:
        sizes = get_workload(workload_name, scale=scale).spm_sizes
    chosen_sizes = tuple(sorted(sizes))
    if grid:
        chunks = [
            GridChunk(
                workload=workload_name,
                spm_sizes=chosen_sizes,
                algorithm=algorithm,
                scale=scale,
                seed=seed,
                backend=backend,
            )
            for algorithm in algorithms
        ]
        axes = map_points(chunks, jobs=jobs, record=record)
        return [
            SweepPoint(workload_name, size, {
                algorithm: axes[offset][index]
                for offset, algorithm in enumerate(algorithms)
            })
            for index, size in enumerate(chosen_sizes)
        ]
    specs = [
        PointSpec(
            workload=workload_name,
            spm_size=size,
            algorithm=algorithm,
            scale=scale,
            seed=seed,
            backend=backend,
        )
        for size in chosen_sizes
        for algorithm in algorithms
    ]
    results = map_points(specs, jobs=jobs, record=record)
    points: list[SweepPoint] = []
    for index, size in enumerate(chosen_sizes):
        per_algorithm = {
            algorithm: results[index * len(algorithms) + offset]
            for offset, algorithm in enumerate(algorithms)
        }
        points.append(SweepPoint(workload_name, size, per_algorithm))
    return points
