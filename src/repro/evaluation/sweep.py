"""Generic scratchpad-size sweeps over workloads and allocators.

The paper's methodology (section 6): vary the scratchpad / loop-cache
size while keeping the rest of the instruction-memory subsystem
invariant, count the accesses to each level, and compute energy from the
model.  :func:`run_sweep` implements exactly that for any subset of the
allocators; the figure/table modules post-process its output.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.pipeline import ExperimentResult, Workbench, WorkbenchConfig
from repro.errors import ConfigurationError
from repro.traces.tracegen import TraceGenConfig
from repro.workloads.registry import Workload, get_workload

#: Allocator identifiers accepted by :func:`run_sweep`.
ALGORITHMS = ("casa", "steinke", "greedy", "ross")


@functools.lru_cache(maxsize=8)
def make_workbench(workload_name: str, scale: float = 1.0,
                   seed: int = 0) -> tuple[Workload, Workbench]:
    """Build (and cache) the profiled workbench of a named workload.

    The workbench construction — execution, trace generation, baseline
    cache simulation — is the expensive, allocation-independent part of
    every experiment, so it is shared across figures and benchmarks.
    """
    workload = get_workload(workload_name, scale=scale)
    config = WorkbenchConfig(
        cache=workload.cache,
        tracegen=TraceGenConfig(
            line_size=workload.cache.line_size,
            max_trace_size=min(workload.spm_sizes),
        ),
        seed=seed,
    )
    return workload, Workbench(workload.program, config)


@dataclass
class SweepPoint:
    """All requested allocators evaluated at one scratchpad size."""

    workload: str
    spm_size: int
    results: dict[str, ExperimentResult]

    def result(self, algorithm: str) -> ExperimentResult:
        """Result of one allocator at this size."""
        return self.results[algorithm]

    def energy(self, algorithm: str) -> float:
        """Total energy (nJ) of one allocator at this size."""
        return self.results[algorithm].energy.total

    def improvement(self, algorithm: str, baseline: str) -> float:
        """Energy improvement of *algorithm* over *baseline* in percent."""
        base = self.energy(baseline)
        if base == 0:
            raise ConfigurationError(f"baseline {baseline!r} has no energy")
        return (1.0 - self.energy(algorithm) / base) * 100.0


def run_sweep(
    workload_name: str,
    sizes: tuple[int, ...] | None = None,
    algorithms: tuple[str, ...] = ("casa", "steinke", "ross"),
    scale: float = 1.0,
    seed: int = 0,
) -> list[SweepPoint]:
    """Evaluate allocators across scratchpad sizes.

    Args:
        workload_name: registered benchmark name.
        sizes: scratchpad/loop-cache sizes in bytes (defaults to the
            benchmark's table 1 sizes).
        algorithms: subset of :data:`ALGORITHMS`.
        scale: workload trip-count multiplier.
        seed: executor seed.

    Returns:
        One :class:`SweepPoint` per size, in ascending size order.
    """
    unknown = set(algorithms) - set(ALGORITHMS)
    if unknown:
        raise ConfigurationError(
            f"unknown algorithms {sorted(unknown)}; choose from "
            f"{ALGORITHMS}"
        )
    workload, bench = make_workbench(workload_name, scale, seed)
    chosen_sizes = tuple(sorted(sizes or workload.spm_sizes))
    points: list[SweepPoint] = []
    for size in chosen_sizes:
        results: dict[str, ExperimentResult] = {}
        for algorithm in algorithms:
            if algorithm == "casa":
                results[algorithm] = bench.run_casa(size)
            elif algorithm == "steinke":
                results[algorithm] = bench.run_steinke(size)
            elif algorithm == "greedy":
                results[algorithm] = bench.run_greedy(size)
            else:
                results[algorithm] = bench.run_ross(size)
        points.append(SweepPoint(workload_name, size, results))
    return points
