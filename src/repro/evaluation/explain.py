"""Explain an allocation decision object by object.

The ILP's output is a set; this renders *why* each chosen object is
there (fetches moved to the cheap memory, conflict misses whose evictor
or victim went away) and why notable objects were left out (too big,
too cold, conflicts already resolved by a partner's allocation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import Allocation
from repro.core.conflict_graph import ConflictGraph
from repro.energy.model import EnergyModel
from repro.utils.tables import format_table


@dataclass
class ObjectExplanation:
    """Why one object was (not) allocated.

    Attributes:
        name: object name.
        selected: whether it is scratchpad-resident.
        size: bytes it costs on the scratchpad.
        fetches: its fetch count ``f_i``.
        fetch_saving: energy saved by serving its fetches from the
            scratchpad (nJ).
        conflict_saving: energy saved by the conflict misses its
            allocation removes — as victim and as evictor (nJ).
        density: total saving per byte (the greedy's ranking metric).
    """

    name: str
    selected: bool
    size: int
    fetches: int
    fetch_saving: float
    conflict_saving: float

    @property
    def total_saving(self) -> float:
        """Fetch + conflict saving in nJ."""
        return self.fetch_saving + self.conflict_saving

    @property
    def density(self) -> float:
        """Saving per scratchpad byte."""
        return self.total_saving / self.size if self.size else 0.0


def explain_allocation(
    graph: ConflictGraph,
    allocation: Allocation,
    energy: EnergyModel,
) -> list[ObjectExplanation]:
    """Compute per-object explanations for a scratchpad allocation.

    Conflict savings are attributed to the allocated endpoint: if both
    endpoints of an edge are resident, the victim gets the credit (its
    misses disappear because it no longer lives in the cache).
    """
    resident = set(allocation.spm_resident)
    miss_premium = energy.cache_miss - energy.cache_hit
    hit_premium = energy.cache_hit - energy.spm_access

    explanations: list[ObjectExplanation] = []
    for node in graph.nodes():
        selected = node.name in resident
        fetch_saving = node.fetches * hit_premium if selected else 0.0
        conflict_saving = 0.0
        if selected:
            # misses of this object that vanish (it left the cache)
            conflict_saving += (
                node.self_misses + node.compulsory_misses
            ) * miss_premium
            conflict_saving += sum(
                weight for _, weight in graph.conflicts_of(node.name)
            ) * miss_premium
            # misses of others it caused, unless the victim also left
            conflict_saving += sum(
                weight
                for victim, weight in graph.victims_of(node.name)
                if victim not in resident
            ) * miss_premium
        explanations.append(ObjectExplanation(
            name=node.name,
            selected=selected,
            size=node.size,
            fetches=node.fetches,
            fetch_saving=fetch_saving,
            conflict_saving=conflict_saving,
        ))
    explanations.sort(key=lambda e: (-e.selected, -e.total_saving))
    return explanations


def solver_summary(allocation: Allocation) -> str:
    """One-line solver provenance for explanation headers.

    Surfaces the telemetry the branch & bound records into the
    allocation: outcome status, nodes explored and the proven
    optimality gap.  Non-ILP allocators (no status) get a placeholder
    so the header stays well-formed.
    """
    if not allocation.solver_status:
        return f"solver: n/a ({allocation.algorithm} is not ILP-based)"
    if allocation.solver_gap is None:
        gap = "gap n/a"
    else:
        gap = f"proven gap {allocation.solver_gap * 100:.2f}%"
    return (f"solver: {allocation.solver_status} after "
            f"{allocation.solver_nodes} B&B nodes, {gap}")


def render_explanation(
    explanations: list[ObjectExplanation],
    top_rejected: int = 5,
) -> str:
    """Render the selected objects plus the hottest rejected ones."""
    headers = ["object", "bytes", "fetches", "fetch saving uJ",
               "conflict saving uJ", "per-byte nJ/B"]

    def row(e: ObjectExplanation) -> list[str]:
        return [
            e.name, str(e.size), str(e.fetches),
            f"{e.fetch_saving / 1e3:.2f}",
            f"{e.conflict_saving / 1e3:.2f}",
            f"{e.density:.1f}",
        ]

    selected = [e for e in explanations if e.selected]
    rejected = [e for e in explanations if not e.selected]
    rejected.sort(key=lambda e: -e.fetches)

    parts = [format_table(headers, [row(e) for e in selected],
                          title="scratchpad residents")]
    if rejected[:top_rejected]:
        parts.append("")
        parts.append(format_table(
            ["object", "bytes", "fetches"],
            [[e.name, e.size, e.fetches]
             for e in rejected[:top_rejected]],
            title=f"hottest {min(top_rejected, len(rejected))} "
                  "objects left in the cache",
        ))
    return "\n".join(parts)
