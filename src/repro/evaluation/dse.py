"""Design-space exploration: how to spend silicon on cache vs. SPM.

The paper fixes the cache per benchmark and sweeps the scratchpad; the
architect's real question is the *split*: for an on-chip area budget,
which (cache size, scratchpad size) pair — with CASA managing the
scratchpad — minimises energy?  This module enumerates the feasible
power-of-two configurations under a budget, runs the full pipeline on
each, and reports the frontier.

The replacement policy is a third axis (``policies=``, CLI
``--policies``): each policy gets its own profiling run, conflict
graph and allocations, and every design point is reported against the
offline-optimal (Belady) miss count of *its own* allocated layout —
the same probe stream replayed under OPT, so the bound is structurally
never beaten (see ``docs/POLICIES.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.energy.area import hierarchy_area
from repro.engine.grid import GridChunk
from repro.engine.parallel import PointSpec, map_points
from repro.errors import ConfigurationError, UnknownPolicyError
from repro.memory.cache import CacheConfig
from repro.memory.replacement import available_policies
from repro.traces.tracegen import TraceGenConfig
from repro.utils.tables import format_table


@dataclass
class DesignPoint:
    """One (cache, scratchpad, policy) configuration, evaluated.

    Attributes:
        cache_size: I-cache capacity in bytes (0 = no cache).
        spm_size: scratchpad capacity in bytes (0 = none).
        area: on-chip area (model units).
        energy: total instruction-memory energy (nJ) with CASA managing
            the scratchpad.
        misses: I-cache misses of the evaluated run.
        policy: replacement policy of the evaluated cache.
        opt_misses: Belady-optimal miss count for the point's allocated
            layout (``None`` when no policy axis was requested).  Always
            ``<= misses``: same image, same probe stream, offline
            optimum.
    """

    cache_size: int
    spm_size: int
    area: float
    energy: float
    misses: int
    policy: str = "lru"
    opt_misses: int | None = None


def _power_of_two_sizes(low: int, high: int) -> list[int]:
    sizes = []
    size = low
    while size <= high:
        sizes.append(size)
        size *= 2
    return sizes


def explore(
    workload_name: str,
    area_budget: float,
    cache_sizes: list[int] | None = None,
    spm_sizes: list[int] | None = None,
    line_size: int = 16,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    record=None,
    backend: str | None = None,
    grid: bool = True,
    policies: list[str] | None = None,
    associativity: int = 1,
) -> list[DesignPoint]:
    """Evaluate every feasible cache/SPM split under *area_budget*.

    A configuration is feasible if its modelled area fits the budget.
    Cache-less points are skipped (the trace generator's padding needs
    a line size; a pure-SPM machine is a different architecture), as
    are SPM-less points with no cache.

    On the default grid path each cache configuration contributes one
    :class:`~repro.engine.grid.GridChunk` per allocator covering its
    whole feasible scratchpad axis (the capacity steps share the
    conflict graph and warm-start each other's solves); ``grid=False``
    schedules one :class:`~repro.engine.parallel.PointSpec` per
    (cache, scratchpad) pair instead, with identical results.  Either
    unit shape fans through
    :func:`~repro.engine.parallel.map_points` with *jobs* workers;
    *record* collects per-stage hit/compute counters and *backend*
    picks the simulation backend for every point.

    Args:
        policies: replacement policies to cross with the cache sizes
            (any :func:`~repro.memory.replacement.available_policies`
            names).  Opens the policy axis: each policy is profiled
            and allocated independently, and every design point also
            carries the Belady-optimal miss count of its own layout
            (one extra reference-backend replay per point).  ``None``
            keeps the classic single-axis exploration (default LRU,
            no OPT bound).
        associativity: ways of every explored cache (1 = direct
            mapped, where all policies collapse — raise it to make
            the policy axis meaningful).

    Returns:
        Evaluated design points, sorted by energy (best first).

    Raises:
        ConfigurationError: if no configuration fits the budget.
        UnknownPolicyError: for a policy name outside the registry.
    """
    cache_sizes = cache_sizes or _power_of_two_sizes(128, 4096)
    spm_sizes = spm_sizes if spm_sizes is not None else \
        [0] + _power_of_two_sizes(64, 2048)
    policy_axis: list[str | None]
    if policies is None:
        policy_axis = [None]
    else:
        known = available_policies()
        for name in policies:
            if name not in known:
                raise UnknownPolicyError(name, known)
        policy_axis = list(dict.fromkeys(policies))

    units: list[PointSpec | GridChunk] = []
    metas: list[list[tuple[CacheConfig, TraceGenConfig, int, float]]] = []
    for cache_size in cache_sizes:
        for policy in policy_axis:
            cache = CacheConfig(
                size=cache_size, line_size=line_size,
                associativity=associativity,
                policy=policy if policy is not None else "lru",
            )
            feasible_spms = [
                spm for spm in spm_sizes
                if hierarchy_area(cache, spm) <= area_budget
            ]
            if not feasible_spms:
                continue
            tracegen = TraceGenConfig(
                line_size=line_size,
                max_trace_size=max(64, min(
                    (spm for spm in feasible_spms if spm), default=64
                )),
            )
            common = dict(
                workload=workload_name, scale=scale, seed=seed,
                cache=cache, tracegen=tracegen, backend=backend,
            )
            if grid:
                for algorithm in ("baseline", "casa"):
                    axis = tuple(
                        spm for spm in feasible_spms
                        if (spm == 0) == (algorithm == "baseline")
                    )
                    if not axis:
                        continue
                    units.append(GridChunk(
                        spm_sizes=axis, algorithm=algorithm, **common
                    ))
                    metas.append([
                        (cache, tracegen, spm,
                         hierarchy_area(cache, spm))
                        for spm in axis
                    ])
            else:
                for spm in feasible_spms:
                    units.append(PointSpec(
                        spm_size=spm,
                        algorithm="baseline" if spm == 0 else "casa",
                        **common,
                    ))
                    metas.append([
                        (cache, tracegen, spm,
                         hierarchy_area(cache, spm))
                    ])
    if not units:
        raise ConfigurationError(
            f"no cache/SPM configuration fits an area budget of "
            f"{area_budget}"
        )
    outcomes = map_points(units, jobs=jobs, record=record)
    with_bound = policies is not None
    opt_bound = _OptBound(workload_name, scale, seed) if with_bound \
        else None
    points = []
    for meta, outcome in zip(metas, outcomes):
        results = outcome if isinstance(outcome, list) else [outcome]
        for (cache, tracegen, spm, area), result in zip(meta, results):
            opt_misses = None
            if opt_bound is not None:
                opt_misses = opt_bound.misses(
                    cache, tracegen, spm, result.allocation
                )
            points.append(DesignPoint(
                cache_size=cache.size,
                spm_size=spm,
                area=area,
                energy=result.energy.total,
                misses=result.report.cache_misses,
                policy=cache.policy,
                opt_misses=opt_misses,
            ))
    points.sort(key=lambda p: p.energy)
    return points


class _OptBound:
    """Belady lower bounds for explored design points.

    One OPT-policy workbench per explored cache geometry (memoised);
    each design point's allocated layout is re-simulated through it on
    the reference backend — the only interpreter that can drive the
    next-use oracle — so the bound shares the point's exact probe
    stream and can never beat it unfairly.  The explicit
    ``backend="reference"`` keeps these replays out of the
    ``sim.kernel.fallbacks`` count.
    """

    def __init__(self, workload_name: str, scale: float,
                 seed: int) -> None:
        self._workload = workload_name
        self._scale = scale
        self._seed = seed
        self._benches: dict[tuple, object] = {}

    def _bench(self, cache: CacheConfig, tracegen: TraceGenConfig):
        # The point's exact tracegen matters: the allocation names the
        # memory objects that trace formation produced, so the OPT
        # replay must rebuild the identical layout.
        opt_cache = replace(cache, policy="opt")
        key = (opt_cache, tracegen)
        bench = self._benches.get(key)
        if bench is None:
            from repro.engine.runner import make_workbench

            _, bench = make_workbench(
                self._workload, self._scale, self._seed,
                cache=opt_cache, tracegen=tracegen,
                backend="reference",
            )
            self._benches[key] = bench
        return bench

    def misses(self, cache: CacheConfig, tracegen: TraceGenConfig,
               spm_size: int, allocation) -> int:
        """OPT miss count of *allocation*'s layout under *cache*."""
        bench = self._bench(cache, tracegen)
        result = bench.evaluate_spm(allocation, spm_size)
        return result.report.cache_misses


def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """Energy/area Pareto frontier of a set of design points.

    A point is on the frontier if no other point has both lower-or-equal
    area and lower-or-equal energy (with at least one strict).

    Returns:
        Frontier points sorted by area, ascending.
    """
    frontier: list[DesignPoint] = []
    for candidate in points:
        dominated = any(
            other.area <= candidate.area
            and other.energy <= candidate.energy
            and (other.area < candidate.area
                 or other.energy < candidate.energy)
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: p.area)
    return frontier


def render_design_points(points: list[DesignPoint],
                         top: int = 10) -> str:
    """Render the best *top* configurations as a table.

    When the points carry a policy axis, two extra columns report the
    policy and the Belady (OPT) miss floor of each point's layout.
    """
    with_policy = any(p.opt_misses is not None for p in points)
    headers = ["cache", "scratchpad", "area", "energy uJ",
               "I-cache misses"]
    if with_policy:
        headers += ["policy", "OPT floor"]
    rows = []
    for p in points[:top]:
        row = [f"{p.cache_size}B", f"{p.spm_size}B", f"{p.area:.0f}",
               f"{p.energy / 1e3:.2f}", p.misses]
        if with_policy:
            row += [p.policy,
                    p.opt_misses if p.opt_misses is not None else "-"]
        rows.append(row)
    return format_table(headers, rows,
                        title="best cache/scratchpad splits under "
                              "the area budget")
