"""Design-space exploration: how to spend silicon on cache vs. SPM.

The paper fixes the cache per benchmark and sweeps the scratchpad; the
architect's real question is the *split*: for an on-chip area budget,
which (cache size, scratchpad size) pair — with CASA managing the
scratchpad — minimises energy?  This module enumerates the feasible
power-of-two configurations under a budget, runs the full pipeline on
each, and reports the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.area import hierarchy_area
from repro.engine.grid import GridChunk
from repro.engine.parallel import PointSpec, map_points
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.traces.tracegen import TraceGenConfig
from repro.utils.tables import format_table


@dataclass
class DesignPoint:
    """One (cache, scratchpad) configuration, evaluated.

    Attributes:
        cache_size: I-cache capacity in bytes (0 = no cache).
        spm_size: scratchpad capacity in bytes (0 = none).
        area: on-chip area (model units).
        energy: total instruction-memory energy (nJ) with CASA managing
            the scratchpad.
        misses: I-cache misses of the evaluated run.
    """

    cache_size: int
    spm_size: int
    area: float
    energy: float
    misses: int


def _power_of_two_sizes(low: int, high: int) -> list[int]:
    sizes = []
    size = low
    while size <= high:
        sizes.append(size)
        size *= 2
    return sizes


def explore(
    workload_name: str,
    area_budget: float,
    cache_sizes: list[int] | None = None,
    spm_sizes: list[int] | None = None,
    line_size: int = 16,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    record=None,
    backend: str | None = None,
    grid: bool = True,
) -> list[DesignPoint]:
    """Evaluate every feasible cache/SPM split under *area_budget*.

    A configuration is feasible if its modelled area fits the budget.
    Cache-less points are skipped (the trace generator's padding needs
    a line size; a pure-SPM machine is a different architecture), as
    are SPM-less points with no cache.

    On the default grid path each cache configuration contributes one
    :class:`~repro.engine.grid.GridChunk` per allocator covering its
    whole feasible scratchpad axis (the capacity steps share the
    conflict graph and warm-start each other's solves); ``grid=False``
    schedules one :class:`~repro.engine.parallel.PointSpec` per
    (cache, scratchpad) pair instead, with identical results.  Either
    unit shape fans through
    :func:`~repro.engine.parallel.map_points` with *jobs* workers;
    *record* collects per-stage hit/compute counters and *backend*
    picks the simulation backend for every point.

    Returns:
        Evaluated design points, sorted by energy (best first).

    Raises:
        ConfigurationError: if no configuration fits the budget.
    """
    cache_sizes = cache_sizes or _power_of_two_sizes(128, 4096)
    spm_sizes = spm_sizes if spm_sizes is not None else \
        [0] + _power_of_two_sizes(64, 2048)

    units: list[PointSpec | GridChunk] = []
    metas: list[list[tuple[int, int, float]]] = []
    for cache_size in cache_sizes:
        cache = CacheConfig(size=cache_size, line_size=line_size,
                            associativity=1)
        feasible_spms = [
            spm for spm in spm_sizes
            if hierarchy_area(cache, spm) <= area_budget
        ]
        if not feasible_spms:
            continue
        tracegen = TraceGenConfig(
            line_size=line_size,
            max_trace_size=max(64, min(
                (spm for spm in feasible_spms if spm), default=64
            )),
        )
        common = dict(
            workload=workload_name, scale=scale, seed=seed,
            cache=cache, tracegen=tracegen, backend=backend,
        )
        if grid:
            for algorithm in ("baseline", "casa"):
                axis = tuple(
                    spm for spm in feasible_spms
                    if (spm == 0) == (algorithm == "baseline")
                )
                if not axis:
                    continue
                units.append(GridChunk(
                    spm_sizes=axis, algorithm=algorithm, **common
                ))
                metas.append([
                    (cache_size, spm, hierarchy_area(cache, spm))
                    for spm in axis
                ])
        else:
            for spm in feasible_spms:
                units.append(PointSpec(
                    spm_size=spm,
                    algorithm="baseline" if spm == 0 else "casa",
                    **common,
                ))
                metas.append(
                    [(cache_size, spm, hierarchy_area(cache, spm))]
                )
    if not units:
        raise ConfigurationError(
            f"no cache/SPM configuration fits an area budget of "
            f"{area_budget}"
        )
    outcomes = map_points(units, jobs=jobs, record=record)
    points = []
    for meta, outcome in zip(metas, outcomes):
        results = outcome if isinstance(outcome, list) else [outcome]
        for (cache_size, spm, area), result in zip(meta, results):
            points.append(DesignPoint(
                cache_size=cache_size,
                spm_size=spm,
                area=area,
                energy=result.energy.total,
                misses=result.report.cache_misses,
            ))
    points.sort(key=lambda p: p.energy)
    return points


def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """Energy/area Pareto frontier of a set of design points.

    A point is on the frontier if no other point has both lower-or-equal
    area and lower-or-equal energy (with at least one strict).

    Returns:
        Frontier points sorted by area, ascending.
    """
    frontier: list[DesignPoint] = []
    for candidate in points:
        dominated = any(
            other.area <= candidate.area
            and other.energy <= candidate.energy
            and (other.area < candidate.area
                 or other.energy < candidate.energy)
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: p.area)
    return frontier


def render_design_points(points: list[DesignPoint],
                         top: int = 10) -> str:
    """Render the best *top* configurations as a table."""
    headers = ["cache", "scratchpad", "area", "energy uJ",
               "I-cache misses"]
    rows = [
        [f"{p.cache_size}B", f"{p.spm_size}B", f"{p.area:.0f}",
         f"{p.energy / 1e3:.2f}", p.misses]
        for p in points[:top]
    ]
    return format_table(headers, rows,
                        title="best cache/scratchpad splits under "
                              "the area budget")
