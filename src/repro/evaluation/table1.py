"""Table 1 — overall energy savings across the benchmark suite.

For each benchmark (adpcm, g721, mpeg) and each scratchpad / loop-cache
size, the paper reports the absolute instruction-memory energy of

* the scratchpad allocated by CASA,
* the scratchpad allocated by Steinke et al.,
* the loop cache preloaded by Ross's heuristic,

plus the percentage improvements "CASA vs. Steinke" and "SP (CASA) vs.
LC", with per-benchmark averages (paper: 29.0/8.2/28.0 % vs. Steinke and
44.1/19.7/26.0 % vs. the loop cache for adpcm/g721/mpeg).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.reporting import microjoules, percent
from repro.evaluation.sweep import run_sweep
from repro.utils.tables import format_table
from repro.workloads.registry import get_workload

#: Benchmarks in the paper's table.
DEFAULT_BENCHMARKS = ("adpcm", "g721", "mpeg")


@dataclass
class Table1Row:
    """One (benchmark, size) line of the table."""

    benchmark: str
    size: int
    casa_energy: float      # nJ
    steinke_energy: float   # nJ
    ross_energy: float      # nJ

    @property
    def casa_vs_steinke(self) -> float:
        """Energy improvement of CASA over Steinke, percent."""
        return (1.0 - self.casa_energy / self.steinke_energy) * 100.0

    @property
    def casa_vs_loop_cache(self) -> float:
        """Energy improvement of CASA's scratchpad over the loop cache."""
        return (1.0 - self.casa_energy / self.ross_energy) * 100.0


@dataclass
class Table1Benchmark:
    """All sizes of one benchmark plus its averages."""

    benchmark: str
    code_size: int
    rows: list[Table1Row]

    @property
    def average_vs_steinke(self) -> float:
        """Per-benchmark average improvement vs. Steinke (percent)."""
        return sum(r.casa_vs_steinke for r in self.rows) / len(self.rows)

    @property
    def average_vs_loop_cache(self) -> float:
        """Per-benchmark average improvement vs. the loop cache."""
        return sum(r.casa_vs_loop_cache for r in self.rows) / len(self.rows)


@dataclass
class Table1Result:
    """The full table."""

    benchmarks: list[Table1Benchmark]

    @property
    def overall_vs_steinke(self) -> float:
        """Grand average improvement vs. Steinke (paper: 21.1 %)."""
        rows = [r for b in self.benchmarks for r in b.rows]
        return sum(r.casa_vs_steinke for r in rows) / len(rows)

    @property
    def overall_vs_loop_cache(self) -> float:
        """Grand average improvement vs. the loop cache (paper: 28.6 %)."""
        rows = [r for b in self.benchmarks for r in b.rows]
        return sum(r.casa_vs_loop_cache for r in rows) / len(rows)

    def benchmark(self, name: str) -> Table1Benchmark:
        """Result block of one benchmark."""
        for block in self.benchmarks:
            if block.benchmark == name:
                return block
        raise KeyError(name)

    def render(self) -> str:
        """Text rendering in the paper's layout."""
        headers = [
            "Benchmark", "Mem Size (B)",
            "SP (CASA) uJ", "SP (Steinke) uJ", "LC (Ross) uJ",
            "CASA vs. Steinke %", "SP (CASA) vs. LC %",
        ]
        rows: list[list[str]] = []
        for block in self.benchmarks:
            label = f"{block.benchmark} ({block.code_size}B)"
            for index, row in enumerate(block.rows):
                rows.append([
                    label if index == 0 else "",
                    str(row.size),
                    microjoules(row.casa_energy),
                    microjoules(row.steinke_energy),
                    microjoules(row.ross_energy),
                    percent(row.casa_vs_steinke),
                    percent(row.casa_vs_loop_cache),
                ])
            rows.append([
                "", "avg", "", "", "",
                percent(block.average_vs_steinke),
                percent(block.average_vs_loop_cache),
            ])
        rows.append([
            "overall", "", "", "", "",
            percent(self.overall_vs_steinke),
            percent(self.overall_vs_loop_cache),
        ])
        return format_table(headers, rows,
                            title="Table 1 - overall energy savings")


def run_table1(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    record=None,
    backend: str | None = None,
    grid: bool = True,
) -> Table1Result:
    """Reproduce table 1 over the registered benchmarks.

    ``jobs`` fans each benchmark's work units across worker
    processes; ``record`` (a
    :class:`~repro.engine.runner.RunRecord`) collects the engine's
    per-stage hit/compute counters; ``backend`` picks the simulation
    backend; ``grid=False`` trades the grid path for per-point
    scheduling (identical results).
    """
    blocks: list[Table1Benchmark] = []
    for name in benchmarks:
        workload = get_workload(name, scale=scale)
        points = run_sweep(
            name, algorithms=("casa", "steinke", "ross"),
            scale=scale, seed=seed, jobs=jobs, record=record,
            backend=backend, grid=grid,
        )
        rows = [
            Table1Row(
                benchmark=name,
                size=point.spm_size,
                casa_energy=point.energy("casa"),
                steinke_energy=point.energy("steinke"),
                ross_energy=point.energy("ross"),
            )
            for point in points
        ]
        blocks.append(
            Table1Benchmark(
                benchmark=name,
                code_size=workload.program.size,
                rows=rows,
            )
        )
    return Table1Result(benchmarks=blocks)
