"""One-shot reproduction report: every paper exhibit in one document.

``python -m repro report`` (or :func:`generate_report`) runs figure 4,
figure 5 and table 1 and renders them — tables plus bar charts — into a
single markdown-ish text document, with the paper's reference numbers
alongside for comparison.
"""

from __future__ import annotations

import time

from repro.evaluation.fig4 import run_fig4
from repro.evaluation.fig5 import run_fig5
from repro.evaluation.table1 import run_table1

#: The paper's headline numbers, quoted next to the measurements.
PAPER_REFERENCE = {
    "fig4_average": 28.0,
    "fig5_average": 26.0,
    "table1_vs_steinke": 21.1,
    "table1_vs_loop_cache": 28.6,
}


def generate_report(scale: float = 1.0, seed: int = 0,
                    charts: bool = True) -> str:
    """Run all three exhibits and render the comparison document.

    Args:
        scale: workload trip-count multiplier.
        seed: executor seed.
        charts: include ASCII bar charts for the figures.

    Returns:
        The report as a single string.
    """
    started = time.time()
    fig4 = run_fig4(scale=scale, seed=seed)
    fig5 = run_fig5(scale=scale, seed=seed)
    table1 = run_table1(scale=scale, seed=seed)
    elapsed = time.time() - started

    sections: list[str] = []
    sections.append("# CASA reproduction report")
    sections.append(
        f"(workload scale {scale}, seed {seed}, generated in "
        f"{elapsed:.0f}s)"
    )

    sections.append("\n## Figure 4 - CASA vs. Steinke (mpeg)\n")
    sections.append(fig4.render())
    if charts:
        sections.append("")
        sections.append(fig4.render_chart())
    sections.append(
        f"\nmeasured average energy improvement: "
        f"{fig4.average_energy_improvement:.1f}%  "
        f"(paper: {PAPER_REFERENCE['fig4_average']:.1f}%)"
    )

    sections.append("\n## Figure 5 - scratchpad vs. loop cache "
                    "(mpeg)\n")
    sections.append(fig5.render())
    if charts:
        sections.append("")
        sections.append(fig5.render_chart())
    sections.append(
        f"\nmeasured average energy improvement: "
        f"{fig5.average_energy_improvement:.1f}%  "
        f"(paper: {PAPER_REFERENCE['fig5_average']:.1f}%)"
    )

    sections.append("\n## Table 1 - overall energy savings\n")
    sections.append(table1.render())
    sections.append(
        f"\noverall: {table1.overall_vs_steinke:.1f}% vs. Steinke "
        f"(paper: {PAPER_REFERENCE['table1_vs_steinke']:.1f}%), "
        f"{table1.overall_vs_loop_cache:.1f}% vs. loop cache "
        f"(paper: {PAPER_REFERENCE['table1_vs_loop_cache']:.1f}%)"
    )

    sections.append(
        "\nShapes to check: CASA below 100% on scratchpad accesses "
        "and above on I-cache accesses (figure 4); the loop cache "
        "saturating at 4 regions while the scratchpad advantage "
        "widens (figure 5); positive per-benchmark averages with "
        "occasional negative single entries (table 1)."
    )
    return "\n".join(sections)
