"""Figure 5 — CASA scratchpad vs. Ross's preloaded loop cache.

The paper plots, for the same cache and sizes as figure 4, the
scratchpad system (allocated by CASA) as a percentage of the loop-cache
system (allocated by Ross's heuristic, = 100 %):

* at small sizes the loop cache serves *more* accesses than the
  scratchpad (four whole regions fit);
* as the size grows the loop cache saturates at its fixed number of
  preloadable regions while the scratchpad keeps accepting objects, so
  scratchpad accesses overtake it and I-cache misses drop well below;
* energy ends up ~26 % lower on average in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import ExperimentResult
from repro.evaluation.reporting import series_table
from repro.evaluation.sweep import run_sweep

#: Sizes shown in the paper's figure.
DEFAULT_SIZES = (128, 256, 512, 1024)


@dataclass
class Fig5Row:
    """Scratchpad-as-percent-of-loop-cache at one size."""

    size: int
    casa: ExperimentResult
    ross: ExperimentResult

    @staticmethod
    def _pct(value: float, base: float) -> float:
        return 100.0 if base == 0 else 100.0 * value / base

    @property
    def local_access_pct(self) -> float:
        """Scratchpad accesses as % of loop-cache accesses."""
        return self._pct(self.casa.report.spm_accesses,
                         self.ross.report.lc_accesses)

    @property
    def icache_access_pct(self) -> float:
        """I-cache accesses, scratchpad system as % of loop-cache system."""
        return self._pct(self.casa.report.cache_accesses,
                         self.ross.report.cache_accesses)

    @property
    def icache_miss_pct(self) -> float:
        """I-cache misses, scratchpad system as % of loop-cache system."""
        return self._pct(self.casa.report.cache_misses,
                         self.ross.report.cache_misses)

    @property
    def energy_pct(self) -> float:
        """Energy, scratchpad system as % of loop-cache system."""
        return self._pct(self.casa.energy.total, self.ross.energy.total)


@dataclass
class Fig5Result:
    """The full figure: one row per size."""

    workload: str
    rows: list[Fig5Row]

    @property
    def sizes(self) -> tuple[int, ...]:
        """Scratchpad / loop-cache sizes, ascending."""
        return tuple(row.size for row in self.rows)

    @property
    def average_energy_improvement(self) -> float:
        """Mean energy reduction of the scratchpad system in percent."""
        return sum(100.0 - row.energy_pct for row in self.rows) / len(
            self.rows
        )

    def _series(self) -> dict[str, list[float]]:
        return {
            "SPM accesses (vs LC)": [r.local_access_pct
                                     for r in self.rows],
            "I-cache accesses": [r.icache_access_pct for r in self.rows],
            "I-cache misses": [r.icache_miss_pct for r in self.rows],
            "Energy": [r.energy_pct for r in self.rows],
        }

    def render(self) -> str:
        """Text rendering of the figure's series."""
        return series_table(
            f"Figure 5 - scratchpad (CASA) vs. loop cache (Ross) on "
            f"{self.workload} (loop cache = 100%)",
            "metric (% of loop cache)",
            self.sizes,
            self._series(),
        )

    def render_chart(self) -> str:
        """Grouped-bar rendering (the paper's visual form)."""
        from repro.utils.barchart import horizontal_bars
        return horizontal_bars(
            [f"{size}B" for size in self.sizes], self._series()
        )


def run_fig5(
    workload: str = "mpeg",
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    record=None,
    backend: str | None = None,
    grid: bool = True,
) -> Fig5Result:
    """Reproduce figure 5 (optionally on another workload or scale).

    ``jobs`` fans the sweep's work units across worker processes;
    ``record`` (a :class:`~repro.engine.runner.RunRecord`) collects the
    engine's per-stage hit/compute counters; ``backend`` picks the
    simulation backend; ``grid=False`` trades the grid path for
    per-point scheduling (identical results).
    """
    points = run_sweep(
        workload, sizes, algorithms=("casa", "ross"),
        scale=scale, seed=seed, jobs=jobs, record=record,
        backend=backend, grid=grid,
    )
    rows = [
        Fig5Row(
            size=point.spm_size,
            casa=point.result("casa"),
            ross=point.result("ross"),
        )
        for point in points
    ]
    return Fig5Result(workload=workload, rows=rows)
