"""Text rendering of the reproduced figures and tables."""

from __future__ import annotations

from typing import Sequence

from repro.utils.tables import format_table


def percent(value: float) -> str:
    """Format a percentage the way the paper's table does (one decimal)."""
    return f"{value:.1f}"


def microjoules(nanojoules: float) -> str:
    """Format an energy in µJ with two decimals (table 1 style)."""
    return f"{nanojoules / 1e3:.2f}"


def series_table(
    title: str,
    column_label: str,
    sizes: Sequence[int],
    series: dict[str, Sequence[float]],
) -> str:
    """Render figure-style percentage series: one row per metric.

    Args:
        title: caption.
        column_label: heading of the first column (metric names).
        sizes: the scratchpad sizes (column headings).
        series: metric name -> one value per size (percent).
    """
    headers = [column_label] + [f"{size}B" for size in sizes]
    rows = []
    for metric, values in series.items():
        if len(values) != len(sizes):
            raise ValueError(
                f"metric {metric!r} has {len(values)} values for "
                f"{len(sizes)} sizes"
            )
        rows.append([metric] + [percent(value) for value in values])
    return format_table(headers, rows, title=title)
