"""Instruction and opcode definitions.

We model a 32-bit RISC core in ARM (not Thumb) state: every instruction
occupies four bytes.  The paper's ARM7T experiments fetch one instruction
word per cycle from the instruction-memory hierarchy, so the fetch stream
is fully determined by instruction sizes and control flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Size of every instruction in bytes (ARM state, 32-bit fixed width).
INSTRUCTION_SIZE = 4


class Opcode(enum.Enum):
    """Coarse instruction classes.

    Only the control-flow distinction matters to the executor and the
    trace generator; ALU/LOAD/STORE exist so synthetic code has realistic
    composition and so NOP padding is distinguishable from real work.
    """

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    #: Conditional branch: may fall through or go to its target.
    BRANCH = "branch"
    #: Unconditional jump: always transfers control to its target.
    JUMP = "jump"
    #: Function call (branch-with-link).
    CALL = "call"
    #: Function return.
    RETURN = "return"
    #: No-operation, used to pad traces to cache-line boundaries.
    NOP = "nop"

    @property
    def is_control_flow(self) -> bool:
        """Whether the opcode can redirect the program counter."""
        return self in _CONTROL_FLOW

    @property
    def is_terminator(self) -> bool:
        """Whether the opcode always ends a basic block."""
        return self in _TERMINATORS


_CONTROL_FLOW = {Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RETURN}
_TERMINATORS = {Opcode.BRANCH, Opcode.JUMP, Opcode.RETURN}


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Attributes:
        opcode: coarse instruction class.
        target: symbolic control-flow target (a basic-block or function
            name) for branch/jump/call instructions, ``None`` otherwise.
        mnemonic: free-form text used only in disassembly listings.
    """

    opcode: Opcode
    target: str | None = None
    mnemonic: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.opcode in (Opcode.BRANCH, Opcode.JUMP, Opcode.CALL):
            if self.target is None:
                raise ValueError(f"{self.opcode.value} requires a target")
        elif self.target is not None:
            raise ValueError(f"{self.opcode.value} must not carry a target")

    @property
    def size(self) -> int:
        """Instruction size in bytes (constant in ARM state)."""
        return INSTRUCTION_SIZE

    @property
    def is_nop(self) -> bool:
        """Whether this instruction is padding."""
        return self.opcode is Opcode.NOP

    def __str__(self) -> str:
        if self.mnemonic:
            return self.mnemonic
        if self.target is not None:
            return f"{self.opcode.value} {self.target}"
        return self.opcode.value


def make_alu(mnemonic: str = "") -> Instruction:
    """Create a generic data-processing instruction."""
    return Instruction(Opcode.ALU, mnemonic=mnemonic)


def make_load(mnemonic: str = "") -> Instruction:
    """Create a data-memory load instruction."""
    return Instruction(Opcode.LOAD, mnemonic=mnemonic)


def make_store(mnemonic: str = "") -> Instruction:
    """Create a data-memory store instruction."""
    return Instruction(Opcode.STORE, mnemonic=mnemonic)


def make_branch(target: str, mnemonic: str = "") -> Instruction:
    """Create a conditional branch to the basic block named *target*."""
    return Instruction(Opcode.BRANCH, target=target, mnemonic=mnemonic)


def make_jump(target: str, mnemonic: str = "") -> Instruction:
    """Create an unconditional jump to the basic block named *target*."""
    return Instruction(Opcode.JUMP, target=target, mnemonic=mnemonic)


def make_call(target: str, mnemonic: str = "") -> Instruction:
    """Create a call to the function named *target*."""
    return Instruction(Opcode.CALL, target=target, mnemonic=mnemonic)


def make_return(mnemonic: str = "") -> Instruction:
    """Create a function-return instruction."""
    return Instruction(Opcode.RETURN, mnemonic=mnemonic)


def make_nop() -> Instruction:
    """Create a padding NOP."""
    return Instruction(Opcode.NOP)
