"""A minimal ARM7-like instruction-set model.

The CASA algorithm never inspects operands — it needs instruction *sizes*
(to compute memory-object sizes and cache-line occupancy) and control-flow
*kinds* (to execute a CFG and to know which blocks end in unconditional
jumps).  This package models exactly that.
"""

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Opcode,
    make_alu,
    make_branch,
    make_call,
    make_jump,
    make_load,
    make_nop,
    make_return,
    make_store,
)

__all__ = [
    "INSTRUCTION_SIZE",
    "Instruction",
    "Opcode",
    "make_alu",
    "make_branch",
    "make_call",
    "make_jump",
    "make_load",
    "make_nop",
    "make_return",
    "make_store",
]
