"""Metrics registry: named counters, gauges and histograms.

Instrumented code reports *what happened* — cache hits simulated,
simplex pivots performed, branch-and-bound nodes explored — through
three primitive types:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — count/sum/min/max of observed values
  (``observe``) plus a fixed log-bucket sketch that answers
  streaming percentile queries (:meth:`Histogram.percentile`).

A :class:`MetricsRegistry` creates metrics on first use, snapshots
them as a plain JSON-able dict (:meth:`MetricsRegistry.snapshot`), and
merges snapshots from worker processes (:meth:`MetricsRegistry.merge`)
— counters and histograms accumulate, gauges take the incoming value.

Like tracing, metrics are disabled by default: the module-level
helpers :func:`inc`, :func:`set_gauge` and :func:`observe` write to
the *active* registry installed via :func:`set_registry` and cost one
global read and one comparison when none is installed.  The engine's
:class:`~repro.engine.runner.RunRecord` keeps its per-run stage
counters in a private, always-on registry of its own — same machinery,
different lifetime.
"""

from __future__ import annotations

import math
import threading
from typing import Any

#: Snapshot ``type`` tags, one per metric class.
METRIC_TYPES = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to the total."""
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-written value (e.g. a size or a configuration knob)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {"type": "gauge", "value": self.value}


#: Natural log of the histogram bucket base ``2**(1/8)`` (≈ 1.0905),
#: giving ~9% relative resolution per bucket across the full float range.
BUCKET_LOG_BASE = math.log(2.0) / 8.0


class Histogram:
    """Count/sum/min/max summary plus a log-bucket percentile sketch.

    Positive observations land in fixed geometric buckets of base
    ``2**(1/8)`` (index ``floor(log(v) / BUCKET_LOG_BASE)``); zero and
    negative values are tallied separately in ``zeros``.  Because the
    bucket for a value is a pure function of the value, merging shard
    histograms (worker processes) yields *exactly* the same sketch as
    observing every value in one registry — percentiles are mergeable.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "zeros",
                 "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.zeros = 0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            index = math.floor(math.log(value) / BUCKET_LOG_BASE)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.zeros += 1

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, data: dict[str, Any]) -> None:
        """Fold a histogram :meth:`snapshot` dict into this histogram.

        Empty snapshots are no-ops.  Snapshots that predate the
        percentile sketch carry no ``zeros``/``buckets`` keys; their
        count/total/min/max still fold in.
        """
        count = int(data["count"])
        if not count:
            return
        self.count += count
        self.total += float(data["total"])
        self.minimum = min(self.minimum, float(data["min"]))
        self.maximum = max(self.maximum, float(data["max"]))
        self.zeros += int(data.get("zeros", 0))
        for raw_index, n in data.get("buckets", {}).items():
            index = int(raw_index)
            self.buckets[index] = self.buckets.get(index, 0) + int(n)

    def percentile(self, q: float) -> float:
        """The *q*-quantile (``0 <= q <= 1``) from the bucket sketch.

        Returns the geometric midpoint of the bucket holding the
        rank-``ceil(q * count)`` observation, clamped to the exact
        observed ``[min, max]`` range; 0 when the histogram is empty.
        Accurate to the ~9% bucket resolution.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.zeros
        if rank <= cumulative:
            return min(self.minimum, 0.0)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if rank <= cumulative:
                midpoint = math.exp((index + 0.5) * BUCKET_LOG_BASE)
                return min(max(midpoint, self.minimum), self.maximum)
        return self.maximum

    def summary(self) -> dict[str, float]:
        """Count/mean/min/max plus p50/p90/p99 as a plain dict."""
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "zeros": self.zeros,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Thread-safe create-on-first-use registry of named metrics.

    Metric names are dotted, lower-case paths (``ilp.bb.nodes``,
    ``sim.cache_misses``); ``docs/OBSERVABILITY.md`` lists the
    conventions and the names the built-in instrumentation emits.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __getstate__(self) -> dict[str, Any]:
        """Pickle as a snapshot (locks do not cross processes)."""
        return {"snapshot": self.snapshot()}

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Rebuild from a snapshot with a fresh lock."""
        self.__init__()
        self.merge(state["snapshot"])

    def _get(self, name: str, factory: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name*, created on first use."""
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        """Sorted names of every registered metric."""
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str, default: float = 0.0) -> float:
        """Counter/gauge value (or histogram total) of *name*.

        Returns *default* when the metric does not exist — convenient
        for reports over runs that skipped an instrumented path.
        """
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def counters(self) -> dict[str, float]:
        """Name → value of every registered counter, sorted by name."""
        with self._lock:
            return {
                name: metric.value
                for name, metric in sorted(self._metrics.items())
                if isinstance(metric, Counter)
            }

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as ``{name: {"type": ..., ...}}`` (JSON-able)."""
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
            }

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins, matching their semantics).
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(float(data["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(data["value"]))
            elif kind == "histogram":
                self.histogram(name).merge(data)
            else:
                raise ValueError(
                    f"unknown metric type {kind!r} for {name!r}"
                )

    def render(self) -> str:
        """Human-readable table of every metric, sorted by name."""
        rows = []
        for name, data in self.snapshot().items():
            if data["type"] == "histogram":
                metric = self._metrics[name]
                detail = (
                    f"count={data['count']} total={data['total']:g} "
                    f"min={data['min']:g} max={data['max']:g} "
                    f"p50={metric.percentile(0.5):g} "
                    f"p99={metric.percentile(0.99):g}"
                )
            else:
                detail = f"{data['value']:g}"
            rows.append(f"  {name:<32} {detail}")
        if not rows:
            return "metrics: (none recorded)"
        return "\n".join(["metrics:"] + rows)


# -- process-wide active registry ---------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def set_registry(registry: MetricsRegistry | None
                 ) -> MetricsRegistry | None:
    """Install (or, with ``None``, remove) the active registry.

    Returns the previously active registry so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def active_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when metrics are disabled."""
    return _ACTIVE


def metrics_enabled() -> bool:
    """Whether a registry is currently installed."""
    return _ACTIVE is not None


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter *name* on the active registry (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* on the active registry (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe *value* on histogram *name* (no-op if none active)."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name).observe(value)
