"""Metrics registry: named counters, gauges and histograms.

Instrumented code reports *what happened* — cache hits simulated,
simplex pivots performed, branch-and-bound nodes explored — through
three primitive types:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — count/sum/min/max of observed values
  (``observe``).

A :class:`MetricsRegistry` creates metrics on first use, snapshots
them as a plain JSON-able dict (:meth:`MetricsRegistry.snapshot`), and
merges snapshots from worker processes (:meth:`MetricsRegistry.merge`)
— counters and histograms accumulate, gauges take the incoming value.

Like tracing, metrics are disabled by default: the module-level
helpers :func:`inc`, :func:`set_gauge` and :func:`observe` write to
the *active* registry installed via :func:`set_registry` and cost one
global read and one comparison when none is installed.  The engine's
:class:`~repro.engine.runner.RunRecord` keeps its per-run stage
counters in a private, always-on registry of its own — same machinery,
different lifetime.
"""

from __future__ import annotations

import threading
from typing import Any

#: Snapshot ``type`` tags, one per metric class.
METRIC_TYPES = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to the total."""
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-written value (e.g. a size or a configuration knob)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Count/sum/min/max summary of observed values."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form for :meth:`MetricsRegistry.snapshot`."""
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class MetricsRegistry:
    """Thread-safe create-on-first-use registry of named metrics.

    Metric names are dotted, lower-case paths (``ilp.bb.nodes``,
    ``sim.cache_misses``); ``docs/OBSERVABILITY.md`` lists the
    conventions and the names the built-in instrumentation emits.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __getstate__(self) -> dict[str, Any]:
        """Pickle as a snapshot (locks do not cross processes)."""
        return {"snapshot": self.snapshot()}

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Rebuild from a snapshot with a fresh lock."""
        self.__init__()
        self.merge(state["snapshot"])

    def _get(self, name: str, factory: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name*, created on first use."""
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        """Sorted names of every registered metric."""
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str, default: float = 0.0) -> float:
        """Counter/gauge value (or histogram total) of *name*.

        Returns *default* when the metric does not exist — convenient
        for reports over runs that skipped an instrumented path.
        """
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as ``{name: {"type": ..., ...}}`` (JSON-able)."""
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
            }

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins, matching their semantics).
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(float(data["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(data["value"]))
            elif kind == "histogram":
                histogram = self.histogram(name)
                count = int(data["count"])
                if count:
                    histogram.count += count
                    histogram.total += float(data["total"])
                    histogram.minimum = min(histogram.minimum,
                                            float(data["min"]))
                    histogram.maximum = max(histogram.maximum,
                                            float(data["max"]))
            else:
                raise ValueError(
                    f"unknown metric type {kind!r} for {name!r}"
                )

    def render(self) -> str:
        """Human-readable table of every metric, sorted by name."""
        rows = []
        for name, data in self.snapshot().items():
            if data["type"] == "histogram":
                detail = (
                    f"count={data['count']} total={data['total']:g} "
                    f"min={data['min']:g} max={data['max']:g}"
                )
            else:
                detail = f"{data['value']:g}"
            rows.append(f"  {name:<32} {detail}")
        if not rows:
            return "metrics: (none recorded)"
        return "\n".join(["metrics:"] + rows)


# -- process-wide active registry ---------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def set_registry(registry: MetricsRegistry | None
                 ) -> MetricsRegistry | None:
    """Install (or, with ``None``, remove) the active registry.

    Returns the previously active registry so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def active_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when metrics are disabled."""
    return _ACTIVE


def metrics_enabled() -> bool:
    """Whether a registry is currently installed."""
    return _ACTIVE is not None


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter *name* on the active registry (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* on the active registry (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe *value* on histogram *name* (no-op if none active)."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name).observe(value)
