"""Observability: tracing, metrics, events, reports and live telemetry.

Eight small modules turn the experiment engine from a black box into a
design-space-exploration tool you can see inside:

* :mod:`repro.obs.trace` — nestable spans with wall/CPU time and
  attributes, collected thread-safely and exported as Chrome-trace
  JSON (``chrome://tracing`` / Perfetto) or JSONL event logs;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms (simulated cache hits, simplex pivots, branch-and-bound
  nodes...) with mergeable log-bucket percentile sketches and
  snapshot/merge for worker processes;
* :mod:`repro.obs.events` — structured cache eviction/miss event
  streams (bounded ring + reservoir sample) and the replay oracle that
  cross-checks the conflict graph's ``m_ij`` (``repro audit``);
* :mod:`repro.obs.report` — per-run reports (stage timings, cache hit
  rates, solver convergence, percentile tables, slowest design points)
  rendered from a ``--trace`` run file;
* :mod:`repro.obs.history` — JSONL benchmark snapshots and baseline
  comparison (``repro bench record`` / ``repro bench compare``);
* :mod:`repro.obs.live` — the live telemetry pipeline: a thread-safe
  :class:`~repro.obs.live.ProgressBus` fed by the engine, worker
  heartbeats with stall detection, the ``--watch`` single-line
  renderer, and periodic ``telemetry.jsonl`` / Prometheus exporters;
* :mod:`repro.obs.logging` — structured JSONL logs with a per-run
  ``run_id`` threaded through the engine, workers and resilience
  retries (``--log FILE``);
* :mod:`repro.obs.profiler` — a sampling wall-clock profiler emitting
  collapsed-stack output (``--profile-sample FILE``).

Tracing, metrics, event recording and live telemetry are all
**disabled by default**: instrumented call sites go through
:func:`~repro.obs.trace.span`, :func:`~repro.obs.metrics.inc`-style
helpers, :func:`~repro.obs.live.note_unit_finished`-style hooks and
the cache's bound recorder, costing one global read and one comparison
when nothing is installed.  The CLI's ``--trace FILE``, ``--metrics``,
``--events``, ``--watch``, ``--telemetry FILE``, ``--log FILE`` and
``--profile-sample FILE`` flags (on ``sweep``, ``fig4``, ``fig5``,
``table1`` and ``dse``) install them for one run; see
``docs/OBSERVABILITY.md`` for the full guide.
"""

from repro.obs.events import (
    EVENT_KINDS,
    AuditMismatch,
    AuditResult,
    CacheEvent,
    EventRecorder,
    ReplayedAttribution,
    active_recorder,
    audit_conflict_graph,
    audit_workload,
    recording_enabled,
    replay_attribution,
    set_recorder,
)
from repro.obs.history import (
    ComparePolicy,
    CompareResult,
    Regression,
    Snapshot,
    append_snapshot,
    collect_suite_metrics,
    compare_snapshots,
    load_history,
    machine_fingerprint,
    record_suite,
)
from repro.obs.live import (
    DEFAULT_STALL_TIMEOUT,
    HeartbeatWriter,
    ProgressBus,
    ProgressSnapshot,
    TelemetryWriter,
    WatchRenderer,
    WorkerHealth,
    active_sink,
    format_watch_line,
    note_phase,
    note_total,
    note_unit_finished,
    note_unit_started,
    render_prometheus,
    set_progress_sink,
)
from repro.obs.logging import (
    RunLog,
    active_log_spec,
    active_run_id,
    active_run_log,
    install_from_spec,
    log_event,
    new_run_id,
    set_run_log,
)
from repro.obs.metrics import (
    METRIC_TYPES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
    set_registry,
)
from repro.obs.profiler import (
    DEFAULT_INTERVAL,
    SamplingProfiler,
)
from repro.obs.report import (
    POINT_SPAN,
    RUN_SCHEMA,
    RunData,
    build_run_payload,
    load_run,
    render_run_report,
    summarise_run,
    write_run_file,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_CATEGORY,
    SpanEvent,
    TraceCollector,
    get_collector,
    set_collector,
    span,
    tracing_enabled,
)

__all__ = [
    "EVENT_KINDS",
    "AuditMismatch",
    "AuditResult",
    "CacheEvent",
    "EventRecorder",
    "ReplayedAttribution",
    "active_recorder",
    "audit_conflict_graph",
    "audit_workload",
    "recording_enabled",
    "replay_attribution",
    "set_recorder",
    "ComparePolicy",
    "CompareResult",
    "Regression",
    "Snapshot",
    "append_snapshot",
    "collect_suite_metrics",
    "compare_snapshots",
    "load_history",
    "machine_fingerprint",
    "record_suite",
    "DEFAULT_STALL_TIMEOUT",
    "HeartbeatWriter",
    "ProgressBus",
    "ProgressSnapshot",
    "TelemetryWriter",
    "WatchRenderer",
    "WorkerHealth",
    "active_sink",
    "format_watch_line",
    "note_phase",
    "note_total",
    "note_unit_finished",
    "note_unit_started",
    "render_prometheus",
    "set_progress_sink",
    "RunLog",
    "active_log_spec",
    "active_run_id",
    "active_run_log",
    "install_from_spec",
    "log_event",
    "new_run_id",
    "set_run_log",
    "DEFAULT_INTERVAL",
    "SamplingProfiler",
    "METRIC_TYPES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "inc",
    "metrics_enabled",
    "observe",
    "set_gauge",
    "set_registry",
    "POINT_SPAN",
    "RUN_SCHEMA",
    "RunData",
    "build_run_payload",
    "load_run",
    "render_run_report",
    "summarise_run",
    "write_run_file",
    "NULL_SPAN",
    "TRACE_CATEGORY",
    "SpanEvent",
    "TraceCollector",
    "get_collector",
    "set_collector",
    "span",
    "tracing_enabled",
]
