"""Observability: structured tracing, metrics, and run reports.

Three small modules turn the experiment engine from a black box into a
design-space-exploration tool you can see inside:

* :mod:`repro.obs.trace` — nestable spans with wall/CPU time and
  attributes, collected thread-safely and exported as Chrome-trace
  JSON (``chrome://tracing`` / Perfetto) or JSONL event logs;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms (simulated cache hits, simplex pivots, branch-and-bound
  nodes...) with snapshot/merge for worker processes;
* :mod:`repro.obs.report` — per-run reports (stage timings, cache hit
  rates, slowest design points) rendered from a ``--trace`` run file.

Both tracing and metrics are **disabled by default**: instrumented
call sites go through :func:`~repro.obs.trace.span` and
:func:`~repro.obs.metrics.inc`-style helpers that cost one global read
and one comparison when no collector/registry is installed.  The CLI's
``--trace FILE`` and ``--metrics`` flags (on ``sweep``, ``fig4``,
``fig5``, ``table1`` and ``dse``) install them for one run; see
``docs/OBSERVABILITY.md`` for the full guide.
"""

from repro.obs.metrics import (
    METRIC_TYPES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
    set_registry,
)
from repro.obs.report import (
    POINT_SPAN,
    RUN_SCHEMA,
    RunData,
    build_run_payload,
    load_run,
    render_run_report,
    summarise_run,
    write_run_file,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_CATEGORY,
    SpanEvent,
    TraceCollector,
    get_collector,
    set_collector,
    span,
    tracing_enabled,
)

__all__ = [
    "METRIC_TYPES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "inc",
    "metrics_enabled",
    "observe",
    "set_gauge",
    "set_registry",
    "POINT_SPAN",
    "RUN_SCHEMA",
    "RunData",
    "build_run_payload",
    "load_run",
    "render_run_report",
    "summarise_run",
    "write_run_file",
    "NULL_SPAN",
    "TRACE_CATEGORY",
    "SpanEvent",
    "TraceCollector",
    "get_collector",
    "set_collector",
    "span",
    "tracing_enabled",
]
