"""Cache event auditing: structured eviction/miss streams and the
conflict-graph oracle.

The simulator's aggregate counters say *how many* conflict misses
happened; this module records *which* ones.  When a recorder is
installed (:func:`set_recorder`), every :class:`~repro.memory.cache.Cache`
built afterwards emits one :class:`CacheEvent` per miss and per
eviction (optionally per hit): set index, memory-line id, owning
memory object, the evictor that displaced the line, the victim way and
— when asked — the replacement policy's state.  Recording is **off by
default** and costs one attribute read and one ``None`` comparison per
cache probe when off.

Full traces of real workloads are long, so an :class:`EventRecorder`
keeps the stream cheap by default:

* a bounded **ring buffer** holds the most recent events;
* a **reservoir sample** (Algorithm R over a deterministic RNG) keeps
  a uniform sample of the whole stream;
* exact per-kind totals and a **per-set pressure histogram** (misses
  and evictions per cache set) are always maintained.

``audit=True`` switches the recorder to audit mode: *every* event is
retained, and :func:`replay_attribution` can then re-derive the
conflict-miss attribution — the ``m_ij`` of the paper's eqs. 2-3 —
purely from the recorded ``(eviction, miss)`` pairs, independently of
the cache's own counters.  :func:`audit_conflict_graph` compares that
replay against a built conflict graph edge by edge, acting as a
correctness oracle for ``repro.core.conflict_graph``
(``repro audit --workload NAME`` runs it from the CLI).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ConfigurationError
from repro.utils.rng import DeterministicRng

if TYPE_CHECKING:
    from repro.core.conflict_graph import ConflictGraph

#: Event kinds an :class:`EventRecorder` can receive.
EVENT_KINDS = ("miss", "evict", "hit")


@dataclass(frozen=True)
class CacheEvent:
    """One structured cache event.

    Attributes:
        kind: ``miss``, ``evict`` or ``hit``.
        seq: sequence number within the recorder (stream order).
        cache: label of the emitting cache (``L1``, ``L2``).
        set_index: the cache set the event happened in.
        line_id: memory line id — the missed/hit line, or for ``evict``
            the *victim* line leaving the cache.
        mo: owning memory object — for ``evict`` the victim's owner.
        evictor: for ``evict``, the owner of the incoming line; for a
            non-compulsory ``miss``, the attributed evictor (``None``
            when unknown, e.g. the line was never evicted).
        compulsory: for ``miss``, whether it was a first touch.
        way: the way filled/hit/evicted (-1 when not applicable).
        phase: execution phase at event time (overlay extension).
        policy_state: replacement-policy snapshot at eviction time
            (LRU/FIFO order, ``None`` unless state recording is on).
    """

    kind: str
    seq: int
    cache: str
    set_index: int
    line_id: int
    mo: str
    evictor: str | None = None
    compulsory: bool = False
    way: int = -1
    phase: int = 0
    policy_state: tuple[int, ...] | None = None

    def as_json(self) -> dict[str, Any]:
        """Plain-dict form (JSONL export and worker forwarding)."""
        data: dict[str, Any] = {
            "kind": self.kind,
            "seq": self.seq,
            "cache": self.cache,
            "set": self.set_index,
            "line": self.line_id,
            "mo": self.mo,
        }
        if self.evictor is not None:
            data["evictor"] = self.evictor
        if self.compulsory:
            data["compulsory"] = True
        if self.way >= 0:
            data["way"] = self.way
        if self.phase:
            data["phase"] = self.phase
        if self.policy_state is not None:
            data["policy_state"] = list(self.policy_state)
        return data

    @staticmethod
    def from_json(data: dict[str, Any]) -> "CacheEvent":
        """Rebuild an event from its :meth:`as_json` form."""
        state = data.get("policy_state")
        return CacheEvent(
            kind=data["kind"],
            seq=int(data["seq"]),
            cache=data.get("cache", "L1"),
            set_index=int(data["set"]),
            line_id=int(data["line"]),
            mo=data["mo"],
            evictor=data.get("evictor"),
            compulsory=bool(data.get("compulsory", False)),
            way=int(data.get("way", -1)),
            phase=int(data.get("phase", 0)),
            policy_state=tuple(state) if state is not None else None,
        )


class EventRecorder:
    """Bounded sink for :class:`CacheEvent` streams.

    Args:
        ring_size: events kept in the most-recent ring buffer.
        reservoir_size: size of the uniform whole-stream sample.
        record_hits: also record hit events (off by default — hits
            dominate the stream and carry no attribution information).
        record_policy_state: snapshot the replacement policy's order on
            every eviction (audit detail; costs one tuple per evict).
        audit: retain *every* event so :func:`replay_attribution` can
            re-derive the full conflict attribution.  Memory grows with
            the trace; use for oracle checks, not for sweeps.
        sample_seed: seed of the reservoir's deterministic RNG.
    """

    def __init__(self, ring_size: int = 4096,
                 reservoir_size: int = 512,
                 record_hits: bool = False,
                 record_policy_state: bool = False,
                 audit: bool = False,
                 sample_seed: int = 0) -> None:
        if ring_size < 1:
            raise ConfigurationError(
                f"ring size must be positive, got {ring_size}"
            )
        if reservoir_size < 0:
            raise ConfigurationError(
                f"negative reservoir size: {reservoir_size}"
            )
        self.ring_size = ring_size
        self.reservoir_size = reservoir_size
        self.record_hits = record_hits
        self.record_policy_state = record_policy_state
        self.audit = audit
        self.sample_seed = sample_seed
        self._rng = DeterministicRng(sample_seed)
        self._ring: deque[CacheEvent] = deque(maxlen=ring_size)
        self._reservoir: list[CacheEvent] = []
        self._all: list[CacheEvent] = []
        self._seq = 0
        #: exact totals per event kind.
        self.counts: Counter = Counter()
        #: per-set miss counts (the set-pressure histogram).
        self.set_misses: Counter = Counter()
        #: per-set eviction counts.
        self.set_evictions: Counter = Counter()

    @property
    def total_events(self) -> int:
        """Events seen since construction (all kinds)."""
        return self._seq

    def next_seq(self) -> int:
        """Allocate the next event sequence number."""
        seq = self._seq
        self._seq += 1
        return seq

    def record(self, event: CacheEvent) -> None:
        """Ingest one event into counters, ring, reservoir and audit log."""
        self.counts[event.kind] += 1
        if event.kind == "miss":
            self.set_misses[event.set_index] += 1
        elif event.kind == "evict":
            self.set_evictions[event.set_index] += 1
        self._ring.append(event)
        if self.audit:
            self._all.append(event)
        if self.reservoir_size:
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(event)
            else:
                # Algorithm R: replace a random slot with probability
                # reservoir_size / events_seen.
                slot = self._rng.uniform_int(0, event.seq)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = event

    # -- views ---------------------------------------------------------------

    def events(self) -> list[CacheEvent]:
        """The retained events: the full log in audit mode, else the ring."""
        if self.audit:
            return list(self._all)
        return list(self._ring)

    def ring(self) -> list[CacheEvent]:
        """The most recent events (oldest first)."""
        return list(self._ring)

    def reservoir(self) -> list[CacheEvent]:
        """The uniform whole-stream sample (unordered)."""
        return list(self._reservoir)

    def pressure_histogram(self) -> list[tuple[int, int, int]]:
        """Per-set ``(set_index, misses, evictions)``, hottest first."""
        sets = sorted(set(self.set_misses) | set(self.set_evictions))
        rows = [
            (index, self.set_misses.get(index, 0),
             self.set_evictions.get(index, 0))
            for index in sets
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows

    # -- worker forwarding ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state for forwarding across process boundaries.

        The exact counters travel losslessly; the ring and reservoir
        travel as event lists and are re-bounded on merge.
        """
        return {
            "total": self._seq,
            "counts": dict(self.counts),
            "set_misses": {str(k): v for k, v in self.set_misses.items()},
            "set_evictions": {
                str(k): v for k, v in self.set_evictions.items()
            },
            "ring": [event.as_json() for event in self._ring],
            "reservoir": [event.as_json() for event in self._reservoir],
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a worker's :meth:`snapshot` into this recorder.

        Counters and histograms accumulate exactly.  The ring appends
        the worker's ring (the deque re-bounds it); the merged
        reservoir concatenates and truncates, which keeps determinism
        and bounded size but is only approximately uniform — exact
        statistics should come from the counters, not the sample.
        """
        self._seq += int(snapshot.get("total", 0))
        for kind, count in snapshot.get("counts", {}).items():
            self.counts[kind] += count
        for key, count in snapshot.get("set_misses", {}).items():
            self.set_misses[int(key)] += count
        for key, count in snapshot.get("set_evictions", {}).items():
            self.set_evictions[int(key)] += count
        for data in snapshot.get("ring", []):
            event = CacheEvent.from_json(data)
            self._ring.append(event)
            if self.audit:
                self._all.append(event)
        if self.reservoir_size:
            for data in snapshot.get("reservoir", []):
                self._reservoir.append(CacheEvent.from_json(data))
            del self._reservoir[self.reservoir_size:]

    # -- rendering -----------------------------------------------------------

    def render(self, top: int = 8) -> str:
        """Human-readable totals plus the *top* most-missed sets."""
        lines = [
            "cache events: "
            f"{self.counts.get('miss', 0)} misses, "
            f"{self.counts.get('evict', 0)} evictions, "
            f"{self.counts.get('hit', 0)} hits recorded "
            f"({self.total_events} events, ring keeps "
            f"{len(self._ring)}, reservoir {len(self._reservoir)})"
        ]
        hot = self.pressure_histogram()[:top]
        if hot:
            lines.append("  set  misses  evictions")
            for set_index, misses, evictions in hot:
                lines.append(
                    f"  {set_index:>3}  {misses:>6}  {evictions:>9}"
                )
        return "\n".join(lines)


# -- process-wide active recorder ---------------------------------------------

_ACTIVE: EventRecorder | None = None


def set_recorder(recorder: EventRecorder | None) -> EventRecorder | None:
    """Install (or, with ``None``, remove) the active event recorder.

    Caches bind the active recorder when they are *constructed*, so
    install the recorder before building the simulator whose events
    you want.  Returns the previously active recorder.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


def active_recorder() -> EventRecorder | None:
    """The active recorder, or ``None`` when event auditing is off."""
    return _ACTIVE


def recording_enabled() -> bool:
    """Whether an event recorder is currently installed."""
    return _ACTIVE is not None


# -- the replay oracle ---------------------------------------------------------


@dataclass
class ReplayedAttribution:
    """Conflict attribution re-derived from a recorded event stream.

    Attributes:
        conflicts: ``(victim_mo, evictor_mo) -> misses`` — the replayed
            ``m_ij``, including self-conflicts on the diagonal.
        compulsory: per-object first-touch miss counts.
        misses: per-object total miss counts.
    """

    conflicts: Counter = field(default_factory=Counter)
    compulsory: Counter = field(default_factory=Counter)
    misses: Counter = field(default_factory=Counter)


def replay_attribution(events: Iterable[CacheEvent],
                       cache: str = "L1") -> ReplayedAttribution:
    """Re-derive miss attribution by replaying a recorded event stream.

    Walks the events in stream order keeping its own *evicted-by* map
    (built from ``evict`` events) and first-touch set, then attributes
    every non-compulsory ``miss`` to the recorded evictor of that line
    — the same definition the cache applies online, but computed from
    the raw events rather than trusted from the cache's counters.

    Args:
        events: the recorded events (audit mode retains all of them).
        cache: only replay events of this cache label.

    Returns:
        The replayed attribution, comparable against a
        :class:`~repro.core.conflict_graph.ConflictGraph` with
        :func:`audit_conflict_graph`.
    """
    replay = ReplayedAttribution()
    evicted_by: dict[int, str] = {}
    seen: set[int] = set()
    for event in sorted(events, key=lambda e: e.seq):
        if event.cache != cache:
            continue
        if event.kind == "miss":
            replay.misses[event.mo] += 1
            if event.line_id not in seen:
                seen.add(event.line_id)
                replay.compulsory[event.mo] += 1
            else:
                evictor = evicted_by.get(event.line_id)
                if evictor is not None:
                    replay.conflicts[(event.mo, evictor)] += 1
        elif event.kind == "evict":
            assert event.evictor is not None
            evicted_by[event.line_id] = event.evictor
    return replay


@dataclass(frozen=True)
class AuditMismatch:
    """One disagreement between the conflict graph and the replay.

    Attributes:
        kind: ``edge`` (``m_ij``, i != j), ``self`` (``m_ii``) or
            ``compulsory`` (first-touch count).
        victim: the victim memory object.
        evictor: the evictor (empty for ``compulsory``).
        graph_value: what the conflict graph claims.
        replayed_value: what the event replay derived.
    """

    kind: str
    victim: str
    evictor: str
    graph_value: int
    replayed_value: int

    def describe(self) -> str:
        """One-line human-readable form."""
        where = (f"{self.victim} <- {self.evictor}"
                 if self.evictor else self.victim)
        return (f"{self.kind} {where}: graph says {self.graph_value}, "
                f"replay says {self.replayed_value}")


def audit_conflict_graph(
    graph: "ConflictGraph",
    events: Iterable[CacheEvent],
    cache: str = "L1",
) -> list[AuditMismatch]:
    """Cross-check a conflict graph's ``m_ij`` against replayed events.

    Every edge weight, self-conflict count and compulsory-miss count of
    *graph* is compared with the attribution independently re-derived
    by :func:`replay_attribution`; pairs present on only one side are
    mismatches too.  An empty return value means the graph is exactly
    the attribution the cache actually performed — the correctness
    oracle for ``ConflictGraph.from_simulation``.

    The events must come from the same simulation (same image, cache
    configuration and block sequence) the graph was profiled on, with
    the recorder in audit mode so no events were dropped.
    """
    replay = replay_attribution(events, cache=cache)
    mismatches: list[AuditMismatch] = []

    graph_pairs = {(victim, evictor): weight
                   for victim, evictor, weight in graph.edges()}
    for node in graph.nodes():
        if node.self_misses:
            graph_pairs[(node.name, node.name)] = node.self_misses
    for pair in sorted(set(graph_pairs) | set(replay.conflicts)):
        expected = graph_pairs.get(pair, 0)
        actual = replay.conflicts.get(pair, 0)
        if expected != actual:
            victim, evictor = pair
            kind = "self" if victim == evictor else "edge"
            mismatches.append(AuditMismatch(
                kind=kind, victim=victim, evictor=evictor,
                graph_value=expected, replayed_value=actual,
            ))

    graph_compulsory = {
        node.name: node.compulsory_misses for node in graph.nodes()
        if node.compulsory_misses
    }
    names = sorted(set(graph_compulsory) | set(replay.compulsory))
    for name in names:
        expected = graph_compulsory.get(name, 0)
        actual = replay.compulsory.get(name, 0)
        if expected != actual:
            mismatches.append(AuditMismatch(
                kind="compulsory", victim=name, evictor="",
                graph_value=expected, replayed_value=actual,
            ))
    return mismatches


@dataclass
class AuditResult:
    """Outcome of one end-to-end conflict-graph audit.

    Attributes:
        workload: audited workload name.
        events: events recorded during the audit simulation.
        mismatches: disagreements (empty = the graph is exact).
        edges_checked: conflict-graph edges covered by the audit.
        recorder: the audit-mode recorder (pressure histogram etc.).
    """

    workload: str
    events: int
    mismatches: list[AuditMismatch]
    edges_checked: int
    recorder: EventRecorder

    @property
    def ok(self) -> bool:
        """Whether the graph matched the replay exactly."""
        return not self.mismatches

    def render(self) -> str:
        """Human-readable audit verdict."""
        lines = [
            f"conflict-graph audit of {self.workload!r}: "
            f"{self.edges_checked} edges checked against "
            f"{self.events} replayed events"
        ]
        if self.ok:
            lines.append("  OK — m_ij attribution matches exactly")
        else:
            lines.append(f"  {len(self.mismatches)} MISMATCHES:")
            lines += [f"  - {m.describe()}" for m in self.mismatches]
        return "\n".join(lines)


def audit_workload(workload_name: str, scale: float = 1.0,
                   seed: int = 0,
                   backend: str | None = None,
                   policy: str | None = None,
                   associativity: int | None = None) -> AuditResult:
    """Run the conflict-graph oracle end to end for one workload.

    Rebuilds the workload's profiling setup, replays the baseline
    (cache-only) simulation with an audit-mode recorder installed, and
    cross-checks the freshly built conflict graph against the replayed
    attribution.  The audit simulation always runs fresh — a warm
    artifact store cannot serve it, because the point is to observe
    the events the cache actually emits.

    Args:
        workload_name: registered workload to audit.
        scale: trip-count multiplier.
        seed: executor seed.
        backend: which backend builds the audited conflict graph.
            Event recording structurally requires the reference
            interpreter, so the replayed event stream always comes
            from the reference run; with ``backend="vector"`` the
            audited graph is instead built from the vector kernel's
            report, turning the audit into a cross-backend
            differential check of the conflict attribution.
        policy: replacement-policy override for the audited cache
            (any :func:`repro.memory.replacement.available_policies`
            name); ``None`` keeps the workload's configured policy.
            The ``m_ij`` re-derivation is policy-agnostic — evict
            events carry the owner/evictor pair whatever chose the
            victim — so the audit is exact under every policy.
        associativity: way-count override for the audited cache
            (``None`` keeps the workload's).  Most paper caches are
            direct mapped, where every policy collapses; raising this
            gives a policy override real eviction pressure.
    """
    # Local imports: this module must stay importable from the cache
    # layer without dragging the whole pipeline in.
    from repro.core.conflict_graph import ConflictGraph
    from repro.engine.runner import make_workbench
    from repro.memory.hierarchy import (
        HierarchyConfig,
        InstructionMemorySimulator,
        resolve_backend,
    )
    from repro.traces.layout import LinkedImage, Placement

    resolved = resolve_backend(backend)
    workload, bench = make_workbench(workload_name, scale, seed)
    config = bench.config
    cache_config = config.cache
    if policy is not None or associativity is not None:
        from dataclasses import replace

        overrides: dict = {}
        if policy is not None:
            overrides["policy"] = policy
        if associativity is not None:
            overrides["associativity"] = associativity
        cache_config = replace(cache_config, **overrides)
    image = LinkedImage(
        bench.program,
        bench.memory_objects,
        spm_resident=frozenset(),
        spm_size=0,
        placement=Placement.COPY,
        main_base=config.main_base,
        spm_base=config.spm_base,
    )
    hierarchy = HierarchyConfig(cache=cache_config)
    recorder = EventRecorder(audit=True, record_policy_state=True)
    previous = set_recorder(recorder)
    try:
        simulator = InstructionMemorySimulator(image, hierarchy)
        report = simulator.run(bench.block_sequence)
    finally:
        set_recorder(previous)
    if resolved == "vector":
        from repro.memory.kernel.vector import simulate as kernel_simulate

        report = kernel_simulate(
            image, hierarchy, bench.block_sequence,
            spm_base=config.spm_base,
        )
    graph = ConflictGraph.from_simulation(bench.memory_objects, report)
    mismatches = audit_conflict_graph(graph, recorder.events())
    return AuditResult(
        workload=workload_name,
        events=recorder.total_events,
        mismatches=mismatches,
        edges_checked=graph.num_edges,
        recorder=recorder,
    )
