"""Structured tracing: nestable spans with a thread-safe collector.

A *span* is one named, timed region of work — a stage resolution, an
ILP solve, a design-point evaluation — with wall-clock and CPU time
plus free-form attributes.  Spans nest: the collector tracks a
per-thread stack, so a ``point.evaluate`` span contains the
``engine.resolve.*`` spans of the stages it touched, which in turn
contain the ``ilp.solve`` or ``sim.hierarchy`` spans of any actual
compute.

Instrumented code never talks to a collector directly; it calls the
module-level :func:`span` helper::

    with span("ilp.solve", variables=n) as sp:
        ...
        sp.add(nodes=result.nodes_explored)

When no collector is installed (the default), :func:`span` returns a
shared no-op context manager and the instrumented line costs one
global read and one comparison — the zero-overhead-when-disabled
guarantee that ``benchmarks/bench_smoke.py`` asserts.  To record a run,
install a :class:`TraceCollector` via :func:`set_collector`, run the
experiment, and export with :meth:`TraceCollector.chrome_trace` (a
``chrome://tracing`` / Perfetto-loadable JSON object) or
:meth:`TraceCollector.jsonl_lines` (one event per line).

Worker processes each record into their own collector;
:meth:`TraceCollector.merge` folds their exported events back into the
parent *in input order*, mirroring how
:meth:`repro.engine.runner.RunRecord.merge` folds worker counters.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Chrome-trace category applied to every emitted event.
TRACE_CATEGORY = "casa"


@dataclass
class SpanEvent:
    """One completed span, as recorded by a :class:`TraceCollector`.

    Attributes:
        name: dotted span name (see ``docs/OBSERVABILITY.md`` for the
            naming conventions).
        start_us: start time in microseconds since the collector epoch.
        duration_us: wall-clock duration in microseconds.
        cpu_us: CPU (process) time consumed, in microseconds.
        depth: nesting depth at record time (0 = top level).
        index: deterministic completion index within the collector.
        tid: thread/worker track the span ran on (0 = main).
        args: the span's attributes (must be JSON-serialisable).
    """

    name: str
    start_us: float
    duration_us: float
    cpu_us: float
    depth: int
    index: int
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    def as_chrome_event(self) -> dict[str, Any]:
        """This span as a Chrome-trace complete (``"ph": "X"``) event."""
        args = dict(self.args)
        args["cpu_us"] = round(self.cpu_us, 3)
        args["depth"] = self.depth
        return {
            "name": self.name,
            "cat": TRACE_CATEGORY,
            "ph": "X",
            "pid": 0,
            "tid": self.tid,
            "ts": round(self.start_us, 3),
            "dur": round(self.duration_us, 3),
            "args": args,
        }

    def as_json(self) -> dict[str, Any]:
        """Plain-dict form (used by the JSONL export and merging)."""
        return {
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "cpu_us": self.cpu_us,
            "depth": self.depth,
            "index": self.index,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "SpanEvent":
        """Rebuild a span event from its :meth:`as_json` form."""
        return SpanEvent(
            name=data["name"],
            start_us=float(data["start_us"]),
            duration_us=float(data["duration_us"]),
            cpu_us=float(data["cpu_us"]),
            depth=int(data["depth"]),
            index=int(data["index"]),
            tid=int(data.get("tid", 0)),
            args=dict(data.get("args", {})),
        )


class _LiveSpan:
    """Context manager recording one span into a collector."""

    __slots__ = ("_collector", "name", "args", "_start", "_cpu_start",
                 "_depth")

    def __init__(self, collector: "TraceCollector", name: str,
                 args: dict[str, Any]) -> None:
        self._collector = collector
        self.name = name
        self.args = args

    def add(self, **attrs: Any) -> None:
        """Attach further attributes to the span (e.g. results)."""
        self.args.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._depth = self._collector._push()
        self._start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        ended = time.perf_counter()
        cpu_ended = time.process_time()
        self._collector._record(
            self.name,
            self._start,
            ended - self._start,
            cpu_ended - self._cpu_start,
            self._depth,
            self.args,
        )


class _NullSpan:
    """Shared no-op span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def add(self, **attrs: Any) -> None:
        """Ignore attributes (tracing is disabled)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: The singleton no-op span (never allocates per call site).
NULL_SPAN = _NullSpan()


class TraceCollector:
    """Thread-safe in-memory collector of :class:`SpanEvent` records.

    Timestamps are microseconds relative to the collector's creation
    (its *epoch*); completion order assigns each event a deterministic
    ``index``, so two runs that perform the same work in the same order
    produce the same event sequence modulo timings.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: list[SpanEvent] = []
        self._local = threading.local()
        self._thread_ids: dict[int, int] = {}

    # -- recording (called by _LiveSpan) -------------------------------------

    def _push(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _record(self, name: str, start: float, duration: float,
                cpu: float, depth: int, args: dict[str, Any]) -> None:
        self._local.depth = depth
        ident = threading.get_ident()
        with self._lock:
            tid = self._thread_ids.setdefault(ident,
                                              len(self._thread_ids))
            self._events.append(SpanEvent(
                name=name,
                start_us=(start - self._epoch) * 1e6,
                duration_us=duration * 1e6,
                cpu_us=cpu * 1e6,
                depth=depth,
                index=len(self._events),
                tid=tid,
                args=args,
            ))

    # -- public API -----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a nestable span recording into this collector."""
        return _LiveSpan(self, name, attrs)

    def events(self) -> list[SpanEvent]:
        """Snapshot of the recorded events, in completion order."""
        with self._lock:
            return list(self._events)

    def span_names(self) -> list[str]:
        """Names of the recorded events, in completion order."""
        return [event.name for event in self.events()]

    def merge(self, events: list[SpanEvent] | list[dict],
              tid: int | None = None) -> None:
        """Fold foreign (e.g. worker-process) events into this collector.

        Events are appended *in the given order* and re-indexed, so
        merging each worker's events in input order reproduces the
        deterministic ordering of a serial run.  Foreign timestamps are
        kept relative to the worker's own epoch and shifted onto this
        collector's timeline at the merge point; *tid* (default: a
        fresh track per merge) keeps each worker on its own row in a
        Chrome-trace viewer.
        """
        offset_us = (time.perf_counter() - self._epoch) * 1e6
        with self._lock:
            if tid is None:
                used = {event.tid for event in self._events}
                used.update(self._thread_ids.values())
                tid = max(used, default=-1) + 1
            base_us = min(
                (self._as_event(event).start_us for event in events),
                default=0.0,
            )
            for event in events:
                span_event = self._as_event(event)
                self._events.append(SpanEvent(
                    name=span_event.name,
                    start_us=span_event.start_us - base_us + offset_us,
                    duration_us=span_event.duration_us,
                    cpu_us=span_event.cpu_us,
                    depth=span_event.depth,
                    index=len(self._events),
                    tid=tid,
                    args=dict(span_event.args),
                ))

    @staticmethod
    def _as_event(event: "SpanEvent | dict") -> SpanEvent:
        if isinstance(event, SpanEvent):
            return event
        return SpanEvent.from_json(event)

    # -- exports --------------------------------------------------------------

    def chrome_trace(self, metadata: dict[str, Any] | None = None
                     ) -> dict[str, Any]:
        """The run as a Chrome-trace JSON object.

        The returned dict has the standard ``traceEvents`` list (open
        it in ``chrome://tracing`` or https://ui.perfetto.dev) plus a
        ``casa`` key carrying *metadata* — run record, metrics
        snapshot, command line — which trace viewers ignore.
        """
        events = self.events()
        document: dict[str, Any] = {
            "traceEvents": [event.as_chrome_event() for event in events],
            "displayTimeUnit": "ms",
        }
        if metadata is not None:
            document["casa"] = metadata
        return document

    def jsonl_lines(self) -> list[str]:
        """One compact JSON line per event, in completion order."""
        return [
            json.dumps(event.as_json(), sort_keys=True)
            for event in self.events()
        ]


# -- process-wide active collector --------------------------------------------

_ACTIVE: TraceCollector | None = None


def set_collector(collector: TraceCollector | None
                  ) -> TraceCollector | None:
    """Install (or, with ``None``, remove) the active collector.

    Returns the previously active collector so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = collector
    return previous


def get_collector() -> TraceCollector | None:
    """The active collector, or ``None`` when tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    """Whether a collector is currently installed."""
    return _ACTIVE is not None


def span(name: str, **attrs: Any) -> "_LiveSpan | _NullSpan":
    """Open a span on the active collector (no-op when disabled).

    This is the one function instrumented code calls.  With no active
    collector it returns the shared :data:`NULL_SPAN` immediately, so a
    disabled call site costs one global read, one comparison and the
    (empty) keyword dict.
    """
    collector = _ACTIVE
    if collector is None:
        return NULL_SPAN
    return _LiveSpan(collector, name, attrs)
