"""Live telemetry: progress bus, heartbeats, watch/telemetry consumers.

Post-hoc spans and metrics answer "what happened"; this module answers
"what is happening *right now*" for multi-minute sweeps:

* a **progress-sink protocol** — module-level :func:`note_unit_started`
  / :func:`note_unit_finished` / :func:`note_phase` / :func:`note_total`
  helpers that instrumented code calls unconditionally; like spans and
  metrics they cost one global read and one ``None`` comparison when no
  sink is installed (:func:`set_progress_sink`);
* :class:`ProgressBus` — the parent-process sink: thread-safe unit
  done/total accounting, the current engine stage, and worker liveness
  with stall detection after a configurable heartbeat timeout;
* :class:`HeartbeatWriter` — the worker-process sink: writes one small
  atomic JSON heartbeat file per worker (unit boundaries and
  rate-limited phase changes) that the parent bus folds into its
  :meth:`ProgressBus.snapshot`, because pool workers only ship their
  span/metrics payload when a task *completes*;
* consumers of :class:`ProgressSnapshot` — :class:`WatchRenderer`
  (single-line in-terminal progress + ETA, ``--watch``),
  :class:`TelemetryWriter` (periodic ``telemetry.jsonl`` export,
  ``--telemetry``) and :func:`render_prometheus` (text exposition for
  the future ``repro serve`` scrape endpoint, ``--prom``).

Percentiles shown live come from two places merged at snapshot time:
the parent's active :class:`~repro.obs.metrics.MetricsRegistry` (serial
work) and the per-worker cumulative ``*.seconds`` histograms carried in
heartbeat files (pooled work, whose registries merge only at the end).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import sys
import threading
import time
from typing import Any, TextIO

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "WorkerHealth",
    "ProgressSnapshot",
    "ProgressBus",
    "HeartbeatWriter",
    "TelemetryWriter",
    "WatchRenderer",
    "set_progress_sink",
    "active_sink",
    "note_unit_started",
    "note_unit_finished",
    "note_phase",
    "note_total",
    "render_prometheus",
    "format_watch_line",
]

#: Default seconds a worker's current unit may run before it is
#: flagged as stalled on the bus.
DEFAULT_STALL_TIMEOUT = 30.0

#: Suffix identifying duration histograms surfaced as live percentiles.
SECONDS_SUFFIX = ".seconds"


@dataclasses.dataclass
class WorkerHealth:
    """Liveness of one executor (``main`` or a pool worker)."""

    name: str
    units_done: int
    current: str | None
    busy_s: float
    beat_age_s: float
    status: str  # "ok" | "stalled" | "idle"

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for telemetry export."""
        return {
            "name": self.name,
            "units_done": self.units_done,
            "current": self.current,
            "busy_s": round(self.busy_s, 6),
            "beat_age_s": round(self.beat_age_s, 6),
            "status": self.status,
        }


@dataclasses.dataclass
class ProgressSnapshot:
    """One point-in-time view of a run's progress and health."""

    ts: float
    run_id: str | None
    stage: str | None
    done: int
    total: int
    elapsed_s: float
    rate_ups: float
    eta_s: float | None
    workers: list[WorkerHealth]
    percentiles: dict[str, dict[str, float]]
    counters: dict[str, float]

    @property
    def stalled(self) -> list[WorkerHealth]:
        """The workers currently flagged as stalled."""
        return [w for w in self.workers if w.status == "stalled"]

    def to_json(self) -> dict[str, Any]:
        """JSON-able dict, one ``telemetry.jsonl`` record."""
        return {
            "kind": "snapshot",
            "ts": round(self.ts, 6),
            "run_id": self.run_id,
            "stage": self.stage,
            "done": self.done,
            "total": self.total,
            "elapsed_s": round(self.elapsed_s, 6),
            "rate_ups": round(self.rate_ups, 6),
            "eta_s": None if self.eta_s is None else round(self.eta_s, 3),
            "workers": [w.to_json() for w in self.workers],
            "percentiles": self.percentiles,
            "counters": self.counters,
        }


def _summaries_from_registry(registry: MetricsRegistry
                             ) -> dict[str, dict[str, float]]:
    """p50/p90/p99/max summaries of every ``*.seconds`` histogram."""
    out: dict[str, dict[str, float]] = {}
    for name in registry.names():
        if not name.endswith(SECONDS_SUFFIX):
            continue
        histogram = registry.histogram(name)
        if not histogram.count:
            continue
        summary = histogram.summary()
        out[name[: -len(SECONDS_SUFFIX)]] = {
            key: round(value, 6) for key, value in summary.items()
        }
    return out


class ProgressBus:
    """Thread-safe progress accounting for one run (parent process).

    Engine code reports through the module-level sink helpers; live
    consumers poll :meth:`snapshot` from their own threads.  When a
    heartbeat directory is attached (pooled runs), worker heartbeat
    files contribute done-counts, current-unit liveness and duration
    histograms to every snapshot.
    """

    def __init__(self, run_id: str | None = None,
                 stall_timeout: float = DEFAULT_STALL_TIMEOUT) -> None:
        self.run_id = run_id
        self.stall_timeout = stall_timeout
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._done = 0
        self._total = 0
        self._stage: str | None = None
        self._phase: str | None = None
        self._current: str | None = None
        self._current_since = 0.0
        self._heartbeat_dir: str | None = None
        self._workers_final: bool = False

    # -- sink protocol ---------------------------------------------------

    def add_total(self, count: int) -> None:
        """Register *count* more scheduled units."""
        with self._lock:
            self._total += count

    def unit_started(self, label: str) -> None:
        """Mark *label* as the unit now executing in this process."""
        with self._lock:
            self._current = label
            self._current_since = time.monotonic()

    def unit_finished(self, label: str, seconds: float) -> None:
        """Mark one unit done (*seconds* of wall time)."""
        with self._lock:
            self._done += 1
            self._current = None

    def phase(self, name: str) -> None:
        """Record the fine-grained activity inside the current unit."""
        self._phase = name

    def stage(self, name: str) -> None:
        """Record the coarse engine stage currently running."""
        self._stage = name

    # -- heartbeat directory --------------------------------------------

    def attach_heartbeat_dir(self, path: str | None) -> None:
        """Fold worker heartbeat files under *path* into snapshots."""
        with self._lock:
            self._heartbeat_dir = path
            self._workers_final = False

    def detach_heartbeat_dir(self) -> None:
        """Fold final worker done-counts in and stop scanning the dir.

        Called when a pooled map completes: the heartbeat files are
        about to be deleted, so their done-counts transfer to the
        bus's own counter (progress stays monotone) and their
        histograms stop contributing (the parent registry has merged
        the authoritative worker snapshots by now).
        """
        beats = self._read_heartbeats()
        with self._lock:
            for beat in beats:
                self._done += int(beat.get("units_done", 0))
            self._heartbeat_dir = None
            self._workers_final = True

    def finalize_workers(self) -> None:
        """Stop merging worker histograms (their registries are merged).

        Called after a pooled map completes and the parent registry has
        absorbed the workers' metric snapshots — from then on, merging
        heartbeat histograms as well would double-count.  Worker done
        counts and liveness stay visible.
        """
        with self._lock:
            self._workers_final = True

    def _read_heartbeats(self) -> list[dict[str, Any]]:
        directory = self._heartbeat_dir
        if directory is None:
            return []
        beats = []
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(directory, name),
                          encoding="utf-8") as handle:
                    beats.append(json.load(handle))
            except (OSError, ValueError):
                continue  # mid-replace or already cleaned up
        return beats

    # -- snapshots -------------------------------------------------------

    def snapshot(self, registry: MetricsRegistry | None = None
                 ) -> ProgressSnapshot:
        """Current progress, worker health and live percentiles.

        *registry* is the run's active metrics registry (serial-path
        observations); worker-side observations arrive via heartbeat
        files until :meth:`finalize_workers`.
        """
        now_wall = time.time()
        now_mono = time.monotonic()
        with self._lock:
            done = self._done
            total = self._total
            stage = self._phase or self._stage
            current = self._current
            current_since = self._current_since
            elapsed = now_mono - self._started
            workers_final = self._workers_final
        beats = self._read_heartbeats()

        workers: list[WorkerHealth] = []
        busy = 0.0 if current is None else now_mono - current_since
        status = "idle" if current is None else (
            "stalled" if busy > self.stall_timeout else "ok")
        workers.append(WorkerHealth("main", done, current, busy,
                                    0.0, status))

        display = MetricsRegistry()
        if registry is not None:
            display.merge(registry.snapshot())
        for beat in beats:
            beat_done = int(beat.get("units_done", 0))
            done += beat_done
            beat_age = max(0.0, now_wall - float(beat.get("ts", now_wall)))
            beat_current = beat.get("current")
            started_at = beat.get("unit_started_at")
            if beat_current is not None and started_at is not None:
                beat_busy = max(0.0, now_wall - float(started_at))
                beat_status = ("stalled" if beat_busy > self.stall_timeout
                               else "ok")
            else:
                beat_busy = 0.0
                beat_status = "idle"
            workers.append(WorkerHealth(str(beat.get("name", "worker")),
                                        beat_done, beat_current,
                                        beat_busy, beat_age, beat_status))
            if not workers_final:
                display.merge(beat.get("hist", {}))

        rate = done / elapsed if elapsed > 0 and done else 0.0
        if total > done and rate > 0:
            eta: float | None = (total - done) / rate
        elif total and done >= total:
            eta = 0.0
        else:
            eta = None
        counters = display.counters()
        return ProgressSnapshot(
            ts=now_wall, run_id=self.run_id, stage=stage,
            done=done, total=total, elapsed_s=elapsed, rate_ups=rate,
            eta_s=eta, workers=workers,
            percentiles=_summaries_from_registry(display),
            counters=counters,
        )


class HeartbeatWriter:
    """Worker-process sink that persists liveness to a heartbeat file.

    Writes are atomic (temp file + ``os.replace``) so the parent never
    reads a torn beat.  Unit boundaries always write; phase changes are
    rate-limited to one write per ``min_interval`` seconds.  At unit
    completion the worker's active per-task registry is scraped for
    ``*.seconds`` histograms, which accumulate across this worker's
    lifetime — that is what gives the parent live percentiles before
    any task payload has been shipped back.
    """

    def __init__(self, directory: str, name: str | None = None,
                 min_interval: float = 0.2) -> None:
        self.directory = directory
        self.name = name or f"pid-{os.getpid()}"
        self.path = os.path.join(directory, f"{self.name}.json")
        self.min_interval = min_interval
        self._units_done = 0
        self._current: str | None = None
        self._unit_started_at: float | None = None
        self._phase: str | None = None
        self._hist: dict[str, Histogram] = {}
        self._last_write = 0.0
        self._lock = threading.Lock()

    # -- sink protocol ---------------------------------------------------

    def add_total(self, count: int) -> None:
        """Totals are tracked by the parent bus; workers ignore them."""

    def unit_started(self, label: str) -> None:
        """Record the unit now executing and beat immediately."""
        with self._lock:
            self._current = label
            self._unit_started_at = time.time()
            self._write()

    def unit_finished(self, label: str, seconds: float) -> None:
        """Record unit completion, scrape durations, beat immediately."""
        with self._lock:
            self._units_done += 1
            self._current = None
            self._unit_started_at = None
            self._scrape_active_registry()
            self._write()

    def phase(self, name: str) -> None:
        """Record fine-grained activity (rate-limited beat)."""
        with self._lock:
            self._phase = name
            if time.monotonic() - self._last_write >= self.min_interval:
                self._write()

    def stage(self, name: str) -> None:
        """Engine stages inside a worker are phases for display."""
        self.phase(name)

    # -- persistence -----------------------------------------------------

    def _scrape_active_registry(self) -> None:
        registry = metrics_mod.active_registry()
        if registry is None:
            return
        for name, data in registry.snapshot().items():
            if data.get("type") != "histogram":
                continue
            if not name.endswith(SECONDS_SUFFIX):
                continue
            own = self._hist.get(name)
            if own is None:
                own = self._hist[name] = Histogram()
            shard = MetricsRegistry()
            shard.merge({name: data})
            merged = shard.histogram(name)
            own.count += merged.count
            own.total += merged.total
            own.minimum = min(own.minimum, merged.minimum)
            own.maximum = max(own.maximum, merged.maximum)
            own.zeros += merged.zeros
            for index, n in merged.buckets.items():
                own.buckets[index] = own.buckets.get(index, 0) + n

    def _write(self) -> None:
        beat = {
            "name": self.name,
            "pid": os.getpid(),
            "ts": time.time(),
            "units_done": self._units_done,
            "current": self._current,
            "unit_started_at": self._unit_started_at,
            "phase": self._phase,
            "hist": {name: h.snapshot() for name, h in self._hist.items()},
        }
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(beat, handle)
            os.replace(tmp, self.path)
        except OSError:
            return  # heartbeat dir vanished (run tearing down): drop beat
        self._last_write = time.monotonic()


# -- process-wide active sink --------------------------------------------------

_SINK: ProgressBus | HeartbeatWriter | None = None


def set_progress_sink(sink: ProgressBus | HeartbeatWriter | None
                      ) -> ProgressBus | HeartbeatWriter | None:
    """Install (or, with ``None``, remove) the active progress sink.

    Returns the previously active sink so callers can restore it.
    """
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


def active_sink() -> ProgressBus | HeartbeatWriter | None:
    """The active progress sink, or ``None`` when live telemetry is off."""
    return _SINK


def note_unit_started(label: str) -> None:
    """Report a unit starting (no-op when no sink is installed)."""
    sink = _SINK
    if sink is not None:
        sink.unit_started(label)


def note_unit_finished(label: str, seconds: float) -> None:
    """Report a unit finishing (no-op when no sink is installed)."""
    sink = _SINK
    if sink is not None:
        sink.unit_finished(label, seconds)


def note_phase(name: str) -> None:
    """Report fine-grained activity (no-op when no sink is installed)."""
    sink = _SINK
    if sink is not None:
        sink.phase(name)


def note_total(count: int) -> None:
    """Register scheduled units (no-op when no sink is installed)."""
    sink = _SINK
    if sink is not None:
        sink.add_total(count)


# -- consumers -----------------------------------------------------------------

def _fmt_seconds(value: float | None) -> str:
    if value is None or not math.isfinite(value):
        return "?"
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.0f}s" if value >= 10 else f"{value:.1f}s"


_SPINNER = "|/-\\"


def format_watch_line(snapshot: ProgressSnapshot, tick: int = 0) -> str:
    """Render one in-terminal status line from *snapshot*.

    Honest under ``--jobs N``: done-counts and liveness come from the
    worker heartbeat files, so the line reflects what the pool actually
    finished, not what was scheduled.
    """
    spin = _SPINNER[tick % len(_SPINNER)]
    if snapshot.total:
        pct = 100.0 * snapshot.done / snapshot.total
        progress = f"{snapshot.done}/{snapshot.total} ({pct:.0f}%)"
    else:
        progress = f"{snapshot.done} units"
    parts = [spin, progress]
    if snapshot.stage:
        parts.append(snapshot.stage)
    if snapshot.rate_ups:
        parts.append(f"{snapshot.rate_ups:.2f} u/s")
    parts.append(f"eta {_fmt_seconds(snapshot.eta_s)}")
    pool = [w for w in snapshot.workers if w.name != "main"]
    active = pool if pool else snapshot.workers
    ok = sum(1 for w in active if w.status != "stalled")
    stalled = [w for w in active if w.status == "stalled"]
    health = f"workers {ok} ok"
    if stalled:
        health += f", {len(stalled)} STALLED ({stalled[0].name})"
    parts.append(health)
    point = snapshot.percentiles.get("point.evaluate")
    if point:
        parts.append(f"p50 {point['p50']:.3g}s p99 {point['p99']:.3g}s")
    if snapshot.run_id:
        parts.append(f"run {snapshot.run_id}")
    return " | ".join(parts)


class WatchRenderer:
    """Background thread painting a single live status line (``--watch``)."""

    def __init__(self, bus: ProgressBus,
                 registry: MetricsRegistry | None = None,
                 stream: TextIO | None = None,
                 interval: float = 0.25) -> None:
        self.bus = bus
        self.registry = registry
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._tick = 0
        self._width = 0

    def _paint(self) -> None:
        line = format_watch_line(self.bus.snapshot(self.registry),
                                 self._tick)
        self._tick += 1
        pad = max(0, self._width - len(line))
        self._width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):
            self._stop.set()  # stream closed under us: stop painting

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._paint()

    def start(self) -> None:
        """Paint once and start the refresh thread."""
        self._paint()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-watch", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Paint the final state and release the line."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._paint()
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass


class TelemetryWriter:
    """Periodic ``telemetry.jsonl`` exporter (``--telemetry``).

    Appends one :meth:`ProgressSnapshot.to_json` record per interval —
    the scrape format the future ``repro serve`` daemon will expose.
    Writes one snapshot immediately on :meth:`start` and one on
    :meth:`stop`, so even sub-interval runs export at least two
    records.  When *prom_path* is given, each snapshot is also rendered
    to a Prometheus text-exposition file (atomically replaced).
    """

    def __init__(self, bus: ProgressBus, path: str | None,
                 registry: MetricsRegistry | None = None,
                 interval: float = 1.0,
                 prom_path: str | None = None) -> None:
        self.bus = bus
        self.path = str(path) if path is not None else None
        self.registry = registry
        self.interval = interval
        self.prom_path = prom_path
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._handle: TextIO | None = None
        self.snapshots_written = 0

    def _emit(self) -> None:
        snapshot = self.bus.snapshot(self.registry)
        if self.path is not None:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(snapshot.to_json()) + "\n")
            self._handle.flush()
        self.snapshots_written += 1
        if self.prom_path:
            tmp = self.prom_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(snapshot))
            os.replace(tmp, self.prom_path)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._emit()

    def start(self) -> None:
        """Write the first snapshot and start the export thread."""
        self._emit()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-telemetry",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Write the final snapshot and close the file."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._emit()
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def render_prometheus(snapshot: ProgressSnapshot) -> str:
    """Render *snapshot* in Prometheus text exposition format.

    Progress and worker health become gauges; ``*.seconds`` duration
    histograms become summaries with p50/p90/p99 quantile samples; run
    counters become ``repro_<name>_total`` counters.
    """
    run = snapshot.run_id or ""
    lines = [
        "# TYPE repro_run_info gauge",
        f'repro_run_info{{run_id="{run}"}} 1',
        "# TYPE repro_units_done gauge",
        f"repro_units_done {snapshot.done}",
        "# TYPE repro_units_total gauge",
        f"repro_units_total {snapshot.total}",
        "# TYPE repro_elapsed_seconds gauge",
        f"repro_elapsed_seconds {snapshot.elapsed_s:.6f}",
    ]
    if snapshot.eta_s is not None:
        lines += ["# TYPE repro_eta_seconds gauge",
                  f"repro_eta_seconds {snapshot.eta_s:.6f}"]
    lines.append("# TYPE repro_worker_stalled gauge")
    for worker in snapshot.workers:
        flag = 1 if worker.status == "stalled" else 0
        lines.append(
            f'repro_worker_stalled{{worker="{worker.name}"}} {flag}')
    for metric, summary in sorted(snapshot.percentiles.items()):
        base = f"repro_{_prom_name(metric)}_seconds"
        lines.append(f"# TYPE {base} summary")
        for quantile in ("0.5", "0.9", "0.99"):
            key = "p" + str(int(float(quantile) * 100))
            lines.append(
                f'{base}{{quantile="{quantile}"}} {summary[key]:.6g}')
        lines.append(f"{base}_sum {summary['total']:.6g}")
        lines.append(f"{base}_count {int(summary['count'])}")
    for name, value in sorted(snapshot.counters.items()):
        base = f"repro_{_prom_name(name)}_total"
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {value:g}")
    return "\n".join(lines) + "\n"
