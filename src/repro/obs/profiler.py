"""Timer-based sampling wall-clock profiler with collapsed-stack output.

Deterministic spans tell you *which stage* was slow; a sampling profiler
tells you *which code* inside the stage.  :class:`SamplingProfiler` runs
a daemon timer thread that periodically captures the main thread's stack
via :func:`sys._current_frames` — no signal handlers to clash with pool
workers, no per-call tracing overhead, and nothing at all when not
started (the CLI only constructs one under ``--profile-sample``).

Output is the collapsed-stack format consumed by any flamegraph tool
(``flamegraph.pl``, speedscope, inferno)::

    repro.cli:main;repro.core.pipeline:run_grid;... 142

Sample counts are wall-clock estimates (``samples × interval``); the
run report reconciles them against the span-derived wall times so a
drifting sampler is visible rather than silently trusted
(:func:`repro.obs.report.render_run_report`).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

__all__ = ["DEFAULT_INTERVAL", "SamplingProfiler"]

#: Default seconds between stack samples (~200 Hz).
DEFAULT_INTERVAL = 0.005


def _collapse(frame: Any) -> str:
    """Root-first ``module:function;...`` stack for one captured frame."""
    parts: list[str] = []
    while frame is not None:
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{frame.f_code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples the profiled thread's stack on a fixed wall-clock timer.

    Profiles the thread that called :meth:`start` (the CLI main thread);
    pool workers execute in other processes and are out of scope — their
    cost still shows up in the ``point.evaluate`` percentiles.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = interval
        self.samples: dict[str, int] = {}
        self.sample_count = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_ident: int | None = None
        self._started_at = 0.0
        self.duration_s = 0.0

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            stack = _collapse(frame)
            self.samples[stack] = self.samples.get(stack, 0) + 1
            self.sample_count += 1

    def start(self) -> None:
        """Begin sampling the calling thread."""
        self._target_ident = threading.get_ident()
        self._started_at = time.monotonic()
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-profiler",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            self.duration_s = time.monotonic() - self._started_at

    def collapsed(self) -> str:
        """All samples in collapsed-stack format, highest count first."""
        ordered = sorted(self.samples.items(),
                         key=lambda item: (-item[1], item[0]))
        return "\n".join(f"{stack} {count}" for stack, count in ordered)

    def write(self, path: str) -> None:
        """Write :meth:`collapsed` output to *path*."""
        text = self.collapsed()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + ("\n" if text else ""))

    def hot_functions(self, limit: int = 5) -> list[dict[str, Any]]:
        """The *limit* most-sampled leaf functions with sample counts."""
        leaves: dict[str, int] = {}
        for stack, count in self.samples.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ordered = sorted(leaves.items(),
                         key=lambda item: (-item[1], item[0]))
        return [{"function": name, "samples": count}
                for name, count in ordered[:limit]]

    def stats(self) -> dict[str, Any]:
        """Summary embedded in the run payload for report reconciliation."""
        return {
            "samples": self.sample_count,
            "interval_s": self.interval,
            "duration_s": round(self.duration_s, 6),
            "estimated_busy_s": round(self.sample_count * self.interval, 6),
            "hot": self.hot_functions(),
        }
