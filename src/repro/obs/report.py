"""Per-run reports: stage timings, cache hit rates, slowest points.

The CLI's ``--trace FILE`` flag saves one self-describing run file: a
Chrome-trace JSON object whose ``casa`` key embeds the engine's
:class:`~repro.engine.runner.RunRecord` counters and the metrics
snapshot of the run.  This module turns such a file back into a
human-readable report (``repro report FILE``) or a machine-readable
JSON summary (``repro report FILE --json``):

* per-stage timings and artifact-cache hit rates (from the record);
* simulated I-cache / scratchpad statistics (from the metrics);
* the top-N slowest work units (from the ``point.evaluate`` and
  ``chunk.evaluate`` spans).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_CATEGORY, TraceCollector
from repro.utils.tables import format_table

#: Schema version of the embedded ``casa`` run payload.
RUN_SCHEMA = 1

#: Span name identifying one design-point evaluation.
POINT_SPAN = "point.evaluate"

#: Span name identifying one grid-chunk evaluation (a capacity axis).
CHUNK_SPAN = "chunk.evaluate"

#: Span name identifying one branch & bound solve.
SOLVE_SPAN = "ilp.solve"


def build_run_payload(
    command: str,
    collector: TraceCollector,
    record: "Any" = None,
    registry: MetricsRegistry | None = None,
    argv: list[str] | None = None,
    run_id: str | None = None,
    profile: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the trace-file document for one observed run.

    Returns a Chrome-trace JSON object (``traceEvents`` + metadata
    under ``casa``) ready to be serialised with :func:`json.dump`.

    Args:
        command: the CLI subcommand (or logical run name).
        collector: the collector that recorded the run.
        record: the run's :class:`~repro.engine.runner.RunRecord`
            (or ``None`` when no engine work was recorded).
        registry: the run's metrics registry, if metrics were enabled.
        argv: the command-line arguments, for provenance.
        run_id: structured-log correlation id of the run, if any.
        profile: :meth:`~repro.obs.profiler.SamplingProfiler.stats`
            of the run's sampling profile, if one was taken.
    """
    metadata: dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "command": command,
        "record": record.as_dict() if record is not None else {},
        "metrics": registry.snapshot() if registry is not None else {},
    }
    if argv is not None:
        metadata["argv"] = list(argv)
    if run_id is not None:
        metadata["run_id"] = run_id
    if profile is not None:
        metadata["profile"] = profile
    return collector.chrome_trace(metadata=metadata)


def write_run_file(path: str | Path, payload: dict[str, Any]) -> None:
    """Serialise a :func:`build_run_payload` document to *path*."""
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


@dataclass
class RunData:
    """A loaded run file, ready for rendering.

    Attributes:
        command: the CLI subcommand that produced the run.
        record: per-stage counters (``RunRecord.as_dict`` form).
        metrics: the metrics snapshot of the run.
        spans: the trace events (Chrome-trace dicts, completion order).
        argv: the recorded command line, when present.
        run_id: structured-log correlation id, when one was minted.
        profile: sampling-profiler stats, when a profile was taken.
    """

    command: str
    record: dict[str, dict[str, float]]
    metrics: dict[str, dict[str, Any]]
    spans: list[dict[str, Any]]
    argv: list[str] = field(default_factory=list)
    run_id: str | None = None
    profile: dict[str, Any] = field(default_factory=dict)

    def span_names(self) -> list[str]:
        """Names of the recorded spans, in file order."""
        return [span["name"] for span in self.spans]

    def point_spans(self) -> list[dict[str, Any]]:
        """The work-unit spans of the run.

        Design points (:data:`POINT_SPAN`) and grid chunks
        (:data:`CHUNK_SPAN`) both count — a sweep schedules one or
        the other depending on its ``grid`` flag.
        """
        return [s for s in self.spans
                if s["name"] in (POINT_SPAN, CHUNK_SPAN)]

    def solver_spans(self) -> list[dict[str, Any]]:
        """The branch & bound (:data:`SOLVE_SPAN`) spans of the run."""
        return [s for s in self.spans if s["name"] == SOLVE_SPAN]

    def metric_value(self, name: str, default: float = 0.0) -> float:
        """Counter/gauge value of metric *name* (or *default*)."""
        data = self.metrics.get(name)
        if not data:
            return default
        if data.get("type") == "histogram":
            return float(data.get("total", default))
        return float(data.get("value", default))


def load_run(path: str | Path) -> RunData:
    """Parse a ``--trace`` run file written by :func:`write_run_file`.

    Raises:
        ConfigurationError: when the file is not a run file this
            version can read (missing/foreign ``casa`` metadata).
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"cannot read run file {path}: {error}")
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ConfigurationError(
            f"{path} is not a Chrome-trace run file (no traceEvents)"
        )
    metadata = document.get("casa")
    if not isinstance(metadata, dict) or \
            metadata.get("schema") != RUN_SCHEMA:
        raise ConfigurationError(
            f"{path} carries no casa run metadata (was it written by "
            f"--trace?)"
        )
    spans = [
        event for event in document["traceEvents"]
        if event.get("ph") == "X" and event.get("cat") == TRACE_CATEGORY
    ]
    return RunData(
        command=str(metadata.get("command", "?")),
        record=metadata.get("record", {}),
        metrics=metadata.get("metrics", {}),
        spans=spans,
        argv=list(metadata.get("argv", [])),
        run_id=metadata.get("run_id"),
        profile=metadata.get("profile", {}) or {},
    )


# -- rendering -----------------------------------------------------------------


def _stage_rows(record: dict[str, dict[str, float]]) -> list[list]:
    from repro.engine.runner import STAGES

    ordered = [s for s in ("workbench",) + STAGES if s in record]
    ordered += [s for s in sorted(record) if s not in ordered]
    rows = []
    for stage in ordered:
        entry = record[stage]
        computed = int(entry.get("computed", 0))
        hits = int(entry.get("hits", 0))
        total = computed + hits
        rate = (100.0 * hits / total) if total else 0.0
        rows.append([
            stage, computed, hits, f"{rate:.1f}%",
            f"{float(entry.get('seconds', 0.0)):.3f}",
        ])
    return rows


def _cache_lines(run: RunData) -> list[str]:
    accesses = run.metric_value("sim.cache_accesses")
    hits = run.metric_value("sim.cache_hits")
    misses = run.metric_value("sim.cache_misses")
    spm = run.metric_value("sim.spm_accesses")
    lines = []
    if accesses:
        lines.append(
            f"simulated I-cache: {accesses:.0f} accesses, "
            f"{hits:.0f} hits ({100.0 * hits / accesses:.1f}%), "
            f"{misses:.0f} misses"
        )
    if spm:
        lines.append(f"simulated scratchpad: {spm:.0f} accesses")
    events = run.metric_value("events.total")
    if events:
        lines.append(
            f"cache event stream: {events:.0f} events recorded "
            f"({run.metric_value('events.miss'):.0f} misses, "
            f"{run.metric_value('events.evict'):.0f} evictions)"
        )
    if not lines:
        lines.append(
            "simulated cache statistics: none recorded (fully cached "
            "run — every stage came from the artifact store)"
        )
    return lines


def _solve_summaries(run: RunData) -> list[dict[str, Any]]:
    """One plain-data entry per recorded ``ilp.solve`` span."""
    solves = []
    for solve_span in run.solver_spans():
        args = solve_span.get("args", {})
        telemetry = args.get("telemetry") or {}
        solves.append({
            "variables": int(args.get("variables", 0)),
            "constraints": int(args.get("constraints", 0)),
            "status": str(args.get("status", "?")),
            "nodes": int(args.get("nodes", 0)),
            "gap": args.get("gap"),
            "max_depth": int(telemetry.get("max_depth", 0)),
            "incumbent_updates": int(
                telemetry.get("incumbent_updates", 0)
            ),
            "dives_attempted": int(telemetry.get("dives_attempted", 0)),
            "dives_succeeded": int(telemetry.get("dives_succeeded", 0)),
            "lp_iterations": int(telemetry.get("lp_iterations", 0)),
            "best_bound": telemetry.get("best_bound"),
            "trajectory": telemetry.get("trajectory") or [],
        })
    return solves


def _trajectory_rows(trajectory: list, limit: int = 12) -> list[list]:
    """Downsample a ``(node, incumbent, bound)`` trajectory for display."""
    if len(trajectory) > limit:
        # Keep the first and last point, evenly sample the middle.
        step = (len(trajectory) - 1) / (limit - 1)
        indices = sorted({round(i * step) for i in range(limit)})
        trajectory = [trajectory[i] for i in indices]
    rows = []
    for node, incumbent, bound in trajectory:
        if incumbent is not None and bound is not None:
            gap = abs(incumbent - bound) / max(1.0, abs(incumbent))
            gap_text = f"{100.0 * gap:.2f}%"
        else:
            gap_text = "-"
        rows.append([
            int(node),
            f"{incumbent:.6g}" if incumbent is not None else "-",
            f"{bound:.6g}" if bound is not None else "-",
            gap_text,
        ])
    return rows


def _convergence_lines(run: RunData) -> list[str]:
    """The gap-over-nodes convergence section (empty without solves)."""
    solves = _solve_summaries(run)
    if not solves:
        return []
    lines = ["", "## Solver convergence", ""]
    rows = []
    for entry in solves:
        gap = entry["gap"]
        rows.append([
            entry["variables"], entry["constraints"], entry["status"],
            entry["nodes"], entry["max_depth"],
            entry["incumbent_updates"],
            f"{entry['dives_succeeded']}/{entry['dives_attempted']}",
            entry["lp_iterations"],
            f"{100.0 * gap:.2f}%" if gap is not None else "-",
        ])
    lines.append(format_table(
        ["vars", "cons", "status", "nodes", "depth", "incumbents",
         "dives", "lp iters", "gap"],
        rows,
    ))
    largest = max(solves, key=lambda entry: entry["nodes"])
    if largest["nodes"] and len(largest["trajectory"]) > 1:
        lines += [
            "",
            f"Gap over nodes (largest solve, {largest['nodes']} nodes):",
            "",
            format_table(
                ["node", "incumbent", "best bound", "gap"],
                _trajectory_rows(largest["trajectory"]),
            ),
        ]
    return lines


#: Resilience counters surfaced in the report, with display labels.
#: ``resilience.retry.seconds`` is a histogram — its *total* is the
#: wall time the healing layer spent on attempts after each first try.
_RESILIENCE_METRICS = (
    ("faults.injected", "faults injected"),
    ("resilience.retries", "point retries"),
    ("resilience.retry.seconds", "retry wall time (s)"),
    ("resilience.degraded_points", "degraded points"),
    ("resilience.failed_points", "failed points"),
    ("resilience.pool_restarts", "worker-pool restarts"),
    ("resilience.kernel_fallbacks", "kernel fallbacks"),
    ("solver.degraded", "solver degradations (CASA→greedy)"),
    ("store.quarantined", "quarantined artifacts"),
)


def histogram_summary(data: dict[str, Any]) -> dict[str, float]:
    """p50/p90/p99 summary of one snapshot-form histogram metric.

    Rebuilds the log-bucket sketch from the snapshot dict (the form
    run files store) and returns
    :meth:`~repro.obs.metrics.Histogram.summary`.  Snapshots written
    before the percentile sketch existed have no buckets; their
    percentiles degrade to the observed min/max clamp.
    """
    registry = MetricsRegistry()
    registry.merge({"h": dict(data, type="histogram")})
    return registry.histogram("h").summary()


def _histogram_entries(run: RunData) -> dict[str, dict[str, float]]:
    """Summaries of every histogram metric in the run, sorted by name."""
    return {
        name: histogram_summary(data)
        for name, data in sorted(run.metrics.items())
        if data.get("type") == "histogram"
    }


def _histogram_lines(run: RunData) -> list[str]:
    """The histogram/percentile section (empty without histograms)."""
    entries = _histogram_entries(run)
    if not entries:
        return []
    rows = []
    for name, summary in entries.items():
        rows.append([
            name, int(summary["count"]),
            f"{summary['mean']:.4g}", f"{summary['p50']:.4g}",
            f"{summary['p90']:.4g}", f"{summary['p99']:.4g}",
            f"{summary['max']:.4g}",
        ])
    return [
        "", "## Histogram metrics", "",
        format_table(
            ["metric", "count", "mean", "p50", "p90", "p99", "max"],
            rows,
        ),
    ]


def _profile_lines(run: RunData, wall_ms: float) -> list[str]:
    """The sampling-profile section, reconciled against span wall time."""
    profile = run.profile
    if not profile:
        return []
    samples = int(profile.get("samples", 0))
    interval = float(profile.get("interval_s", 0.0))
    estimated = float(profile.get("estimated_busy_s", 0.0))
    duration = float(profile.get("duration_s", 0.0))
    lines = [
        "", "## Sampling profile", "",
        f"- samples: {samples} at {interval * 1e3:.1f} ms intervals "
        f"over {duration:.2f} s",
        f"- estimated busy time: {estimated:.2f} s "
        f"(samples × interval)",
    ]
    wall_s = wall_ms / 1e3
    if wall_s > 0:
        ratio = estimated / wall_s
        if ratio <= 1.0:
            lines.append(
                f"- traced span wall time: {wall_s:.2f} s — the "
                f"profiler saw {100.0 * ratio:.0f}% of it (the rest "
                f"was spent outside the sampled thread, e.g. in pool "
                f"workers)"
            )
        else:
            lines.append(
                f"- traced span wall time: {wall_s:.2f} s — less than "
                f"the {estimated:.2f} s the profiler saw (time outside "
                f"any span, e.g. argument parsing or output rendering)"
            )
    hot = profile.get("hot") or []
    if hot:
        lines += ["", format_table(
            ["function", "samples"],
            [[entry["function"], entry["samples"]] for entry in hot],
        )]
    return lines


def _resilience_lines(run: RunData) -> list[str]:
    """The resilience section (empty when nothing eventful happened).

    Sourced from the fault-injection and self-healing metrics (see
    ``docs/ROBUSTNESS.md``); a clean, fault-free run records all-zero
    counters and gets no section at all.
    """
    entries = [
        (label, run.metric_value(name))
        for name, label in _RESILIENCE_METRICS
    ]
    if not any(value for _, value in entries):
        return []
    lines = ["", "## Resilience", ""]
    for label, value in entries:
        if value:
            lines.append(f"- {label}: {value:g}")
    sites = sorted(
        name for name in run.metrics
        if name.startswith("faults.injected.")
    )
    for name in sites:
        site = name[len("faults.injected."):]
        lines.append(f"  - at {site}: {run.metric_value(name):g}")
    return lines


def _slowest_points(run: RunData, top: int) -> list[dict[str, Any]]:
    points = run.point_spans()
    if not points:
        points = [s for s in run.spans if not s.get("args", {})
                  .get("depth", 0)]
    ranked = sorted(points, key=lambda s: -float(s.get("dur", 0.0)))
    return ranked[:top]


def summarise_run(run: RunData, top: int = 10) -> dict[str, Any]:
    """The report as plain data (what ``repro report --json`` prints)."""
    wall_us = max(
        (float(s.get("ts", 0.0)) + float(s.get("dur", 0.0))
         for s in run.spans),
        default=0.0,
    )
    stages = {}
    for stage, entry in run.record.items():
        computed = int(entry.get("computed", 0))
        hits = int(entry.get("hits", 0))
        total = computed + hits
        stages[stage] = {
            "computed": computed,
            "hits": hits,
            "hit_rate": (hits / total) if total else 0.0,
            "compute_seconds": float(entry.get("seconds", 0.0)),
        }
    slowest = [
        {
            "name": span["name"],
            "duration_ms": float(span.get("dur", 0.0)) / 1e3,
            "args": {
                k: v for k, v in span.get("args", {}).items()
                if k not in ("cpu_us", "depth")
            },
        }
        for span in _slowest_points(run, top)
    ]
    resilience = {
        name.replace("faults.injected", "injected")
        .replace("resilience.", "").replace("solver.", "solver_")
        .replace("store.", "store_"): run.metric_value(name)
        for name, _ in _RESILIENCE_METRICS
    }
    return {
        "command": run.command,
        "run_id": run.run_id,
        "argv": run.argv,
        "spans": len(run.spans),
        "wall_ms": wall_us / 1e3,
        "stages": stages,
        "metrics": run.metrics,
        "histograms": _histogram_entries(run),
        "slowest": slowest,
        "solves": _solve_summaries(run),
        "resilience": resilience,
        "profile": run.profile,
    }


def render_run_report(run: RunData, top: int = 10) -> str:
    """Render a loaded run as a markdown report."""
    summary = summarise_run(run, top=top)
    lines = [
        f"# Run report: `{run.command}`",
        "",
        f"- spans recorded: {summary['spans']}",
        f"- wall time (trace): {summary['wall_ms']:.1f} ms",
    ]
    if run.run_id:
        lines.append(f"- run id: `{run.run_id}`")
    if run.argv:
        lines.append(f"- argv: `{' '.join(run.argv)}`")
    lines += ["", "## Stage timings", ""]
    if run.record:
        lines.append(format_table(
            ["stage", "computed", "cached", "hit rate", "compute s"],
            _stage_rows(run.record),
        ))
    else:
        lines.append("(no engine stages recorded)")
    lines += ["", "## Cache behaviour", ""]
    lines += [f"- {line}" for line in _cache_lines(run)]
    store_reads = sum(
        int(e.get("computed", 0)) + int(e.get("hits", 0))
        for e in run.record.values()
    )
    store_hits = sum(int(e.get("hits", 0)) for e in run.record.values())
    if store_reads:
        lines.append(
            f"- artifact store: {store_hits}/{store_reads} stage "
            f"resolutions served from cache "
            f"({100.0 * store_hits / store_reads:.1f}%)"
        )
    lines += ["", f"## Slowest design points (top {top})", ""]
    slowest = summary["slowest"]
    if slowest:
        rows = []
        for entry in slowest:
            args = entry["args"]
            label = " ".join(
                f"{key}={args[key]}" for key in sorted(args)
            )
            rows.append([entry["name"], label,
                         f"{entry['duration_ms']:.2f}"])
        lines.append(format_table(
            ["span", "attributes", "ms"], rows,
        ))
    else:
        lines.append("(no spans recorded)")
    lines += _histogram_lines(run)
    lines += _convergence_lines(run)
    lines += _resilience_lines(run)
    lines += _profile_lines(run, summary["wall_ms"])
    interesting = [
        name for name in sorted(run.metrics)
        if name.startswith(("ilp.", "graph.", "trace."))
    ]
    if interesting:
        lines += ["", "## Solver and analysis metrics", ""]
        for name in interesting:
            run_value = run.metric_value(name)
            lines.append(f"- {name}: {run_value:g}")
    return "\n".join(lines)
