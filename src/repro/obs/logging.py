"""Structured JSON logging with a per-run correlation id.

Long sweeps are opaque without a durable, greppable record of what the
engine did and when.  This module provides exactly that, in the same
zero-overhead-when-disabled style as tracing and metrics:

* :func:`new_run_id` mints a short random hex id for a run;
* :class:`RunLog` appends one JSON object per line to a log file, each
  line carrying the ``run_id``, a monotonic-ish wall timestamp, the
  emitting ``source`` (``"main"`` or ``"worker-<pid>"``) and free-form
  event fields;
* the module-level :func:`log_event` helper writes to the *active*
  log installed via :func:`set_run_log` and costs one global read and
  one comparison when none is installed.

Worker processes do not inherit the parent's open file object.
Instead the parent forwards :func:`active_log_spec` — a plain
``(path, run_id)`` tuple — through the pool initializer, and workers
reopen the same file in append mode via :func:`install_from_spec`.
Lines are short (well under the POSIX ``PIPE_BUF`` atomicity bound),
so concurrent appends from several processes interleave whole lines,
never partial ones.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Any

__all__ = [
    "RunLog",
    "new_run_id",
    "set_run_log",
    "active_run_log",
    "active_run_id",
    "active_log_spec",
    "install_from_spec",
    "log_event",
]


def new_run_id() -> str:
    """A fresh 12-hex-digit run correlation id."""
    return uuid.uuid4().hex[:12]


class RunLog:
    """Append-only JSONL event log for one run.

    Every line is a self-contained JSON object::

        {"ts": 1722945600.123, "run_id": "3f2a...", "source": "main",
         "event": "stage.start", "stage": "grid_sim"}

    The file is opened lazily on the first event and flushed after
    every line so an external ``tail -f`` sees events as they happen.
    """

    def __init__(self, path: str, run_id: str | None = None,
                 source: str = "main") -> None:
        self.path = str(path)
        self.run_id = run_id or new_run_id()
        self.source = source
        self._lock = threading.Lock()
        self._handle: Any = None

    def event(self, event: str, **fields: Any) -> None:
        """Append one structured *event* line with extra *fields*."""
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "run_id": self.run_id,
            "source": self.source,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=False) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# -- process-wide active log ---------------------------------------------------

_ACTIVE: RunLog | None = None


def set_run_log(log: RunLog | None) -> RunLog | None:
    """Install (or, with ``None``, remove) the active run log.

    Returns the previously active log so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    return previous


def active_run_log() -> RunLog | None:
    """The active run log, or ``None`` when logging is disabled."""
    return _ACTIVE


def active_run_id() -> str | None:
    """The active log's run id, or ``None`` when logging is disabled."""
    log = _ACTIVE
    return log.run_id if log is not None else None


def active_log_spec() -> tuple[str, str] | None:
    """``(path, run_id)`` of the active log, for worker forwarding."""
    log = _ACTIVE
    if log is None:
        return None
    return (log.path, log.run_id)


def install_from_spec(spec: tuple[str, str] | None) -> None:
    """Install a worker-side :class:`RunLog` from a forwarded spec.

    Called from pool initializers: reopens the parent's log file in
    append mode with the same ``run_id`` and a ``worker-<pid>``
    source tag.  ``None`` (logging disabled in the parent) is a no-op.
    """
    if spec is None:
        return
    path, run_id = spec
    set_run_log(RunLog(path, run_id=run_id, source=f"worker-{os.getpid()}"))


def log_event(event: str, **fields: Any) -> None:
    """Emit *event* on the active run log (no-op when none installed)."""
    log = _ACTIVE
    if log is not None:
        log.event(event, **fields)
