"""Benchmark regression tracking: JSONL metric histories.

``repro bench record`` runs a small deterministic benchmark suite and
appends one :class:`Snapshot` — named metrics (energy totals, cache hit
rates, solver nodes, wall time) plus a machine/config fingerprint — to
a JSONL history file.  ``repro bench compare`` checks the latest
snapshot against a baseline with per-metric policies:

* **deterministic** metrics (energies, counters, hit rates) must match
  the baseline *exactly* — the whole pipeline is seeded and replayed,
  so any drift is a real behaviour change;
* **timing** metrics (names ending in ``.seconds`` or containing
  ``wall``) get a relative tolerance band, defaulting to a generous
  ±500% so only order-of-magnitude regressions trip CI;
* a metric present in the baseline but missing from the latest run is
  a regression; a *new* metric is reported but passes.

A non-empty regression list maps to a non-zero CLI exit status, which
is what lets ``make bench-smoke`` gate on the committed seed baseline
(``benchmarks/baselines/smoke.jsonl``).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

#: Schema version of one history line.
HISTORY_SCHEMA = 1

#: Default relative tolerance for timing metrics (5.0 = ±500%).
DEFAULT_TIMING_TOLERANCE = 5.0

#: Name fragments marking a metric as a timing (tolerance-banded).
TIMING_MARKERS = (".seconds", "wall", "duration")


def machine_fingerprint() -> dict[str, str]:
    """Identify the machine/toolchain a snapshot was recorded on."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


@dataclass
class Snapshot:
    """One recorded benchmark run.

    Attributes:
        name: logical suite name (e.g. ``smoke``).
        metrics: flat metric name -> value map.
        fingerprint: machine/toolchain identity at record time.
        config: suite configuration (workloads, scale, seed ...).
        recorded_at: Unix timestamp of the recording.
        note: free-form annotation (e.g. a commit subject).
    """

    name: str
    metrics: dict[str, float]
    fingerprint: dict[str, str] = field(
        default_factory=machine_fingerprint
    )
    config: dict = field(default_factory=dict)
    recorded_at: float = 0.0
    note: str = ""

    def as_json(self) -> dict:
        """One JSONL line's payload."""
        return {
            "schema": HISTORY_SCHEMA,
            "name": self.name,
            "metrics": self.metrics,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "recorded_at": self.recorded_at,
            "note": self.note,
        }

    @staticmethod
    def from_json(data: dict) -> "Snapshot":
        """Rebuild a snapshot from its :meth:`as_json` form."""
        if data.get("schema") != HISTORY_SCHEMA:
            raise ConfigurationError(
                f"unsupported history schema {data.get('schema')!r}"
            )
        return Snapshot(
            name=data.get("name", "?"),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            fingerprint=dict(data.get("fingerprint", {})),
            config=dict(data.get("config", {})),
            recorded_at=float(data.get("recorded_at", 0.0)),
            note=str(data.get("note", "")),
        )


def append_snapshot(path: str | Path, snapshot: Snapshot) -> None:
    """Append one snapshot line to a JSONL history file."""
    history_path = Path(path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as handle:
        handle.write(json.dumps(snapshot.as_json(), sort_keys=True))
        handle.write("\n")


def load_history(path: str | Path) -> list[Snapshot]:
    """Load every snapshot of a JSONL history file, oldest first."""
    history_path = Path(path)
    if not history_path.exists():
        raise ConfigurationError(f"no history file at {history_path}")
    snapshots = []
    for lineno, line in enumerate(
            history_path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            snapshots.append(Snapshot.from_json(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as error:
            raise ConfigurationError(
                f"{history_path}:{lineno}: bad history line ({error})"
            )
    if not snapshots:
        raise ConfigurationError(f"{history_path} holds no snapshots")
    return snapshots


# -- comparison ---------------------------------------------------------------


@dataclass(frozen=True)
class ComparePolicy:
    """Per-metric matching rules of one comparison.

    Attributes:
        timing_tolerance: allowed relative deviation of timing metrics.
        timing_markers: name fragments classifying a metric as timing.
        tolerances: explicit per-metric relative tolerances, overriding
            the classification (0.0 = exact).
    """

    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE
    timing_markers: tuple[str, ...] = TIMING_MARKERS
    tolerances: dict[str, float] = field(default_factory=dict)

    def tolerance_for(self, metric: str) -> float:
        """Allowed relative deviation of one metric (0.0 = exact)."""
        if metric in self.tolerances:
            return self.tolerances[metric]
        if any(marker in metric for marker in self.timing_markers):
            return self.timing_tolerance
        return 0.0


@dataclass(frozen=True)
class Regression:
    """One metric that deviated from its baseline.

    Attributes:
        metric: metric name.
        baseline: baseline value (``None`` for unexpected new metrics).
        latest: latest value (``None`` when the metric disappeared).
        tolerance: the relative tolerance that applied.
    """

    metric: str
    baseline: float | None
    latest: float | None
    tolerance: float

    def describe(self) -> str:
        """One-line human-readable form."""
        if self.latest is None:
            return f"{self.metric}: missing (baseline {self.baseline:g})"
        if self.baseline is None:
            return f"{self.metric}: unexpected ({self.latest:g})"
        delta = self.latest - self.baseline
        relative = abs(delta) / max(1e-12, abs(self.baseline))
        bound = (f"exact match required" if self.tolerance == 0.0
                 else f"tolerance ±{100.0 * self.tolerance:.0f}%")
        return (
            f"{self.metric}: {self.baseline:g} -> {self.latest:g} "
            f"({delta:+g}, {100.0 * relative:.2f}% off; {bound})"
        )


@dataclass
class CompareResult:
    """Outcome of one baseline comparison.

    Attributes:
        baseline_name: suite name of the baseline snapshot.
        regressions: deviating metrics (empty = pass).
        checked: metrics compared.
        new_metrics: metrics in the latest run with no baseline (these
            pass, but are listed so baselines get refreshed).
        fingerprint_changed: machine/toolchain differs from the
            baseline's (context for exact-match failures).
    """

    baseline_name: str
    regressions: list[Regression]
    checked: int
    new_metrics: list[str] = field(default_factory=list)
    fingerprint_changed: bool = False

    @property
    def ok(self) -> bool:
        """Whether every checked metric stayed within its policy."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable verdict."""
        lines = [
            f"bench compare vs {self.baseline_name!r}: "
            f"{self.checked} metrics checked"
        ]
        if self.fingerprint_changed:
            lines.append(
                "  note: machine/toolchain fingerprint differs from "
                "the baseline"
            )
        if self.new_metrics:
            lines.append(
                f"  {len(self.new_metrics)} new metric(s) without a "
                f"baseline: {', '.join(sorted(self.new_metrics))}"
            )
        if self.ok:
            lines.append("  OK — no regressions")
        else:
            lines.append(f"  {len(self.regressions)} REGRESSION(S):")
            lines += [f"  - {r.describe()}" for r in self.regressions]
        return "\n".join(lines)


def compare_snapshots(
    baseline: Snapshot,
    latest: Snapshot,
    policy: ComparePolicy | None = None,
) -> CompareResult:
    """Check *latest* against *baseline* under *policy*.

    Every baseline metric must be present in the latest snapshot and
    within its tolerance (exact for deterministic metrics).  Metrics
    only the latest snapshot has are collected in ``new_metrics`` and
    do not fail the comparison.
    """
    policy = policy or ComparePolicy()
    regressions: list[Regression] = []
    for metric in sorted(baseline.metrics):
        expected = baseline.metrics[metric]
        tolerance = policy.tolerance_for(metric)
        actual = latest.metrics.get(metric)
        if actual is None:
            regressions.append(
                Regression(metric, expected, None, tolerance)
            )
            continue
        if tolerance == 0.0:
            if actual != expected:
                regressions.append(
                    Regression(metric, expected, actual, tolerance)
                )
        else:
            deviation = abs(actual - expected) / max(
                1e-12, abs(expected)
            )
            if deviation > tolerance:
                regressions.append(
                    Regression(metric, expected, actual, tolerance)
                )
    new_metrics = sorted(set(latest.metrics) - set(baseline.metrics))
    return CompareResult(
        baseline_name=baseline.name,
        regressions=regressions,
        checked=len(baseline.metrics),
        new_metrics=new_metrics,
        fingerprint_changed=(
            baseline.fingerprint != latest.fingerprint
        ),
    )


# -- the recorded suite -------------------------------------------------------

#: Workloads of the default ``bench record`` suite.
DEFAULT_SUITE_WORKLOADS = ("tiny", "adpcm")

#: Scale of the default suite (matches ``make bench-smoke``).
DEFAULT_SUITE_SCALE = 0.2


def collect_suite_metrics(
    workloads: tuple[str, ...] = DEFAULT_SUITE_WORKLOADS,
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
) -> dict[str, float]:
    """Run the benchmark suite and collect its named metrics.

    Every workload is profiled in a **fresh memory-only store** (a warm
    disk cache would skip the simulations whose counters we snapshot)
    and evaluated with CASA and Steinke at its smallest scratchpad.
    Deterministic outputs (energies, hit rates, node/iteration counts)
    come out bit-identical run over run; only ``wall.seconds`` varies.
    """
    # Local imports keep repro.obs importable without the engine.
    from repro.engine.runner import StageRunner, make_workbench
    from repro.engine.store import ArtifactStore
    from repro.obs.metrics import MetricsRegistry, set_registry

    started = time.perf_counter()
    metrics: dict[str, float] = {}
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        for name in workloads:
            runner = StageRunner(store=ArtifactStore())
            workload, bench = make_workbench(
                name, scale=scale, seed=seed, runner=runner
            )
            spm_size = min(workload.spm_sizes)
            baseline = bench.baseline_result()
            report = baseline.report
            prefix = f"{name}"
            metrics[f"{prefix}.baseline.energy_nj"] = \
                baseline.total_energy
            metrics[f"{prefix}.baseline.fetches"] = \
                float(report.total_fetches)
            accesses = report.cache_accesses
            metrics[f"{prefix}.baseline.cache_hit_rate"] = (
                report.cache_hits / accesses if accesses else 0.0
            )
            for algorithm, run in (
                ("casa", bench.run_casa),
                ("steinke", bench.run_steinke),
            ):
                result = run(spm_size)
                allocation = result.allocation
                metrics[f"{prefix}.{algorithm}.energy_nj"] = \
                    result.total_energy
                metrics[f"{prefix}.{algorithm}.spm_objects"] = \
                    float(len(allocation.spm_resident))
                metrics[f"{prefix}.{algorithm}.solver_nodes"] = \
                    float(allocation.solver_nodes)
    finally:
        set_registry(previous)
    for counter in ("ilp.bb.nodes", "ilp.lp_solves",
                    "ilp.lp_iterations", "sim.runs", "sim.fetches"):
        metrics[f"suite.{counter}"] = registry.value(counter)
    # Resilience counters: all must stay exactly zero on the clean
    # path — any non-zero value means faults, retries or fallbacks
    # crept into an uninjected run, which the baseline compare flags.
    for counter in ("faults.injected", "resilience.retries",
                    "resilience.degraded_points",
                    "resilience.failed_points",
                    "resilience.pool_restarts",
                    "resilience.kernel_fallbacks",
                    "solver.degraded", "store.quarantined"):
        metrics[f"suite.{counter}"] = registry.value(counter)
    for name in workloads:
        metrics.update(measure_policy_misses(name, scale=scale,
                                             seed=seed))
    metrics.update(measure_kernel_speedup(scale=scale, seed=seed))
    metrics.update(measure_grid_speedup(scale=scale, seed=seed))
    metrics.update(measure_serve_latency(scale=scale, seed=seed))
    metrics.update(measure_serve_overload(scale=scale, seed=seed))
    metrics["wall.seconds"] = time.perf_counter() - started
    return metrics


#: Policies the suite snapshots baseline misses for.  ``random`` is
#: excluded only because its victims consume an RNG stream unrelated
#: to the workload seed; every deterministic policy participates, and
#: ``opt`` gives the snapshot a Belady floor the smoke test asserts
#: is never beaten.
SUITE_POLICIES = ("lru", "fifo", "lfu", "2q", "arc", "opt")


def measure_policy_misses(
    workload_name: str,
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
    associativity: int = 2,
) -> dict[str, float]:
    """Baseline I-cache misses of one workload per replacement policy.

    Simulates the workload's cache-only image once per
    :data:`SUITE_POLICIES` member with the paper cache widened to
    *associativity* ways (direct mapped, every policy collapses to
    the same behaviour).  All runs use the reference backend — the
    only interpreter that can drive the OPT next-use oracle — so the
    numbers are deterministic and the ``opt`` row is a true Belady
    floor for the others.  Runs after the suite registry is restored,
    like the speedup measurements, so the exact-match ``suite.sim.*``
    counters are untouched.
    """
    from dataclasses import replace

    from repro.engine.runner import StageRunner, make_workbench
    from repro.engine.store import ArtifactStore
    from repro.memory.hierarchy import HierarchyConfig, simulate
    from repro.traces.layout import LinkedImage, Placement

    runner = StageRunner(store=ArtifactStore())
    workload, bench = make_workbench(
        workload_name, scale=scale, seed=seed, runner=runner
    )
    config = bench.config
    image = LinkedImage(
        bench.program, bench.memory_objects,
        spm_resident=frozenset(), spm_size=0,
        placement=Placement.COPY,
        main_base=config.main_base, spm_base=config.spm_base,
    )
    metrics: dict[str, float] = {}
    for policy in SUITE_POLICIES:
        cache = replace(config.cache, associativity=associativity,
                        policy=policy)
        report = simulate(
            image, HierarchyConfig(cache=cache),
            bench.block_sequence, spm_base=config.spm_base,
            backend="reference",
        )
        metrics[f"{workload_name}.policy.{policy}.misses"] = \
            float(report.cache_misses)
    return metrics


def measure_kernel_speedup(
    workload_name: str = "adpcm",
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
    repeats: int = 3,
) -> dict[str, float]:
    """Time a fig4-shaped sweep through both simulator backends.

    Simulates the workload's baseline image plus one greedy-filled
    scratchpad image per catalogued SPM size — the simulation load of
    one figure-4 sweep — through the reference interpreter and the
    vector kernel.  Stream compilation is charged to the kernel, once
    per layout, exactly as the engine's ``stream`` artifact amortises
    it across a sweep.  Returns timing metrics only
    (``kernel.*.seconds`` and the ``kernel.wall.speedup`` ratio); the
    deterministic suite numbers are untouched.  Runs *after* the
    suite registry is restored, so it never perturbs the exact-match
    ``suite.sim.*`` counters.
    """
    from repro.engine.runner import StageRunner, make_workbench
    from repro.engine.store import ArtifactStore
    from repro.memory.hierarchy import HierarchyConfig, simulate
    from repro.memory.kernel import compile_stream
    from repro.traces.layout import LinkedImage, Placement

    runner = StageRunner(store=ArtifactStore())
    workload, bench = make_workbench(
        workload_name, scale=scale, seed=seed, runner=runner
    )
    config = bench.config

    def image_for(spm_size: int) -> LinkedImage:
        resident: set[str] = set()
        used = 0
        for mo in bench.memory_objects:
            if spm_size and used + mo.unpadded_size <= spm_size:
                resident.add(mo.name)
                used += mo.unpadded_size
        return LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=frozenset(resident), spm_size=spm_size,
            placement=Placement.COPY,
            main_base=config.main_base, spm_base=config.spm_base,
        )

    sweep = [(image_for(size), size)
             for size in (0, *workload.spm_sizes)]

    def timed(backend: str) -> float:
        streams: dict[int, object] = {}
        started = time.perf_counter()
        for _ in range(repeats):
            for index, (image, spm_size) in enumerate(sweep):
                hierarchy = HierarchyConfig(
                    cache=config.cache, spm_size=spm_size
                )
                stream = None
                if backend == "vector":
                    stream = streams.get(index)
                    if stream is None:
                        stream = compile_stream(
                            image, bench.block_sequence,
                            spm_base=config.spm_base,
                        )
                        streams[index] = stream
                simulate(image, hierarchy, bench.block_sequence,
                         spm_base=config.spm_base, backend=backend,
                         stream=stream)
        return time.perf_counter() - started

    vector = timed("vector")
    reference = timed("reference")
    return {
        "kernel.vector.seconds": vector,
        "kernel.reference.seconds": reference,
        "kernel.wall.speedup": reference / vector,
    }


def measure_grid_speedup(
    workload_name: str = "adpcm",
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
    repeats: int = 3,
) -> dict[str, float]:
    """Time a multi-configuration sweep grid-wise and point-wise.

    The per-point baseline here is the *vector kernel* with the
    stream already compiled and reused — i.e. the best the pre-grid
    pipeline could do — replaying a constant-geometry cache axis
    (line 16, 32/64 sets, 1–8 ways, all LRU: the shape where the
    single-pass stack-distance scan shares the most work) one
    configuration at a time, for the fig4-shaped image set of one
    workload.  The grid path replays the same axis through one
    :func:`~repro.memory.kernel.grid.simulate_grid` call per image.
    Streams are compiled once per image *outside* the timers — in the
    engine both paths resolve the same cached ``stream`` artifact, so
    compilation is steady-state-free on either side.  Returns timing
    metrics only (``grid.*.seconds`` and the ``grid.wall.speedup``
    ratio).
    """
    from repro.engine.runner import StageRunner, make_workbench
    from repro.engine.store import ArtifactStore
    from repro.memory.cache import CacheConfig
    from repro.memory.hierarchy import HierarchyConfig, simulate
    from repro.memory.kernel import SweepGrid, compile_stream, \
        simulate_grid
    from repro.traces.layout import LinkedImage, Placement

    runner = StageRunner(store=ArtifactStore())
    workload, bench = make_workbench(
        workload_name, scale=scale, seed=seed, runner=runner
    )
    config = bench.config
    line_size = 16

    def image_for(spm_size: int) -> LinkedImage:
        resident: set[str] = set()
        used = 0
        for mo in bench.memory_objects:
            if spm_size and used + mo.unpadded_size <= spm_size:
                resident.add(mo.name)
                used += mo.unpadded_size
        return LinkedImage(
            bench.program, bench.memory_objects,
            spm_resident=frozenset(resident), spm_size=spm_size,
            placement=Placement.COPY,
            main_base=config.main_base, spm_base=config.spm_base,
        )

    def axis_for(spm_size: int) -> SweepGrid:
        return SweepGrid.of(
            HierarchyConfig(
                cache=CacheConfig(
                    size=line_size * ways * num_sets,
                    line_size=line_size, associativity=ways,
                ),
                spm_size=spm_size,
            )
            for num_sets in (32, 64)
            for ways in (1, 2, 4, 8)
        )

    sweep = []
    for size in (0, *workload.spm_sizes):
        image = image_for(size)
        stream = compile_stream(image, bench.block_sequence,
                                spm_base=config.spm_base)
        sweep.append((image, stream, axis_for(size)))

    def timed(single_pass: bool) -> float:
        started = time.perf_counter()
        for _ in range(repeats):
            for image, stream, axis in sweep:
                if single_pass:
                    simulate_grid(stream, axis,
                                  spm_base=config.spm_base)
                    continue
                for hierarchy in axis:
                    simulate(image, hierarchy, bench.block_sequence,
                             spm_base=config.spm_base,
                             backend="vector", stream=stream)
        return time.perf_counter() - started

    single_pass = timed(single_pass=True)
    per_point = timed(single_pass=False)
    return {
        "grid.single_pass.seconds": single_pass,
        "grid.per_point.seconds": per_point,
        "grid.wall.speedup": per_point / single_pass,
    }


def measure_serve_latency(
    requests: int = 24,
    workers: int = 3,
    workload_name: str = "tiny",
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
) -> dict[str, float]:
    """Throughput and latency percentiles of one serve-daemon burst.

    Starts the ``repro serve`` stack on a background thread with an
    ephemeral port and drives it with a short closed-loop mixed-verb
    burst (:func:`repro.serve.loadgen.run_load`).  Returns the timing
    metrics (``serve.wall.rps`` and the ``serve.latency.*.seconds``
    percentiles, tolerance-banded by the compare policy) plus two
    exact-match counters: ``serve.requests.total`` (the burst size)
    and ``serve.requests.failed``, which must stay zero — any failed
    request under a clean run is a behaviour change the baseline
    compare flags.  Runs *after* the suite registry is restored; the
    service installs its own private registry for the burst.
    """
    from repro.serve.daemon import start_in_thread
    from repro.serve.loadgen import run_load
    from repro.serve.service import AllocationService, ServiceConfig

    service = AllocationService(ServiceConfig(max_delay_s=0.02))
    handle = start_in_thread(service)
    try:
        report = run_load(
            handle.url, requests=requests, workers=workers,
            workload=workload_name, scale=scale, seed=seed,
        )
    finally:
        handle.stop()
    return {
        "serve.wall.rps": report.rps,
        "serve.latency.p50.seconds": report.latency["p50"],
        "serve.latency.p99.seconds": report.latency["p99"],
        "serve.requests.total": float(report.requests),
        "serve.requests.failed": float(report.failures),
    }


def measure_serve_overload(
    sheds: int = 8,
    requests: int = 16,
    workload_name: str = "tiny",
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
) -> dict[str, float]:
    """Hardening-layer counters and overload latency of the service.

    Three short segments, the first two fully deterministic:

    1. **admission** — a service bounded to one in-flight request
       holds a slow solve in the micro-batcher while *sheds* more
       requests arrive; every one must shed, so
       ``serve.overload.shed.total`` is exactly *sheds*.
    2. **breaker** — a service with ``breaker_threshold=2`` sees two
       genuinely failing requests (an unknown workload; healed faults
       never count), so ``serve.overload.breaker.opens`` is exactly 1
       and the next request sheds with reason ``breaker``.
    3. **overload latency** — a real daemon with ``max_inflight=2``
       under ``2x`` closed-loop workers; the accepted-request p99
       (``serve.overload.latency.p99.seconds``, tolerance-banded) is
       the number the hardening layer protects, while
       ``serve.overload.failed`` must stay exactly zero — under
       admission control every refusal is a structured shed, never a
       failure.
    """
    import asyncio

    from repro.serve.daemon import start_in_thread
    from repro.serve.loadgen import run_load
    from repro.serve.schema import EvaluateRequest, SimulateRequest
    from repro.serve.service import AllocationService, ServiceConfig

    metrics: dict[str, float] = {}

    # Segment 1: exactly `sheds` overload sheds behind one slow solve.
    service = AllocationService(ServiceConfig(
        max_inflight=1, max_delay_s=0.3))
    service.start()
    try:
        async def admission_scenario() -> None:
            slow = asyncio.ensure_future(service.handle(
                EvaluateRequest(workload_name, scale=scale,
                                seed=seed, spm_size=64)))
            await asyncio.sleep(0.05)  # admitted, queued in batcher
            for _ in range(sheds):
                response = await service.handle(EvaluateRequest(
                    workload_name, scale=scale, seed=seed,
                    spm_size=64))
                assert response.status == "shed"
            await slow

        asyncio.run(admission_scenario())
    finally:
        service.stop()
    metrics["serve.overload.shed.total"] = \
        service.registry.value("serve.shed.total")

    # Segment 2: two hard failures open the verb's breaker once.
    service = AllocationService(ServiceConfig(breaker_threshold=2))
    service.start()
    try:
        async def breaker_scenario() -> None:
            for _ in range(2):
                await service.handle(
                    SimulateRequest("no-such-workload"))
            response = await service.handle(
                SimulateRequest("no-such-workload"))
            assert response.status == "shed"

        asyncio.run(breaker_scenario())
    finally:
        service.stop()
    metrics["serve.overload.breaker.opens"] = \
        service.registry.value("serve.breaker.opens")

    # Segment 3: accepted-request latency under 2x overload.
    service = AllocationService(ServiceConfig(
        max_inflight=2, max_delay_s=0.02))
    handle = start_in_thread(service)
    try:
        run_load(handle.url, requests=4, workers=1,
                 mix="evaluate=1", workload=workload_name,
                 scale=scale, seed=seed)  # warm the artifact cache
        report = run_load(
            handle.url, requests=requests, workers=4,
            mix="evaluate=1", workload=workload_name, scale=scale,
            seed=seed,
        )
    finally:
        handle.stop()
    metrics["serve.overload.latency.p99.seconds"] = \
        report.accepted_latency["p99"]
    metrics["serve.overload.failed"] = float(report.failures)
    return metrics


def record_suite(
    path: str | Path,
    name: str = "smoke",
    workloads: tuple[str, ...] = DEFAULT_SUITE_WORKLOADS,
    scale: float = DEFAULT_SUITE_SCALE,
    seed: int = 0,
    note: str = "",
) -> Snapshot:
    """Run the suite, append the snapshot to *path*, and return it."""
    snapshot = Snapshot(
        name=name,
        metrics=collect_suite_metrics(workloads, scale, seed),
        config={
            "workloads": list(workloads),
            "scale": scale,
            "seed": seed,
        },
        recorded_at=time.time(),
        note=note,
    )
    append_snapshot(path, snapshot)
    return snapshot
