"""Fetch-cycle performance accounting.

The paper evaluates energy only, but the same event counts yield the
performance side of the trade-off: cycles spent fetching instructions.
Scratchpads help performance *and* energy (unlike, say, voltage
scaling), which is part of why the technique is attractive — this
module makes that visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.wcet import FetchLatency
from repro.memory.stats import SimulationReport


@dataclass(frozen=True)
class FetchCycles:
    """Cycle totals of one simulation.

    Attributes:
        spm: cycles fetching from the scratchpad.
        loop_cache: cycles fetching from the loop cache.
        cache_hits: cycles for I-cache hits.
        cache_misses: cycles for I-cache misses (incl. line fills).
        overlay_copies: cycles spent copying objects at phase
            boundaries (one miss-equivalent per word).
    """

    spm: float
    loop_cache: float
    cache_hits: float
    cache_misses: float
    overlay_copies: float

    @property
    def total(self) -> float:
        """Total instruction-fetch cycles."""
        return (self.spm + self.loop_cache + self.cache_hits
                + self.cache_misses + self.overlay_copies)

    def cpi_contribution(self, instructions: int) -> float:
        """Fetch cycles per instruction (the paper's CPI motivation)."""
        if instructions <= 0:
            raise ValueError("need a positive instruction count")
        return self.total / instructions


def compute_cycles(report: SimulationReport,
                   latency: FetchLatency | None = None) -> FetchCycles:
    """Convert a simulation report's event counts to fetch cycles.

    Loop-cache accesses are scratchpad-like (deterministic SRAM reads);
    overlay copy words are charged one miss latency each (an off-chip
    read feeding an on-chip write).
    """
    latency = latency or FetchLatency()
    return FetchCycles(
        spm=report.spm_accesses * latency.spm,
        loop_cache=report.lc_accesses * latency.spm,
        cache_hits=report.cache_hits * latency.cache_hit,
        cache_misses=report.cache_misses * latency.cache_miss,
        overlay_copies=report.overlay_copy_words * latency.cache_miss,
    )


def speedup(baseline: SimulationReport, improved: SimulationReport,
            latency: FetchLatency | None = None) -> float:
    """Fetch-cycle speedup of *improved* over *baseline*."""
    latency = latency or FetchLatency()
    base = compute_cycles(baseline, latency).total
    new = compute_cycles(improved, latency).total
    if new <= 0:
        raise ValueError("improved run has no fetch cycles")
    return base / new
