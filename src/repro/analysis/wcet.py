"""WCET bounds via implicit path enumeration (IPET).

The paper's introduction motivates scratchpads over caches partly by
predictability: "[scratchpads] allow tighter bounds on WCET prediction
of the system".  This module makes that claim measurable: it computes a
worst-case execution time bound for the *instruction-fetch* component
of a linked program using the classic IPET formulation (Li & Malik) on
the package's own LP machinery:

* one flow variable per CFG edge, flow conservation per block;
* loop-bound constraints from the branch behaviours (a ``FixedTrip(n)``
  back edge executes ``n - 1`` times per loop entry; probabilistic
  loops take a configurable bound);
* the objective maximises total fetch cycles, where scratchpad-resident
  code costs its deterministic access latency and cacheable code is
  bounded conservatively (every line touched is assumed to miss).

Functions are analysed bottom-up over the acyclic call graph; a call
block's weight includes its callee's WCET bound.  The LP relaxation's
optimum is itself a safe upper bound (it dominates the integer
optimum), so no branching is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SolverError
from repro.ilp import LinExpr, Model, Sense, SolveStatus
from repro.ilp.scipy_backend import LpRelaxationSolver
from repro.program.basicblock import BasicBlock
from repro.program.behavior import FixedTrip
from repro.program.cfg import ControlFlowGraph
from repro.program.function import Function
from repro.program.program import Program
from repro.traces.layout import BlockFetchPlan, LinkedImage


@dataclass(frozen=True)
class FetchLatency:
    """Worst-case fetch latencies in cycles per word.

    Attributes:
        spm: scratchpad access (deterministic).
        cache_hit: cache hit.
        cache_miss: cache miss including the line fill.
    """

    spm: int = 1
    cache_hit: int = 1
    cache_miss: int = 20

    def __post_init__(self) -> None:
        if min(self.spm, self.cache_hit, self.cache_miss) < 1:
            raise ConfigurationError("latencies must be >= 1 cycle")


@dataclass
class WcetReport:
    """WCET bounds per function plus the program bound.

    Attributes:
        program_wcet: fetch-cycle bound of the entry function (and thus
            the program).
        function_wcet: per-function bounds.
    """

    program_wcet: float
    function_wcet: dict[str, float]


def block_worst_case_cycles(
    plan: BlockFetchPlan,
    latency: FetchLatency,
    line_size: int,
) -> float:
    """Worst-case fetch cycles of one basic block execution.

    Scratchpad segments are deterministic; cacheable segments are
    bounded by assuming one miss per touched line and hits for the
    remaining words.  Conditional tail jumps are included (worst case).
    """
    cycles = 0.0
    segments = list(plan.segments)
    if plan.tail_jump is not None:
        segments.append(plan.tail_jump)
    for segment in segments:
        if segment.on_spm:
            cycles += segment.num_words * latency.spm
            continue
        first_line = segment.address // line_size
        last_line = (segment.end_address - 1) // line_size
        lines = last_line - first_line + 1
        cycles += lines * latency.cache_miss
        cycles += (segment.num_words - lines) * latency.cache_hit
    return cycles


def _function_wcet(
    function: Function,
    image: LinkedImage,
    latency: FetchLatency,
    line_size: int,
    callee_wcet: dict[str, float],
    default_loop_bound: int,
    loop_bounds: dict[str, int] | None = None,
) -> float:
    """IPET bound for one function (callees already bounded)."""
    cfg = ControlFlowGraph(function)
    model = Model(f"wcet[{function.name}]", Sense.MAXIMIZE)

    # Edge flow variables; virtual source -> entry and return -> sink.
    edge_vars: dict[tuple[str, str], object] = {}
    for block in function.blocks:
        for successor in block.successors():
            edge_vars[(block.name, successor)] = model.add_variable(
                f"e[{block.name}->{successor}]"
            )

    if not edge_vars:
        # Single-block function: executes its entry exactly once.
        entry = function.entry
        weight = block_worst_case_cycles(
            image.plan_for(entry.name), latency, line_size
        )
        if entry.ends_with_call:
            weight += callee_wcet[entry.call_target]
        return weight

    def inflow(name: str) -> LinExpr:
        expr = LinExpr()
        for (src, dst), var in edge_vars.items():
            if dst == name:
                expr = expr + var
        if name == function.entry.name:
            expr = expr + 1.0  # virtual entry edge
        return expr

    def outflow(block: BasicBlock) -> LinExpr:
        expr = LinExpr()
        for successor in block.successors():
            expr = expr + edge_vars[(block.name, successor)]
        if block.ends_with_return:
            expr = expr + 0.0  # flows to the virtual sink unbounded
        return expr

    execution_counts: dict[str, LinExpr] = {}
    objective = LinExpr()
    for block in function.blocks:
        count = inflow(block.name)
        execution_counts[block.name] = count
        if not block.ends_with_return:
            model.add_constraint(
                count - outflow(block) == 0, f"flow[{block.name}]"
            )
        weight = block_worst_case_cycles(
            image.plan_for(block.name), latency, line_size
        )
        if block.ends_with_call:
            weight += callee_wcet[block.call_target]
        objective = objective + weight * count

    # Loop bounds: back-edge flow <= (bound - 1) * header entries from
    # outside the loop.
    for loop in cfg.natural_loops():
        if loop_bounds and loop.header in loop_bounds:
            bound = loop_bounds[loop.header]
            if bound < 1:
                raise ConfigurationError(
                    f"loop bound for {loop.header!r} must be >= 1"
                )
        else:
            bound = _loop_bound(function, loop.back_edges,
                                default_loop_bound)
        back_flow = LinExpr.total(
            edge_vars[edge] for edge in loop.back_edges
        )
        entry_flow = LinExpr()
        for (src, dst), var in edge_vars.items():
            if dst == loop.header and src not in loop.body:
                entry_flow = entry_flow + var
        if loop.header == function.entry.name:
            entry_flow = entry_flow + 1.0
        model.add_constraint(
            back_flow - (bound - 1) * entry_flow <= 0,
            f"loopbound[{loop.header}]",
        )

    model.set_objective(objective)
    solution = LpRelaxationSolver(model).solve()
    if solution.status is not SolveStatus.OPTIMAL:
        raise SolverError(
            f"WCET LP for {function.name!r} is "
            f"{solution.status.value} - missing loop bound?"
        )
    assert solution.objective is not None
    return solution.objective


def _loop_bound(function: Function,
                back_edges: frozenset[tuple[str, str]],
                default_bound: int) -> int:
    """Iteration bound of a loop from its latch behaviours.

    When several *distinct* latches share one header, natural-loop
    detection has merged loops (e.g. a nested loop whose inner and
    outer headers coincide); the conservative combined bound is the
    product of the per-latch bounds (exact for the collapsed-nesting
    case: ``a*(b-1) + (a-1) <= a*b - 1``).
    """
    bounds = []
    for latch, _ in back_edges:
        block = function.block(latch)
        if isinstance(block.behavior, FixedTrip):
            bounds.append(block.behavior.trip_count)
        else:
            bounds.append(default_bound)
    if len(bounds) == 1:
        return bounds[0]
    product = 1
    for bound in bounds:
        product *= bound
    return product


def compute_wcet(
    program: Program,
    image: LinkedImage,
    latency: FetchLatency | None = None,
    line_size: int = 16,
    default_loop_bound: int = 64,
    loop_bounds: dict[str, int] | None = None,
) -> WcetReport:
    """WCET bound of *program* under the layout of *image*.

    Functions are processed in reverse call-graph order (the builder
    guarantees an acyclic call graph; recursion is rejected).

    Args:
        program: the program to bound.
        image: linked layout (scratchpad residents fetch
            deterministically).
        latency: per-word fetch latencies.
        line_size: cache-line size for the all-miss bound.
        default_loop_bound: bound used for loops without a fixed trip
            count (probabilistic latches).
        loop_bounds: flow facts — per loop-header block name, an
            explicit iteration bound overriding the derived one.

    Raises:
        ConfigurationError: if the call graph is cyclic or a flow fact
            is invalid.
    """
    latency = latency or FetchLatency()

    # Topological order of the call graph.
    callees: dict[str, set[str]] = {
        f.name: set() for f in program.functions
    }
    for function in program.functions:
        for block in function.blocks:
            if block.ends_with_call:
                callees[function.name].add(block.call_target)
    order: list[str] = []
    state: dict[str, int] = {}

    def visit(name: str) -> None:
        if state.get(name) == 1:
            raise ConfigurationError(
                f"recursive call involving {name!r}: WCET needs an "
                "acyclic call graph"
            )
        if state.get(name) == 2:
            return
        state[name] = 1
        for callee in sorted(callees[name]):
            visit(callee)
        state[name] = 2
        order.append(name)

    for function in program.functions:
        visit(function.name)

    function_wcet: dict[str, float] = {}
    for name in order:
        function_wcet[name] = _function_wcet(
            program.function(name), image, latency, line_size,
            function_wcet, default_loop_bound, loop_bounds,
        )
    return WcetReport(
        program_wcet=function_wcet[program.entry],
        function_wcet=function_wcet,
    )
