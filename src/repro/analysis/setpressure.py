"""Cache set-pressure analysis.

A direct-mapped cache thrashes when several *hot* memory objects map
lines onto the same set.  This module computes, for every cache set,
the objects whose lines land there weighted by their fetch counts —
making the conflict graph's edges spatially explainable ("``T12`` and
``T40`` fight over sets 96-103").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conflict_graph import ConflictGraph
from repro.memory.cache import CacheConfig
from repro.traces.layout import LinkedImage
from repro.utils.tables import format_table


@dataclass
class SetPressure:
    """Contention summary of one cache set.

    Attributes:
        set_index: the cache set.
        occupants: object names with at least one line mapping here,
            with the per-object *fetch weight* (the object's fetch
            count divided across its lines).
    """

    set_index: int
    occupants: dict[str, float]

    @property
    def num_hot_occupants(self) -> int:
        """Objects with non-zero fetch weight on this set."""
        return sum(1 for weight in self.occupants.values() if weight > 0)

    @property
    def pressure(self) -> float:
        """Total fetch weight minus the largest occupant's share.

        Zero when a single object owns the set (no conflicts possible);
        grows when several hot objects overlap.
        """
        if not self.occupants:
            return 0.0
        total = sum(self.occupants.values())
        return total - max(self.occupants.values())


def cache_set_pressure(
    image: LinkedImage,
    cache: CacheConfig,
    graph: ConflictGraph,
) -> list[SetPressure]:
    """Compute per-set contention for a linked image.

    Only main-memory-resident (cacheable) objects participate.

    Returns:
        One :class:`SetPressure` per cache set, indexed 0..num_sets-1.
    """
    occupants: list[dict[str, float]] = [
        {} for _ in range(cache.num_sets)
    ]
    for mo in image.memory_objects:
        if image.on_spm(mo.name):
            continue
        base = image.base_address(mo.name)
        num_lines = mo.num_lines
        if num_lines == 0:
            continue
        weight_per_line = graph.node(mo.name).fetches / num_lines
        for line_offset in range(num_lines):
            line_id = (base // cache.line_size) + line_offset
            set_index = cache.map_line(line_id)
            per_set = occupants[set_index]
            per_set[mo.name] = per_set.get(mo.name, 0.0) + weight_per_line
    return [
        SetPressure(set_index=index, occupants=occupant_map)
        for index, occupant_map in enumerate(occupants)
    ]


def render_pressure_table(
    pressures: list[SetPressure],
    top: int = 10,
) -> str:
    """Render the *top* most contended sets as an ASCII table."""
    ranked = sorted(pressures, key=lambda p: -p.pressure)[:top]
    headers = ["set", "pressure", "hot objects (fetch weight)"]
    rows = []
    for entry in ranked:
        hot = sorted(
            ((name, weight) for name, weight in entry.occupants.items()
             if weight > 0),
            key=lambda item: -item[1],
        )[:4]
        description = ", ".join(
            f"{name}({weight:.0f})" for name, weight in hot
        )
        rows.append([entry.set_index, f"{entry.pressure:.0f}",
                     description])
    return format_table(headers, rows,
                        title=f"top {top} contended cache sets")
