"""Diagnostic analyses over linked images and profiling runs.

:mod:`repro.analysis.setpressure` explains *why* a program thrashes:
which cache sets are contended by which memory objects — the spatial
view behind the conflict graph's edges.
"""

from repro.analysis.setpressure import (
    SetPressure,
    cache_set_pressure,
    render_pressure_table,
)
from repro.analysis.performance import (
    FetchCycles,
    compute_cycles,
    speedup,
)
from repro.analysis.wcet import (
    FetchLatency,
    WcetReport,
    block_worst_case_cycles,
    compute_wcet,
)

__all__ = [
    "SetPressure",
    "cache_set_pressure",
    "render_pressure_table",
    "FetchLatency",
    "WcetReport",
    "block_worst_case_cycles",
    "compute_wcet",
    "FetchCycles",
    "compute_cycles",
    "speedup",
]
