"""Variables and linear expressions with operator overloading.

``LinExpr`` is an immutable-by-convention mapping from variables to
coefficients plus a constant.  Arithmetic (`+`, `-`, `*` by scalars)
builds expressions; comparisons (`<=`, `>=`, `==`) build constraints.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Union

from repro.errors import SolverError

Number = Union[int, float]

_variable_ids = itertools.count()


class Variable:
    """A decision variable.

    Attributes:
        name: unique display name.
        lower: lower bound.
        upper: upper bound.
        is_integer: integrality requirement.
    """

    __slots__ = ("name", "lower", "upper", "is_integer", "_uid")

    def __init__(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        is_integer: bool = False,
    ) -> None:
        if lower > upper:
            raise SolverError(
                f"variable {name!r}: lower bound {lower} exceeds upper "
                f"bound {upper}"
            )
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.is_integer = is_integer
        self._uid = next(_variable_ids)

    @property
    def is_binary(self) -> bool:
        """Whether the variable is a 0/1 variable."""
        return self.is_integer and self.lower == 0.0 and self.upper == 1.0

    # Variables participate in expressions by promotion.

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    def __add__(self, other) -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other) -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other) -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self._as_expr()) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        return self._as_expr() * scalar

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self._as_expr() * scalar

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __le__(self, other):
        return self._as_expr() <= other

    def __ge__(self, other):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._uid

    def __repr__(self) -> str:
        kind = "bin" if self.is_binary else (
            "int" if self.is_integer else "cont")
        return f"Variable({self.name!r}, {kind})"


class LinExpr:
    """A linear expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None,
                 constant: float = 0.0) -> None:
        self.terms: dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    @staticmethod
    def total(items: Iterable[Union["LinExpr", Variable, Number]]
              ) -> "LinExpr":
        """Sum an iterable of expressions/variables/numbers."""
        result = LinExpr()
        for item in items:
            result = result + item
        return result

    def copy(self) -> "LinExpr":
        """Shallow copy (terms dict is copied)."""
        return LinExpr(dict(self.terms), self.constant)

    def coefficient(self, variable: Variable) -> float:
        """Coefficient of *variable* (0 if absent)."""
        return self.terms.get(variable, 0.0)

    @property
    def variables(self) -> list[Variable]:
        """Variables with a non-zero coefficient."""
        return [v for v, c in self.terms.items() if c != 0.0]

    def evaluate(self, assignment: Mapping[Variable, float]) -> float:
        """Value of the expression under a variable assignment."""
        return self.constant + sum(
            coef * assignment[var] for var, coef in self.terms.items()
        )

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        result = self.copy()
        if isinstance(other, LinExpr):
            for var, coef in other.terms.items():
                result.terms[var] = result.terms.get(var, 0.0) + coef
            result.constant += other.constant
        elif isinstance(other, Variable):
            result.terms[other] = result.terms.get(other, 0.0) + 1.0
        elif isinstance(other, (int, float)):
            result.constant += float(other)
        else:
            return NotImplemented
        return result

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return self + (other * -1.0)
        if isinstance(other, Variable):
            return self + LinExpr({other: -1.0})
        if isinstance(other, (int, float)):
            return self + (-float(other))
        return NotImplemented

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return LinExpr(
            {var: coef * scalar for var, coef in self.terms.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- constraint builders ---------------------------------------------

    def __le__(self, other):
        from repro.ilp.model import Constraint
        return Constraint.build(self, "<=", other)

    def __ge__(self, other):
        from repro.ilp.model import Constraint
        return Constraint.build(self, ">=", other)

    def __eq__(self, other):  # type: ignore[override]
        from repro.ilp.model import Constraint
        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint.build(self, "==", other)
        return NotImplemented

    def __hash__(self) -> int:  # keep LinExpr usable in identity sets
        return id(self)

    def __repr__(self) -> str:
        parts = [
            f"{coef:+g}*{var.name}" for var, coef in self.terms.items()
            if coef != 0.0
        ]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
