"""Exact integer solving: best-bound branch & bound over LP relaxations.

Standard MIP branch & bound:

1. solve the LP relaxation of a node;
2. prune if infeasible or no better than the incumbent;
3. if the relaxation is integral, it becomes the new incumbent;
4. otherwise branch on a most-fractional integer variable, creating a
   floor child and a ceil child.

Nodes are explored best-bound-first (a heap keyed by the parent's LP
bound), so the first time the heap's best bound meets the incumbent the
incumbent is proven optimal.  A rounding heuristic at the root provides
an initial incumbent, which for the paper's allocation ILP (where the
all-ones point — everything stays in the cache — is always feasible)
guarantees the search starts bounded.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

from repro.ilp.expr import Variable
from repro.ilp.model import Model, Sense, SolveResult, SolveStatus
from repro.ilp.scipy_backend import LpRelaxationSolver, LpSolution
from repro.obs import metrics
from repro.obs.trace import span

#: Tolerance below which a value counts as integral.
INTEGRALITY_TOLERANCE = 1e-6


@dataclass
class _Incumbent:
    objective_key: float  # objective normalised to minimisation
    objective: float
    values: dict[Variable, float]


class BranchAndBoundSolver:
    """Best-bound branch & bound with an LP-rounding warm start.

    Args:
        max_nodes: abort threshold on explored nodes; the best incumbent
            is returned with :attr:`SolveStatus.NODE_LIMIT`.
        absolute_gap: prove optimality once ``best_bound`` is within
            this absolute distance of the incumbent.
    """

    def __init__(self, max_nodes: int = 200_000,
                 absolute_gap: float = 1e-6,
                 relative_gap: float = 0.0,
                 lp_factory=LpRelaxationSolver) -> None:
        self.max_nodes = max_nodes
        self.absolute_gap = absolute_gap
        #: stop once the incumbent is proven within this relative
        #: distance of the best bound (0 = prove exact optimality).
        self.relative_gap = relative_gap
        #: callable building the LP relaxation solver for a model —
        #: :class:`LpRelaxationSolver` (HiGHS, default) or
        #: :class:`repro.ilp.simplex.SimplexLpSolver`.
        self.lp_factory = lp_factory

    def solve(self, model: Model) -> SolveResult:
        """Solve *model* to proven optimality (or the node limit).

        Emits an ``ilp.solve`` span (variables/constraints in, status
        and explored nodes out) and the ``ilp.solves`` /
        ``ilp.bb.nodes`` counters when observability is enabled.
        """
        with span("ilp.solve", variables=len(model.variables),
                  constraints=len(model.constraints)) as solve_span:
            result = self._solve(model)
            solve_span.add(status=result.status.name,
                           nodes=result.nodes_explored)
            metrics.inc("ilp.solves")
            metrics.inc("ilp.bb.nodes", result.nodes_explored)
            return result

    def _solve(self, model: Model) -> SolveResult:
        lp = self.lp_factory(model)
        sense_mult = 1.0 if model.sense is Sense.MINIMIZE else -1.0

        root = lp.solve()
        if root.status is SolveStatus.INFEASIBLE:
            return SolveResult(SolveStatus.INFEASIBLE, None, {})
        if root.status is SolveStatus.UNBOUNDED:
            return SolveResult(SolveStatus.UNBOUNDED, None, {})
        assert root.objective is not None

        integer_vars = model.integer_variables
        incumbent = self._rounding_heuristic(model, lp, root, sense_mult)

        counter = itertools.count()
        heap: list[tuple[float, int, dict]] = []
        heapq.heappush(
            heap, (sense_mult * root.objective, next(counter), {})
        )
        nodes = 0
        while heap:
            bound_key, _, overrides = heapq.heappop(heap)
            if incumbent is not None:
                cutoff = incumbent.objective_key - self.absolute_gap
                if self.relative_gap > 0.0:
                    cutoff = min(
                        cutoff,
                        incumbent.objective_key
                        - self.relative_gap
                        * abs(incumbent.objective_key),
                    )
                if bound_key >= cutoff:
                    break  # best-bound first: nothing better remains
            nodes += 1
            if nodes > self.max_nodes:
                return self._finish(SolveStatus.NODE_LIMIT, incumbent, nodes)

            solution = lp.solve(overrides)
            if solution.status is not SolveStatus.OPTIMAL:
                continue
            assert solution.objective is not None
            node_key = sense_mult * solution.objective
            if incumbent is not None and \
                    node_key >= incumbent.objective_key - self.absolute_gap:
                continue

            fractional = self._branching_variable(
                model, integer_vars, solution
            )
            if fractional is None:
                incumbent = _Incumbent(node_key, solution.objective,
                                       dict(solution.values))
                continue

            # Periodic diving heuristic: fix the integers at their
            # rounded values, re-solve the LP for the continuous
            # variables, and keep the point if feasible.  Strong
            # incumbents early mean aggressive pruning later.
            if nodes % 32 == 1:
                dived = self._try_dive(model, lp, solution, sense_mult)
                if dived is not None and (
                    incumbent is None
                    or dived.objective_key < incumbent.objective_key
                ):
                    incumbent = dived

            variable, value = fractional
            low, high = overrides.get(
                variable, (variable.lower, variable.upper)
            )
            floor_child = dict(overrides)
            floor_child[variable] = (low, math.floor(value))
            ceil_child = dict(overrides)
            ceil_child[variable] = (math.ceil(value), high)
            for child in (floor_child, ceil_child):
                heapq.heappush(heap, (node_key, next(counter), child))

        if incumbent is None:
            return SolveResult(SolveStatus.INFEASIBLE, None, {},
                               nodes_explored=nodes)
        return self._finish(SolveStatus.OPTIMAL, incumbent, nodes)

    # ------------------------------------------------------------------

    @staticmethod
    def _finish(status: SolveStatus, incumbent: _Incumbent | None,
                nodes: int) -> SolveResult:
        if incumbent is None:
            return SolveResult(status, None, {}, nodes_explored=nodes)
        clean = {
            var: (round(val) if var.is_integer else val)
            for var, val in incumbent.values.items()
        }
        return SolveResult(status, incumbent.objective, clean,
                           nodes_explored=nodes)

    @staticmethod
    def _branching_variable(
        model: Model,
        integer_vars: list[Variable],
        solution: LpSolution,
    ) -> tuple[Variable, float] | None:
        """Pick a fractional integer variable to branch on.

        Fractionality is weighted by the variable's objective
        coefficient (a cheap pseudo-cost proxy): fixing a variable the
        objective cares about moves the node bounds further, pruning
        earlier.
        """
        best: tuple[Variable, float] | None = None
        best_score = 0.0
        for variable in integer_vars:
            value = solution.values[variable]
            distance = abs(value - round(value))
            if distance <= INTEGRALITY_TOLERANCE:
                continue
            weight = 1.0 + abs(model.objective.coefficient(variable))
            score = distance * weight
            if score > best_score:
                best_score = score
                best = (variable, value)
        return best

    @staticmethod
    def _try_dive(model: Model, lp: LpRelaxationSolver,
                  solution: LpSolution,
                  sense_mult: float) -> _Incumbent | None:
        """Fix integers at rounded values, re-solve for the rest."""
        overrides = {}
        for var in model.integer_variables:
            value = float(round(solution.values[var]))
            value = min(max(value, var.lower), var.upper)
            overrides[var] = (value, value)
        fixed = lp.solve(overrides)
        if fixed.status is not SolveStatus.OPTIMAL:
            return None
        assert fixed.objective is not None
        if not model.is_feasible(fixed.values):
            return None
        return _Incumbent(sense_mult * fixed.objective, fixed.objective,
                          dict(fixed.values))

    def _rounding_heuristic(
        self,
        model: Model,
        lp: LpRelaxationSolver,
        root: LpSolution,
        sense_mult: float,
    ) -> _Incumbent | None:
        """Try to build a feasible integral point from the root LP."""
        candidates: list[dict[Variable, float]] = []

        rounded = {
            var: (float(round(val)) if var.is_integer else val)
            for var, val in root.values.items()
        }
        candidates.append(rounded)
        # For problems where pushing every binary to one of its bounds is
        # feasible (the CASA ILP's "all objects stay in cache" point).
        for bound_attr in ("upper", "lower"):
            point = {}
            usable = True
            for var in model.variables:
                value = getattr(var, bound_attr)
                if not math.isfinite(value):
                    usable = False
                    break
                point[var] = float(value)
            if usable:
                candidates.append(point)

        best: _Incumbent | None = None
        for candidate in candidates:
            if not model.is_feasible(candidate):
                continue
            objective = model.objective.evaluate(candidate)
            key = sense_mult * objective
            if best is None or key < best.objective_key:
                best = _Incumbent(key, objective, dict(candidate))
        return best
