"""Exact integer solving: best-bound branch & bound over LP relaxations.

Standard MIP branch & bound:

1. solve the LP relaxation of a node;
2. prune if infeasible or no better than the incumbent;
3. if the relaxation is integral, it becomes the new incumbent;
4. otherwise branch on a most-fractional integer variable, creating a
   floor child and a ceil child.

Nodes are explored best-bound-first (a heap keyed by the parent's LP
bound), so the first time the heap's best bound meets the incumbent the
incumbent is proven optimal.  A rounding heuristic at the root provides
an initial incumbent, which for the paper's allocation ILP (where the
all-ones point — everything stays in the cache — is always feasible)
guarantees the search starts bounded.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

from repro.ilp.expr import Variable
from repro.ilp.model import (
    Model,
    Sense,
    SolveResult,
    SolveStatus,
    SolveTelemetry,
    relative_gap,
)
from repro.ilp.scipy_backend import LpRelaxationSolver, LpSolution
from repro.obs import metrics
from repro.obs.live import note_phase
from repro.obs.trace import span
from repro.resilience.faults import maybe_inject

#: Tolerance below which a value counts as integral.
INTEGRALITY_TOLERANCE = 1e-6

#: Convergence-trajectory points kept before the sampling stride
#: doubles (bounds the span payload on huge searches).
TRAJECTORY_LIMIT = 256


@dataclass
class _Incumbent:
    objective_key: float  # objective normalised to minimisation
    objective: float
    values: dict[Variable, float]


class BranchAndBoundSolver:
    """Best-bound branch & bound with an LP-rounding warm start.

    Args:
        max_nodes: abort threshold on explored nodes; the best incumbent
            is returned with :attr:`SolveStatus.NODE_LIMIT`.
        absolute_gap: prove optimality once ``best_bound`` is within
            this absolute distance of the incumbent.
        max_seconds: wall-clock budget; when exceeded the best
            incumbent is returned with :attr:`SolveStatus.TIME_LIMIT`
            (``None`` = unlimited).
        warm_start: variable values (by variable *name*) of a known
            feasible point — typically the incumbent of a neighbouring
            sweep step.  If feasible and strictly better than the
            rounding heuristic's point, it seeds the search incumbent,
            tightening the pruning cutoff from node one
            (``ilp.warm_start.hits`` / ``.bound_improvement``).  The
            final optimum is unaffected: the warm point only prunes
            nodes that could not beat it.
    """

    def __init__(self, max_nodes: int = 200_000,
                 absolute_gap: float = 1e-6,
                 relative_gap: float = 0.0,
                 lp_factory=LpRelaxationSolver,
                 max_seconds: float | None = None,
                 warm_start: dict[str, float] | None = None) -> None:
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self.absolute_gap = absolute_gap
        #: stop once the incumbent is proven within this relative
        #: distance of the best bound (0 = prove exact optimality).
        self.relative_gap = relative_gap
        #: callable building the LP relaxation solver for a model —
        #: :class:`LpRelaxationSolver` (HiGHS, default) or
        #: :class:`repro.ilp.simplex.SimplexLpSolver`.
        self.lp_factory = lp_factory
        #: candidate incumbent by variable name (see class docstring).
        self.warm_start = warm_start

    def solve(self, model: Model) -> SolveResult:
        """Solve *model* to proven optimality (or the node limit).

        Emits an ``ilp.solve`` span carrying the convergence telemetry
        (status, nodes, depth, incumbent updates, dive outcomes, LP
        iterations, final gap and the downsampled incumbent/bound
        trajectory ``repro report`` plots), plus the ``ilp.solves``,
        ``ilp.bb.*`` and ``ilp.lp_iterations`` aggregates when
        observability is enabled.
        """
        with span("ilp.solve", variables=len(model.variables),
                  constraints=len(model.constraints)) as solve_span:
            maybe_inject("ilp.solve", variables=len(model.variables))
            note_phase("ilp.solve")
            started = time.perf_counter()
            result = self._solve(model)
            metrics.observe("ilp.solve.seconds",
                            time.perf_counter() - started)
            telemetry = result.telemetry
            assert telemetry is not None
            solve_span.add(status=result.status.name,
                           nodes=result.nodes_explored,
                           objective=result.objective,
                           gap=result.gap,
                           telemetry=telemetry.as_json())
            metrics.inc("ilp.solves")
            metrics.inc("ilp.bb.nodes", result.nodes_explored)
            metrics.inc("ilp.bb.incumbents", telemetry.incumbent_updates)
            metrics.inc("ilp.bb.dives", telemetry.dives_attempted)
            metrics.inc("ilp.bb.dive_hits", telemetry.dives_succeeded)
            metrics.observe("ilp.bb.max_depth", float(telemetry.max_depth))
            if result.gap is not None:
                metrics.set_gauge("ilp.bb.final_gap", result.gap)
            return result

    def _solve(self, model: Model) -> SolveResult:
        telemetry = SolveTelemetry()
        deadline = (time.monotonic() + self.max_seconds
                    if self.max_seconds is not None else None)
        lp = self.lp_factory(model)
        sense_mult = 1.0 if model.sense is Sense.MINIMIZE else -1.0

        root = lp.solve()
        telemetry.lp_iterations += root.iterations
        if root.status is SolveStatus.INFEASIBLE:
            return SolveResult(SolveStatus.INFEASIBLE, None, {},
                               telemetry=telemetry)
        if root.status is SolveStatus.UNBOUNDED:
            return SolveResult(SolveStatus.UNBOUNDED, None, {},
                               telemetry=telemetry)
        assert root.objective is not None

        integer_vars = model.integer_variables
        incumbent = self._rounding_heuristic(model, lp, root, sense_mult)
        if incumbent is not None:
            telemetry.incumbent_updates += 1
        warm = self._warm_incumbent(model, root, sense_mult)
        if warm is not None and (
            incumbent is None
            or warm.objective_key < incumbent.objective_key
        ):
            # How much the warm point tightened the pruning cutoff
            # over the cold start the rounding heuristic would give.
            improvement = (
                incumbent.objective_key - warm.objective_key
                if incumbent is not None else 0.0
            )
            incumbent = warm
            telemetry.incumbent_updates += 1
            metrics.inc("ilp.warm_start.hits")
            metrics.observe("ilp.warm_start.bound_improvement",
                            improvement)

        # Trajectory sampling: every incumbent update is recorded;
        # bound progress is sampled every `stride` nodes, doubling the
        # stride whenever the trajectory hits its size cap.
        stride = 1

        def record_point(nodes: int, bound_key: float | None) -> None:
            nonlocal stride
            telemetry.trajectory.append((
                nodes,
                incumbent.objective if incumbent is not None else None,
                bound_key * sense_mult if bound_key is not None else None,
            ))
            if len(telemetry.trajectory) >= TRAJECTORY_LIMIT:
                del telemetry.trajectory[1::2]
                stride *= 2

        root_key = sense_mult * root.objective
        record_point(0, root_key)

        counter = itertools.count()
        heap: list[tuple[float, int, dict, int]] = []
        heapq.heappush(heap, (root_key, next(counter), {}, 0))
        nodes = 0
        proven_key: float | None = None
        while heap:
            bound_key, _, overrides, depth = heapq.heappop(heap)
            if incumbent is not None:
                cutoff = incumbent.objective_key - self.absolute_gap
                if self.relative_gap > 0.0:
                    cutoff = min(
                        cutoff,
                        incumbent.objective_key
                        - self.relative_gap
                        * abs(incumbent.objective_key),
                    )
                if bound_key >= cutoff:
                    # Best-bound first: nothing better remains.  The
                    # global dual bound is the tighter of the incumbent
                    # (a feasible point) and the best remaining node
                    # bound — only a relative/absolute gap setting can
                    # leave the latter below the incumbent.
                    proven_key = min(bound_key,
                                     incumbent.objective_key)
                    break
            nodes += 1
            if depth > telemetry.max_depth:
                telemetry.max_depth = depth
            if nodes > self.max_nodes:
                # The popped node carries the best remaining bound.
                telemetry.best_bound = bound_key * sense_mult
                record_point(nodes, bound_key)
                return self._finish(SolveStatus.NODE_LIMIT, incumbent,
                                    nodes, telemetry)
            if deadline is not None and time.monotonic() > deadline:
                telemetry.best_bound = bound_key * sense_mult
                record_point(nodes, bound_key)
                return self._finish(SolveStatus.TIME_LIMIT, incumbent,
                                    nodes, telemetry)
            if nodes % stride == 0:
                record_point(nodes, bound_key)

            solution = lp.solve(overrides)
            telemetry.lp_iterations += solution.iterations
            if solution.status is not SolveStatus.OPTIMAL:
                continue
            assert solution.objective is not None
            node_key = sense_mult * solution.objective
            if incumbent is not None and \
                    node_key >= incumbent.objective_key - self.absolute_gap:
                continue

            fractional = self._branching_variable(
                model, integer_vars, solution
            )
            if fractional is None:
                incumbent = _Incumbent(node_key, solution.objective,
                                       dict(solution.values))
                telemetry.incumbent_updates += 1
                record_point(nodes, bound_key)
                continue

            # Periodic diving heuristic: fix the integers at their
            # rounded values, re-solve the LP for the continuous
            # variables, and keep the point if feasible.  Strong
            # incumbents early mean aggressive pruning later.
            if nodes % 32 == 1:
                dived = self._try_dive(model, lp, solution, sense_mult,
                                       telemetry)
                if dived is not None and (
                    incumbent is None
                    or dived.objective_key < incumbent.objective_key
                ):
                    incumbent = dived
                    telemetry.incumbent_updates += 1
                    record_point(nodes, bound_key)

            variable, value = fractional
            low, high = overrides.get(
                variable, (variable.lower, variable.upper)
            )
            floor_child = dict(overrides)
            floor_child[variable] = (low, math.floor(value))
            ceil_child = dict(overrides)
            ceil_child[variable] = (math.ceil(value), high)
            for child in (floor_child, ceil_child):
                heapq.heappush(
                    heap, (node_key, next(counter), child, depth + 1)
                )

        if incumbent is None:
            return SolveResult(SolveStatus.INFEASIBLE, None, {},
                               nodes_explored=nodes, telemetry=telemetry)
        # Proven optimal: the dual bound is the last popped bound when
        # the cutoff fired, else the search space is exhausted and the
        # incumbent itself is the bound.
        telemetry.best_bound = (
            proven_key * sense_mult if proven_key is not None
            else incumbent.objective
        )
        record_point(nodes, proven_key if proven_key is not None
                     else incumbent.objective_key)
        return self._finish(SolveStatus.OPTIMAL, incumbent, nodes,
                            telemetry)

    # ------------------------------------------------------------------

    @staticmethod
    def _finish(status: SolveStatus, incumbent: _Incumbent | None,
                nodes: int, telemetry: SolveTelemetry) -> SolveResult:
        telemetry.nodes = nodes
        if incumbent is None:
            return SolveResult(status, None, {}, nodes_explored=nodes,
                               best_bound=telemetry.best_bound,
                               telemetry=telemetry)
        clean = {
            var: (round(val) if var.is_integer else val)
            for var, val in incumbent.values.items()
        }
        return SolveResult(status, incumbent.objective, clean,
                           nodes_explored=nodes,
                           best_bound=telemetry.best_bound,
                           telemetry=telemetry)

    @staticmethod
    def _branching_variable(
        model: Model,
        integer_vars: list[Variable],
        solution: LpSolution,
    ) -> tuple[Variable, float] | None:
        """Pick a fractional integer variable to branch on.

        Fractionality is weighted by the variable's objective
        coefficient (a cheap pseudo-cost proxy): fixing a variable the
        objective cares about moves the node bounds further, pruning
        earlier.
        """
        best: tuple[Variable, float] | None = None
        best_score = 0.0
        for variable in integer_vars:
            value = solution.values[variable]
            distance = abs(value - round(value))
            if distance <= INTEGRALITY_TOLERANCE:
                continue
            weight = 1.0 + abs(model.objective.coefficient(variable))
            score = distance * weight
            if score > best_score:
                best_score = score
                best = (variable, value)
        return best

    @staticmethod
    def _try_dive(model: Model, lp: LpRelaxationSolver,
                  solution: LpSolution, sense_mult: float,
                  telemetry: SolveTelemetry) -> _Incumbent | None:
        """Fix integers at rounded values, re-solve for the rest."""
        telemetry.dives_attempted += 1
        overrides = {}
        for var in model.integer_variables:
            value = float(round(solution.values[var]))
            value = min(max(value, var.lower), var.upper)
            overrides[var] = (value, value)
        fixed = lp.solve(overrides)
        telemetry.lp_iterations += fixed.iterations
        if fixed.status is not SolveStatus.OPTIMAL:
            return None
        assert fixed.objective is not None
        if not model.is_feasible(fixed.values):
            return None
        telemetry.dives_succeeded += 1
        return _Incumbent(sense_mult * fixed.objective, fixed.objective,
                          dict(fixed.values))

    def _warm_incumbent(
        self,
        model: Model,
        root: LpSolution,
        sense_mult: float,
    ) -> _Incumbent | None:
        """Evaluate the caller-supplied warm-start point, if any.

        Values are looked up by variable name; variables the caller
        did not pin fall back to their (rounded) root-LP value.  An
        infeasible point is silently discarded — a warm start is an
        optimisation, never a correctness input.
        """
        if not self.warm_start:
            return None
        candidate: dict[Variable, float] = {}
        for var in model.variables:
            value = self.warm_start.get(var.name)
            if value is None:
                value = root.values[var]
            value = float(value)
            if var.is_integer:
                value = float(round(value))
            candidate[var] = min(max(value, var.lower), var.upper)
        if not model.is_feasible(candidate):
            return None
        objective = model.objective.evaluate(candidate)
        return _Incumbent(sense_mult * objective, objective, candidate)

    def _rounding_heuristic(
        self,
        model: Model,
        lp: LpRelaxationSolver,
        root: LpSolution,
        sense_mult: float,
    ) -> _Incumbent | None:
        """Try to build a feasible integral point from the root LP."""
        candidates: list[dict[Variable, float]] = []

        rounded = {
            var: (float(round(val)) if var.is_integer else val)
            for var, val in root.values.items()
        }
        candidates.append(rounded)
        # For problems where pushing every binary to one of its bounds is
        # feasible (the CASA ILP's "all objects stay in cache" point).
        for bound_attr in ("upper", "lower"):
            point = {}
            usable = True
            for var in model.variables:
                value = getattr(var, bound_attr)
                if not math.isfinite(value):
                    usable = False
                    break
                point[var] = float(value)
            if usable:
                candidates.append(point)

        best: _Incumbent | None = None
        for candidate in candidates:
            if not model.is_feasible(candidate):
                continue
            objective = model.objective.evaluate(candidate)
            key = sense_mult * objective
            if best is None or key < best.objective_key:
                best = _Incumbent(key, objective, dict(candidate))
        return best
