"""Exact 0/1 knapsack by dynamic programming.

Steinke et al. [13] formulate scratchpad allocation (without a cache) as
a knapsack problem: pick the set of memory objects with maximal energy
profit whose sizes fit the scratchpad.  Sizes here are in bytes but are
word-multiples, so the DP runs over ``capacity // granularity`` states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SolverError


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate item.

    Attributes:
        name: identifier returned in the solution.
        size: weight in bytes (non-negative).
        profit: value gained by selecting the item.
    """

    name: str
    size: int
    profit: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SolverError(f"item {self.name!r} has negative size")


@dataclass
class KnapsackSolution:
    """Selected items and the profit they achieve."""

    selected: list[str]
    total_profit: float
    total_size: int


def knapsack_01(items: list[KnapsackItem], capacity: int,
                granularity: int = 4) -> KnapsackSolution:
    """Solve the 0/1 knapsack exactly.

    Args:
        items: candidate items; items with non-positive profit are never
            selected (selecting them cannot help).
        capacity: knapsack capacity in bytes.
        granularity: common divisor of all sizes (4 for word-aligned
            code), used to shrink the DP table.

    Returns:
        The optimal selection (item order follows the input order).

    Raises:
        SolverError: if a size is not a multiple of *granularity* or the
            capacity is negative.
    """
    if capacity < 0:
        raise SolverError(f"negative capacity: {capacity}")
    candidates = [item for item in items if item.profit > 0.0]
    for item in candidates:
        if item.size % granularity != 0:
            raise SolverError(
                f"item {item.name!r} size {item.size} is not a multiple "
                f"of {granularity}"
            )
    # Zero-size items with positive profit are always taken.
    free_items = [item for item in candidates if item.size == 0]
    candidates = [item for item in candidates if item.size > 0]
    free_profit = sum(item.profit for item in free_items)
    free_names = [item.name for item in free_items]

    slots = capacity // granularity
    if slots == 0 or not candidates:
        return KnapsackSolution(free_names, free_profit, 0)

    # Full 2D table so the choice set can be traced back exactly:
    # table[i][w] = best profit using the first i items within w slots.
    num = len(candidates)
    table = [[0.0] * (slots + 1) for _ in range(num + 1)]
    for i, item in enumerate(candidates, start=1):
        weight = item.size // granularity
        previous = table[i - 1]
        current = table[i]
        for w in range(slots + 1):
            best = previous[w]
            if weight <= w:
                with_item = previous[w - weight] + item.profit
                if with_item > best:
                    best = with_item
            current[w] = best

    selected: list[str] = []
    total_size = 0
    w = slots
    for i in range(num, 0, -1):
        if table[i][w] != table[i - 1][w]:
            item = candidates[i - 1]
            selected.append(item.name)
            total_size += item.size
            w -= item.size // granularity
    selected.reverse()
    return KnapsackSolution(
        free_names + selected,
        free_profit + table[num][slots],
        total_size,
    )
