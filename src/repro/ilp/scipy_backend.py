"""LP relaxation solving via :func:`scipy.optimize.linprog` (HiGHS).

The backend converts a :class:`~repro.ilp.model.Model` (ignoring
integrality) into the matrix form HiGHS expects.  Bound overrides allow
the branch & bound solver to fix/branch variables without rebuilding the
matrices for every node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.ilp.expr import Variable
from repro.ilp.model import Model, Sense, SolveStatus
from repro.obs import metrics


@dataclass
class LpSolution:
    """Solution of one LP relaxation.

    Attributes:
        status: relaxation outcome.
        objective: objective in the model's sense (``None`` unless
            optimal).
        values: assignment of every model variable.
        iterations: simplex iterations the backend spent (HiGHS ``nit``
            / built-in backend pivots).
    """

    status: SolveStatus
    objective: float | None
    values: dict[Variable, float]
    iterations: int = 0


class LpRelaxationSolver:
    """Reusable LP solver for a fixed model structure.

    The constraint matrices are assembled once in the constructor; each
    :meth:`solve` call only swaps variable bounds, which is what branch &
    bound needs.
    """

    def __init__(self, model: Model) -> None:
        self._model = model
        self._variables = list(model.variables)
        self._index = {var: i for i, var in enumerate(self._variables)}
        n = len(self._variables)

        sign = 1.0 if model.sense is Sense.MINIMIZE else -1.0
        self._objective_sign = sign
        self._c = np.zeros(n)
        for var, coef in model.objective.terms.items():
            self._c[self._index[var]] += sign * coef
        self._objective_constant = model.objective.constant

        rows_ub: list[np.ndarray] = []
        rhs_ub: list[float] = []
        rows_eq: list[np.ndarray] = []
        rhs_eq: list[float] = []
        for constraint in model.constraints:
            row = np.zeros(n)
            for var, coef in constraint.expr.terms.items():
                row[self._index[var]] += coef
            bound = -constraint.expr.constant
            if constraint.sense == "<=":
                rows_ub.append(row)
                rhs_ub.append(bound)
            elif constraint.sense == ">=":
                rows_ub.append(-row)
                rhs_ub.append(-bound)
            else:
                rows_eq.append(row)
                rhs_eq.append(bound)
        self._a_ub = np.vstack(rows_ub) if rows_ub else None
        self._b_ub = np.array(rhs_ub) if rhs_ub else None
        self._a_eq = np.vstack(rows_eq) if rows_eq else None
        self._b_eq = np.array(rhs_eq) if rhs_eq else None

    @property
    def variables(self) -> list[Variable]:
        """Model variables in column order."""
        return list(self._variables)

    def solve(
        self,
        bound_overrides: Mapping[Variable, tuple[float, float]] | None = None,
    ) -> LpSolution:
        """Solve the LP relaxation, optionally overriding variable bounds.

        Args:
            bound_overrides: per-variable ``(lower, upper)`` replacing
                the declared bounds (used for branching).

        Returns:
            The relaxation solution; objective is in the *model's*
            sense (maximisation objectives are returned un-negated).
        """
        metrics.inc("ilp.lp_solves")
        bounds = []
        overrides = bound_overrides or {}
        for var in self._variables:
            low, high = overrides.get(var, (var.lower, var.upper))
            if low > high:
                return LpSolution(SolveStatus.INFEASIBLE, None, {})
            bounds.append((low, None if high == float("inf") else high))

        result = linprog(
            self._c,
            A_ub=self._a_ub,
            b_ub=self._b_ub,
            A_eq=self._a_eq,
            b_eq=self._b_eq,
            bounds=bounds,
            method="highs",
        )
        iterations = int(getattr(result, "nit", 0) or 0)
        metrics.inc("ilp.lp_iterations", iterations)
        if result.status == 2:
            return LpSolution(SolveStatus.INFEASIBLE, None, {},
                              iterations=iterations)
        if result.status == 3:
            return LpSolution(SolveStatus.UNBOUNDED, None, {},
                              iterations=iterations)
        if result.status != 0:
            raise SolverError(f"HiGHS failed: {result.message}")

        values = {
            var: float(result.x[i]) for i, var in enumerate(self._variables)
        }
        objective = (
            self._objective_sign * float(result.fun)
            + self._objective_constant
        )
        return LpSolution(SolveStatus.OPTIMAL, objective, values,
                          iterations=iterations)
