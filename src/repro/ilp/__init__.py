"""A small integer-linear-programming toolkit.

The paper solves its allocation problem with a commercial ILP solver
(CPLEX [5]).  This package provides the reproduction's equivalent,
built on :func:`scipy.optimize.linprog` (HiGHS) for LP relaxations:

* :mod:`repro.ilp.expr` / :mod:`repro.ilp.model` — a PuLP-like modelling
  layer (variables, linear expressions, constraints, a model);
* :mod:`repro.ilp.scipy_backend` — LP relaxation solving;
* :mod:`repro.ilp.branch_and_bound` — exact 0/1 / integer solving by
  best-bound branch & bound with an LP-rounding warm start;
* :mod:`repro.ilp.knapsack` — an exact dynamic-programming 0/1 knapsack
  used by the Steinke baseline.
"""

from repro.ilp.expr import LinExpr, Variable
from repro.ilp.model import (
    Constraint,
    Model,
    Sense,
    SolveResult,
    SolveStatus,
)
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.knapsack import knapsack_01
from repro.ilp.scipy_backend import LpRelaxationSolver
from repro.ilp.simplex import SimplexLpSolver

__all__ = [
    "SimplexLpSolver",
    "LinExpr",
    "Variable",
    "Constraint",
    "Model",
    "Sense",
    "SolveResult",
    "SolveStatus",
    "BranchAndBoundSolver",
    "knapsack_01",
    "LpRelaxationSolver",
]
