"""A self-contained dense two-phase primal simplex LP solver.

An alternative to the HiGHS backend with zero non-numpy dependencies:
useful where scipy is unavailable, and as an independent oracle the
test suite cross-validates the default backend against.  It is a
textbook implementation (two-phase, Bland's rule, dense numpy tableau)
— correct and deterministic, but intended for the small/medium LPs of
this package, not for production-scale programs.

The model is brought to standard form as

    minimise    c'x
    subject to  A x (<=|=) b,   x >= 0

by shifting every variable to its lower bound and expressing finite
upper bounds as extra ``<=`` rows.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.errors import SolverError
from repro.ilp.expr import Variable
from repro.ilp.model import Model, Sense, SolveStatus
from repro.ilp.scipy_backend import LpSolution
from repro.obs import metrics

#: Numerical tolerance of the pivoting rules.
TOLERANCE = 1e-9


class SimplexLpSolver:
    """Drop-in alternative to :class:`LpRelaxationSolver`.

    The constraint structure is captured once; each :meth:`solve` call
    re-derives the standard form for the requested variable bounds (the
    shift by the lower bound depends on them).
    """

    def __init__(self, model: Model) -> None:
        self._model = model
        self._variables = list(model.variables)
        self._index = {var: i for i, var in enumerate(self._variables)}
        n = len(self._variables)

        sign = 1.0 if model.sense is Sense.MINIMIZE else -1.0
        self._objective_sign = sign
        self._c = np.zeros(n)
        for var, coef in model.objective.terms.items():
            self._c[self._index[var]] += sign * coef
        self._objective_constant = model.objective.constant

        rows: list[np.ndarray] = []
        rhs: list[float] = []
        senses: list[str] = []
        for constraint in model.constraints:
            row = np.zeros(n)
            for var, coef in constraint.expr.terms.items():
                row[self._index[var]] += coef
            bound = -constraint.expr.constant
            if constraint.sense == ">=":
                rows.append(-row)
                rhs.append(-bound)
                senses.append("<=")
            else:
                rows.append(row)
                rhs.append(bound)
                senses.append(constraint.sense)
        self._rows = rows
        self._rhs = rhs
        self._senses = senses

    # ------------------------------------------------------------------

    def solve(
        self,
        bound_overrides: Mapping[Variable, tuple[float, float]] | None
        = None,
    ) -> LpSolution:
        """Solve the LP relaxation under optional bound overrides."""
        metrics.inc("ilp.lp_solves")
        overrides = bound_overrides or {}
        lowers = np.empty(len(self._variables))
        uppers = np.empty(len(self._variables))
        for i, var in enumerate(self._variables):
            low, high = overrides.get(var, (var.lower, var.upper))
            if low > high:
                return LpSolution(SolveStatus.INFEASIBLE, None, {})
            if not math.isfinite(low):
                raise SolverError(
                    f"simplex backend requires finite lower bounds "
                    f"({var.name!r})"
                )
            lowers[i] = low
            uppers[i] = high

        # Shift x = lower + y with y >= 0; finite uppers become rows.
        rows = [np.array(row) for row in self._rows]
        rhs = [
            value - float(np.dot(row, lowers))
            for row, value in zip(rows, self._rhs)
        ]
        senses = list(self._senses)
        for i, upper in enumerate(uppers):
            if math.isfinite(upper):
                bound_row = np.zeros(len(self._variables))
                bound_row[i] = 1.0
                rows.append(bound_row)
                rhs.append(upper - lowers[i])
                senses.append("<=")

        solution, pivots = _two_phase_simplex(
            np.array(self._c), rows, np.array(rhs), senses
        )
        metrics.inc("ilp.lp_iterations", pivots)
        if isinstance(solution, SolveStatus):
            return LpSolution(solution, None, {}, iterations=pivots)
        y = solution
        x = lowers + y
        values = {
            var: float(x[i]) for i, var in enumerate(self._variables)
        }
        objective = (
            self._objective_sign * float(np.dot(self._c, x))
            + self._objective_constant
        )
        return LpSolution(SolveStatus.OPTIMAL, objective, values,
                          iterations=pivots)


def _two_phase_simplex(
    c: np.ndarray,
    rows: list[np.ndarray],
    rhs: np.ndarray,
    senses: list[str],
):
    """Minimise ``c'y`` s.t. ``rows y (<=|=) rhs``, ``y >= 0``.

    Returns ``(y, pivots)`` with the optimal ``y`` vector, or
    ``(status, pivots)`` for infeasible/unbounded problems — *pivots*
    is the total simplex pivot count over both phases.
    """
    total_pivots = 0
    num_vars = len(c)
    num_rows = len(rows)

    # Normalise to equalities with slack variables; make rhs >= 0.
    slack_count = sum(1 for sense in senses if sense == "<=")
    total = num_vars + slack_count + num_rows  # + artificials
    a = np.zeros((num_rows, total))
    b = np.zeros(num_rows)
    slack_pos = num_vars
    art_pos = num_vars + slack_count
    basis = np.zeros(num_rows, dtype=int)
    for i, (row, value, sense) in enumerate(zip(rows, rhs, senses)):
        coeffs = np.array(row, dtype=float)
        if sense == "<=":
            full = np.zeros(total)
            full[:num_vars] = coeffs
            full[slack_pos] = 1.0
            if value < 0:
                full = -full
                value = -value
            a[i] = full
            b[i] = value
            if full[slack_pos] > 0:
                basis[i] = slack_pos
            else:
                # slack became -1 after negation: need an artificial
                a[i, art_pos + i] = 1.0
                basis[i] = art_pos + i
            slack_pos += 1
        else:  # equality
            full = np.zeros(total)
            full[:num_vars] = coeffs
            if value < 0:
                full = -full
                value = -value
            a[i] = full
            b[i] = value
            a[i, art_pos + i] = 1.0
            basis[i] = art_pos + i

    uses_artificials = any(basis >= art_pos)

    if uses_artificials:
        phase1_cost = np.zeros(total)
        phase1_cost[art_pos:] = 1.0
        status, pivots = _simplex_core(a, b, phase1_cost, basis)
        total_pivots += pivots
        if status is SolveStatus.UNBOUNDED:
            # phase 1 cannot be unbounded
            return SolveStatus.INFEASIBLE, total_pivots
        objective = float(np.dot(phase1_cost[basis], b))
        if objective > 1e-7:
            return SolveStatus.INFEASIBLE, total_pivots
        # Drive any remaining artificials out of the basis.
        for i in range(num_rows):
            if basis[i] >= art_pos:
                pivot_col = None
                for j in range(art_pos):
                    if abs(a[i, j]) > TOLERANCE:
                        pivot_col = j
                        break
                if pivot_col is None:
                    continue  # redundant row
                _pivot(a, b, basis, i, pivot_col)

    phase2_cost = np.zeros(total)
    phase2_cost[:num_vars] = c
    # Drop the artificial columns so they can never re-enter.
    a_trim = np.array(a[:, :art_pos])
    cost_trim = phase2_cost[:art_pos]
    if np.any(basis >= art_pos):
        # Redundant rows still anchored to artificials: drop them.
        keep = basis < art_pos
        a_trim = a_trim[keep]
        b = b[keep]
        basis = basis[keep]
    status, pivots = _simplex_core(a_trim, b, cost_trim, basis)
    total_pivots += pivots
    if status is SolveStatus.UNBOUNDED:
        return SolveStatus.UNBOUNDED, total_pivots

    y = np.zeros(art_pos)
    for i, var in enumerate(basis):
        y[var] = b[i]
    return y[:num_vars], total_pivots


def _simplex_core(a: np.ndarray, b: np.ndarray, cost: np.ndarray,
                  basis: np.ndarray) -> tuple[SolveStatus | None, int]:
    """Primal simplex with Bland's rule on an equality-form tableau.

    Mutates ``a``, ``b`` and ``basis`` in place and returns
    ``(status, pivots)`` — status ``None`` on optimality.  Pivot totals
    are reported through the ``ilp.simplex.pivots`` counter once per
    call (never per iteration), so the hot loop carries no
    instrumentation.
    """
    max_iterations = 50 * (a.shape[0] + a.shape[1] + 10)
    pivots = 0
    try:
        for _ in range(max_iterations):
            # reduced costs: cost - cost_B * B^-1 * A (tableau is kept
            # pivoted, so B^-1*A is `a` itself)
            reduced = cost - cost[basis] @ a
            entering = None
            for j in range(a.shape[1]):
                if reduced[j] < -TOLERANCE:
                    entering = j  # Bland: smallest index
                    break
            if entering is None:
                return None, pivots  # optimal
            # ratio test (Bland: smallest basis index breaks ties)
            leaving = None
            best_ratio = math.inf
            for i in range(a.shape[0]):
                if a[i, entering] > TOLERANCE:
                    ratio = b[i] / a[i, entering]
                    if ratio < best_ratio - TOLERANCE or (
                        abs(ratio - best_ratio) <= TOLERANCE
                        and leaving is not None
                        and basis[i] < basis[leaving]
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                return SolveStatus.UNBOUNDED, pivots
            _pivot(a, b, basis, leaving, entering)
            pivots += 1
        raise SolverError("simplex did not converge (cycling?)")
    finally:
        metrics.inc("ilp.simplex.pivots", pivots)


def _pivot(a: np.ndarray, b: np.ndarray, basis: np.ndarray,
           row: int, col: int) -> None:
    """Pivot the tableau on ``(row, col)``."""
    pivot_value = a[row, col]
    a[row] /= pivot_value
    b[row] /= pivot_value
    for i in range(a.shape[0]):
        if i != row and abs(a[i, col]) > TOLERANCE:
            factor = a[i, col]
            a[i] -= factor * a[row]
            b[i] -= factor * b[row]
    basis[row] = col
