"""Optimisation model: variables, constraints, objective, solving."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.errors import SolverError
from repro.ilp.expr import LinExpr, Variable

Number = Union[int, float]


class Sense(enum.Enum):
    """Objective direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class SolveStatus(enum.Enum):
    """Outcome of a solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalised form."""

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in ("<=", ">=", "=="):
            raise SolverError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    @staticmethod
    def build(left: LinExpr, sense: str,
              right: Union[LinExpr, Variable, Number]) -> "Constraint":
        """Build ``left sense right`` as ``(left - right) sense 0``."""
        return Constraint(left - right, sense)

    def named(self, name: str) -> "Constraint":
        """Return the same constraint carrying a display name."""
        return Constraint(self.expr, self.sense, name)

    def satisfied_by(self, assignment: Mapping[Variable, float],
                     tolerance: float = 1e-6) -> bool:
        """Whether an assignment satisfies the constraint."""
        value = self.expr.evaluate(assignment)
        if self.sense == "<=":
            return value <= tolerance
        if self.sense == ">=":
            return value >= -tolerance
        return abs(value) <= tolerance

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.expr!r} {self.sense} 0"


@dataclass
class SolveTelemetry:
    """Convergence telemetry of one branch & bound solve.

    Attributes:
        nodes: explored branch & bound nodes.
        max_depth: deepest explored node (0 = root only).
        incumbent_updates: how often a better integral point was found
            (rounding warm start, integral LP nodes and dives).
        dives_attempted: periodic diving-heuristic attempts.
        dives_succeeded: dives that produced a feasible integral point.
        lp_iterations: simplex iterations (HiGHS) / pivots (built-in
            backend) summed over every LP relaxation solved.
        best_bound: the proven dual bound in the model's sense.
        trajectory: downsampled ``(node, incumbent, bound)`` points —
            the gap-over-nodes curve ``repro report`` renders.
    """

    nodes: int = 0
    max_depth: int = 0
    incumbent_updates: int = 0
    dives_attempted: int = 0
    dives_succeeded: int = 0
    lp_iterations: int = 0
    best_bound: float | None = None
    trajectory: list[tuple[int, float | None, float | None]] = field(
        default_factory=list
    )

    def as_json(self) -> dict:
        """Plain-dict form for span attributes and run files."""
        return {
            "nodes": self.nodes,
            "max_depth": self.max_depth,
            "incumbent_updates": self.incumbent_updates,
            "dives_attempted": self.dives_attempted,
            "dives_succeeded": self.dives_succeeded,
            "lp_iterations": self.lp_iterations,
            "best_bound": self.best_bound,
            "trajectory": [list(point) for point in self.trajectory],
        }


def relative_gap(objective: float | None,
                 best_bound: float | None) -> float | None:
    """Relative optimality gap ``|obj - bound| / max(1, |obj|)``.

    ``None`` when either side is unknown (no incumbent / no bound).
    """
    if objective is None or best_bound is None:
        return None
    return abs(objective - best_bound) / max(1.0, abs(objective))


@dataclass
class SolveResult:
    """Solution of a model.

    Attributes:
        status: solver outcome.
        objective: objective value (``None`` unless a solution exists).
        values: assignment of every model variable.
        nodes_explored: branch & bound nodes processed (0 for pure LPs).
        best_bound: proven dual bound in the model's sense (equals the
            objective for proven-optimal solves).
        telemetry: convergence telemetry, when the branch & bound
            solver produced it.
    """

    status: SolveStatus
    objective: float | None
    values: dict[Variable, float]
    nodes_explored: int = 0
    best_bound: float | None = None
    telemetry: SolveTelemetry | None = None

    @property
    def is_optimal(self) -> bool:
        """Whether a proven-optimal solution was found."""
        return self.status is SolveStatus.OPTIMAL

    @property
    def gap(self) -> float | None:
        """Relative optimality gap (``None`` when unknown)."""
        return relative_gap(self.objective, self.best_bound)

    def value(self, variable: Variable) -> float:
        """Value of one variable in the solution."""
        if not self.values:
            raise SolverError(f"no solution available ({self.status.value})")
        return self.values[variable]

    def binary_value(self, variable: Variable) -> int:
        """Value of a 0/1 variable, rounded to an exact int."""
        value = self.value(variable)
        rounded = round(value)
        if abs(value - rounded) > 1e-4 or rounded not in (0, 1):
            raise SolverError(
                f"variable {variable.name!r} is not binary-valued: {value}"
            )
        return int(rounded)


class Model:
    """An ILP/LP model.

    Example::

        model = Model("demo", Sense.MINIMIZE)
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y >= 1, "cover")
        model.set_objective(3 * x + 2 * y)
        result = model.solve()
    """

    def __init__(self, name: str = "model",
                 sense: Sense = Sense.MINIMIZE) -> None:
        self.name = name
        self.sense = sense
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: set[str] = set()

    # -- construction ------------------------------------------------------

    def add_variable(self, name: str, lower: float = 0.0,
                     upper: float = float("inf"),
                     is_integer: bool = False) -> Variable:
        """Create and register a variable."""
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r}")
        variable = Variable(name, lower, upper, is_integer)
        self.variables.append(variable)
        self._names.add(name)
        return variable

    def add_binary(self, name: str) -> Variable:
        """Create a 0/1 variable."""
        return self.add_variable(name, 0.0, 1.0, is_integer=True)

    def add_constraint(self, constraint: Constraint,
                       name: str = "") -> Constraint:
        """Register a constraint (optionally naming it)."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects a Constraint (build one with "
                "<=, >= or == on expressions)"
            )
        if name:
            constraint = constraint.named(name)
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expression: LinExpr | Variable | float) -> None:
        """Set the objective expression."""
        if isinstance(expression, Variable):
            expression = expression + 0.0
        elif isinstance(expression, (int, float)):
            expression = LinExpr(constant=float(expression))
        self.objective = expression

    # -- queries ------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Registered variables."""
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        """Registered constraints."""
        return len(self.constraints)

    @property
    def integer_variables(self) -> list[Variable]:
        """Variables with an integrality requirement."""
        return [v for v in self.variables if v.is_integer]

    def is_feasible(self, assignment: Mapping[Variable, float],
                    tolerance: float = 1e-6) -> bool:
        """Whether an assignment satisfies all constraints and bounds."""
        for variable in self.variables:
            value = assignment[variable]
            if value < variable.lower - tolerance:
                return False
            if value > variable.upper + tolerance:
                return False
            if variable.is_integer and \
                    abs(value - round(value)) > tolerance:
                return False
        return all(
            constraint.satisfied_by(assignment, tolerance)
            for constraint in self.constraints
        )

    # -- solving ------------------------------------------------------------

    def solve(self, solver=None) -> SolveResult:
        """Solve the model.

        Uses the branch & bound solver by default; a pure-LP model (no
        integer variables) is solved by a single LP call either way.
        """
        if solver is None:
            from repro.ilp.branch_and_bound import BranchAndBoundSolver
            solver = BranchAndBoundSolver()
        return solver.solve(self)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, {self.sense.value}, "
            f"{self.num_variables} vars, {self.num_constraints} cons)"
        )
