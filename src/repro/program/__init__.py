"""Program representation: basic blocks, functions, CFGs and execution.

The pipeline needs three views of a program:

* a *static* view — functions made of basic blocks with explicit
  control-flow edges (:mod:`repro.program.basicblock`,
  :mod:`repro.program.function`, :mod:`repro.program.program`);
* an *analysis* view — dominators and natural loops over the CFG
  (:mod:`repro.program.cfg`), used by the loop-cache allocator;
* a *dynamic* view — a deterministic executor that walks the CFG and
  produces the basic-block execution sequence and profile
  (:mod:`repro.program.executor`, :mod:`repro.program.profile`).
"""

from repro.program.basicblock import BasicBlock
from repro.program.behavior import (
    AlwaysTaken,
    BranchBehavior,
    FixedTrip,
    NeverTaken,
    TakenProbability,
)
from repro.program.cfg import ControlFlowGraph, NaturalLoop
from repro.program.executor import ExecutionResult, execute_program
from repro.program.function import Function
from repro.program.profile import ProfileData
from repro.program.program import Program

__all__ = [
    "BasicBlock",
    "BranchBehavior",
    "FixedTrip",
    "TakenProbability",
    "AlwaysTaken",
    "NeverTaken",
    "ControlFlowGraph",
    "NaturalLoop",
    "ExecutionResult",
    "execute_program",
    "Function",
    "ProfileData",
    "Program",
]
