"""Whole-program container and validation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.program.basicblock import BasicBlock
from repro.program.function import Function


@dataclass
class Program:
    """A complete program: ordered functions plus an entry point.

    Block names must be unique across the whole program (the builder
    enforces the ``function.label`` convention), because memory objects
    and profiles are keyed by block name.

    Attributes:
        functions: the functions in link order.
        entry: name of the function where execution starts.
        name: identifier used in reports.
    """

    functions: list[Function]
    entry: str
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.functions:
            raise ConfigurationError("program has no functions")
        self._function_map: dict[str, Function] = {}
        self._block_map: dict[str, BasicBlock] = {}
        self._block_function: dict[str, str] = {}
        for function in self.functions:
            if function.name in self._function_map:
                raise ConfigurationError(
                    f"duplicate function name {function.name!r}"
                )
            self._function_map[function.name] = function
            for block in function.blocks:
                if block.name in self._block_map:
                    raise ConfigurationError(
                        f"duplicate block name {block.name!r}"
                    )
                self._block_map[block.name] = block
                self._block_function[block.name] = function.name
        if self.entry not in self._function_map:
            raise ConfigurationError(f"unknown entry function {self.entry!r}")
        self.validate()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        return self._function_map[name]

    def block(self, name: str) -> BasicBlock:
        """Look up a block by its program-unique name."""
        return self._block_map[name]

    def function_of(self, block_name: str) -> str:
        """Return the name of the function containing *block_name*."""
        return self._block_function[block_name]

    def has_block(self, name: str) -> bool:
        """Whether a block with this name exists."""
        return name in self._block_map

    def all_blocks(self) -> list[BasicBlock]:
        """All blocks in function/link order."""
        return [block for function in self.functions for block in function]

    @property
    def entry_block(self) -> BasicBlock:
        """The entry block of the entry function."""
        return self._function_map[self.entry].entry

    @property
    def size(self) -> int:
        """Total code size in bytes (no padding)."""
        return sum(function.size for function in self.functions)

    @property
    def num_blocks(self) -> int:
        """Total number of basic blocks."""
        return len(self._block_map)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants.

        * branch/jump/fallthrough edges target existing blocks of the
          same function;
        * call targets are existing functions;
        * a block ending with a call declares a continuation
          (fallthrough) so the return address is well defined.

        Raises:
            ConfigurationError: on any violation.
        """
        for function in self.functions:
            function.validate_local_targets()
            for block in function.blocks:
                for successor in block.successors():
                    if self._block_function.get(successor) != function.name:
                        raise ConfigurationError(
                            f"block {block.name!r} targets block "
                            f"{successor!r} outside function "
                            f"{function.name!r}"
                        )
                if block.ends_with_call:
                    callee = block.call_target
                    if callee not in self._function_map:
                        raise ConfigurationError(
                            f"block {block.name!r} calls unknown function "
                            f"{callee!r}"
                        )
                    if block.fallthrough is None:
                        raise ConfigurationError(
                            f"call block {block.name!r} has no continuation"
                        )

    def listing(self) -> str:
        """Return a readable assembly-like listing of the whole program."""
        parts: list[str] = []
        for function in self.functions:
            parts.append(f"; ---- function {function.name} "
                         f"({function.size} bytes) ----")
            parts.extend(str(block) for block in function.blocks)
        return "\n".join(parts)
