"""Execution profiles: block, edge and call frequencies.

Profiles drive trace generation (hot paths), the Steinke baseline
(fetch counts) and the Ross loop-cache allocator (execution-time
density).  They are produced by :func:`repro.program.executor.execute_program`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class ProfileData:
    """Frequencies observed during one profiled execution.

    Attributes:
        block_counts: times each basic block was executed.
        edge_counts: times each intra-procedural edge ``(src, dst)`` was
            traversed.  Fall-through, branch-taken and post-call
            continuation transfers all count; call/return transfers to
            other functions do not.
        call_counts: times each ``(caller_block, callee_function)`` call
            happened.
    """

    block_counts: Counter = field(default_factory=Counter)
    edge_counts: Counter = field(default_factory=Counter)
    call_counts: Counter = field(default_factory=Counter)

    def block_count(self, block_name: str) -> int:
        """Executions of *block_name* (0 if never executed)."""
        return self.block_counts.get(block_name, 0)

    def edge_count(self, src: str, dst: str) -> int:
        """Traversals of the edge from *src* to *dst*."""
        return self.edge_counts.get((src, dst), 0)

    def fallthrough_count(self, block, ) -> int:
        """Traversals of a block's fall-through edge."""
        if block.fallthrough is None:
            return 0
        return self.edge_count(block.name, block.fallthrough)

    @property
    def total_block_executions(self) -> int:
        """Sum of all block execution counts."""
        return sum(self.block_counts.values())

    def hottest_blocks(self, limit: int | None = None) -> list[tuple[str, int]]:
        """Blocks sorted by execution count, hottest first."""
        ranked = self.block_counts.most_common()
        return ranked if limit is None else ranked[:limit]

    def merge(self, other: "ProfileData") -> "ProfileData":
        """Return a new profile summing this one with *other*.

        Useful for multi-input profiling (several representative data
        sets, as profiling-based techniques commonly use).
        """
        merged = ProfileData()
        merged.block_counts = self.block_counts + other.block_counts
        merged.edge_counts = self.edge_counts + other.edge_counts
        merged.call_counts = self.call_counts + other.call_counts
        return merged
