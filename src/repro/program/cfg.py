"""Control-flow-graph analysis: dominators and natural loops.

The Ross/Vahid loop-cache allocator preloads *loops and functions*; this
module finds the natural loops of each function so the allocator has its
candidate regions.  Dominators are computed with networkx's implementation
of the Cooper/Harvey/Kennedy algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError
from repro.program.function import Function
from repro.program.program import Program


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop of a function's CFG.

    Attributes:
        function: name of the containing function.
        header: the loop header block (dominates every block in the body).
        body: names of all blocks in the loop, including the header.
        back_edges: the ``(latch, header)`` edges that define the loop.
    """

    function: str
    header: str
    body: frozenset[str]
    back_edges: frozenset[tuple[str, str]]

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the loop body."""
        return len(self.body)

    def contains(self, block_name: str) -> bool:
        """Whether *block_name* is part of the loop."""
        return block_name in self.body

    def is_nested_in(self, other: "NaturalLoop") -> bool:
        """Whether this loop's body lies entirely inside *other*'s body."""
        return self is not other and self.body <= other.body


class ControlFlowGraph:
    """Intra-procedural CFG of one function, with analyses.

    The graph contains one node per basic block and one edge per
    branch-taken / fall-through / post-call-continuation transfer.
    """

    def __init__(self, function: Function) -> None:
        self._function = function
        graph = nx.DiGraph()
        for block in function.blocks:
            graph.add_node(block.name)
        for block in function.blocks:
            for successor in block.successors():
                graph.add_edge(block.name, successor)
        self._graph = graph
        self._entry = function.entry.name
        self._dominators: dict[str, str] | None = None

    @property
    def function(self) -> Function:
        """The function this CFG describes."""
        return self._function

    @property
    def entry(self) -> str:
        """Name of the entry block."""
        return self._entry

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx digraph (do not mutate)."""
        return self._graph

    def successors(self, block_name: str) -> list[str]:
        """Successor block names."""
        return sorted(self._graph.successors(block_name))

    def predecessors(self, block_name: str) -> list[str]:
        """Predecessor block names."""
        return sorted(self._graph.predecessors(block_name))

    def reachable_blocks(self) -> set[str]:
        """Blocks reachable from the entry."""
        return set(nx.descendants(self._graph, self._entry)) | {self._entry}

    # ------------------------------------------------------------------
    # Dominators
    # ------------------------------------------------------------------

    def immediate_dominators(self) -> dict[str, str]:
        """Immediate-dominator map over reachable blocks (entry maps to
        itself)."""
        if self._dominators is None:
            idom = dict(nx.immediate_dominators(self._graph, self._entry))
            # networkx >= 3.6 omits the entry's self-mapping; normalise.
            idom[self._entry] = self._entry
            self._dominators = idom
        return self._dominators

    def dominates(self, dominator: str, node: str) -> bool:
        """Whether *dominator* dominates *node* (reflexive)."""
        idom = self.immediate_dominators()
        if node not in idom:
            raise ConfigurationError(
                f"block {node!r} is unreachable in {self._function.name!r}"
            )
        current = node
        while True:
            if current == dominator:
                return True
            parent = idom[current]
            if parent == current:
                return False
            current = parent

    # ------------------------------------------------------------------
    # Natural loops
    # ------------------------------------------------------------------

    def natural_loops(self) -> list[NaturalLoop]:
        """Find all natural loops, merging loops that share a header.

        A back edge is an edge ``u -> h`` where ``h`` dominates ``u``.
        The loop body is ``h`` plus every block that can reach ``u``
        without passing through ``h``.
        """
        reachable = self.reachable_blocks()
        back_edges_by_header: dict[str, list[tuple[str, str]]] = {}
        for src, dst in self._graph.edges():
            if src not in reachable or dst not in reachable:
                continue
            if self.dominates(dst, src):
                back_edges_by_header.setdefault(dst, []).append((src, dst))

        loops: list[NaturalLoop] = []
        for header, back_edges in sorted(back_edges_by_header.items()):
            body: set[str] = {header}
            worklist: list[str] = []
            for latch, _ in back_edges:
                if latch not in body:
                    body.add(latch)
                    worklist.append(latch)
            while worklist:
                node = worklist.pop()
                for pred in self._graph.predecessors(node):
                    if pred in reachable and pred not in body:
                        body.add(pred)
                        worklist.append(pred)
            loops.append(
                NaturalLoop(
                    function=self._function.name,
                    header=header,
                    body=frozenset(body),
                    back_edges=frozenset(back_edges),
                )
            )
        return loops


def program_loops(program: Program) -> list[NaturalLoop]:
    """All natural loops of every function in *program*."""
    loops: list[NaturalLoop] = []
    for function in program.functions:
        loops.extend(ControlFlowGraph(function).natural_loops())
    return loops
