"""Basic blocks — the atomic unit of control flow.

A basic block is a straight-line instruction sequence with a single entry
(its first instruction) and a single exit (its terminator).  Control
leaves a block in one of four ways:

* **fall through** to the block named by :attr:`BasicBlock.fallthrough`;
* a **conditional branch** (terminator ``BRANCH``): taken to the branch
  target, otherwise falls through;
* an **unconditional jump** (terminator ``JUMP``);
* a **return** (terminator ``RETURN``) to the caller's continuation.

A **call** is modelled as the last instruction of a block whose
fall-through successor is the return continuation; the callee's entry
block executes next and its ``RETURN`` resumes at the continuation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa import Instruction, Opcode
from repro.program.behavior import BranchBehavior


@dataclass
class BasicBlock:
    """One basic block.

    Attributes:
        name: program-unique block name (convention: ``function.label``).
        instructions: the block body; control-flow instructions may only
            appear in the final position.
        fallthrough: name of the successor reached when the terminator
            falls through (or when there is no terminator).  ``None`` for
            blocks ending in an unconditional ``JUMP`` or ``RETURN``.
        behavior: outcome rule when the terminator is a conditional
            branch; ignored otherwise.
    """

    name: str
    instructions: list[Instruction]
    fallthrough: str | None = None
    behavior: BranchBehavior | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("basic block needs a non-empty name")
        if not self.instructions:
            raise ConfigurationError(f"block {self.name!r} has no instructions")
        for instruction in self.instructions[:-1]:
            if instruction.opcode.is_control_flow:
                raise ConfigurationError(
                    f"block {self.name!r}: control-flow instruction "
                    f"{instruction} not in terminator position"
                )
        terminator = self.instructions[-1]
        if terminator.opcode in (Opcode.JUMP, Opcode.RETURN):
            if self.fallthrough is not None:
                raise ConfigurationError(
                    f"block {self.name!r} ends in {terminator.opcode.value} "
                    "and must not declare a fallthrough successor"
                )
        elif self.fallthrough is None:
            raise ConfigurationError(
                f"block {self.name!r} can fall through but has no "
                "fallthrough successor"
            )
        if terminator.opcode is Opcode.BRANCH and self.behavior is None:
            raise ConfigurationError(
                f"block {self.name!r} ends in a conditional branch but has "
                "no branch behaviour"
            )

    # ------------------------------------------------------------------
    # Terminator queries
    # ------------------------------------------------------------------

    @property
    def terminator(self) -> Instruction:
        """The final instruction of the block."""
        return self.instructions[-1]

    @property
    def ends_with_call(self) -> bool:
        """Whether the block transfers to a callee before continuing."""
        return self.terminator.opcode is Opcode.CALL

    @property
    def ends_with_return(self) -> bool:
        """Whether the block returns to the caller."""
        return self.terminator.opcode is Opcode.RETURN

    @property
    def ends_with_jump(self) -> bool:
        """Whether the block ends with an unconditional jump."""
        return self.terminator.opcode is Opcode.JUMP

    @property
    def ends_with_branch(self) -> bool:
        """Whether the block ends with a conditional branch."""
        return self.terminator.opcode is Opcode.BRANCH

    @property
    def branch_target(self) -> str | None:
        """Target block name of the terminating branch/jump, if any."""
        if self.terminator.opcode in (Opcode.BRANCH, Opcode.JUMP):
            return self.terminator.target
        return None

    @property
    def call_target(self) -> str | None:
        """Called function name if the block ends with a call."""
        if self.ends_with_call:
            return self.terminator.target
        return None

    # ------------------------------------------------------------------
    # Successors and geometry
    # ------------------------------------------------------------------

    def successors(self) -> list[str]:
        """Intra-procedural successor block names (calls fall through)."""
        result: list[str] = []
        if self.branch_target is not None:
            result.append(self.branch_target)
        if self.fallthrough is not None:
            result.append(self.fallthrough)
        return result

    @property
    def size(self) -> int:
        """Block size in bytes."""
        return sum(instruction.size for instruction in self.instructions)

    @property
    def num_instructions(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"    {instruction}" for instruction in self.instructions)
        if self.fallthrough is not None:
            lines.append(f"    ; falls through to {self.fallthrough}")
        return "\n".join(lines)
