"""Branch-outcome behaviours attached to conditional branches.

The executor must be deterministic (a seed fully determines an
experiment), yet workloads need both loop-like branches ("taken 63 times,
then fall through") and data-dependent branches ("taken 30 % of the
time").  A :class:`BranchBehavior` encapsulates the decision rule; the
executor keeps one stateful instance per branch block.
"""

from __future__ import annotations

import abc

from repro.utils.rng import DeterministicRng


class BranchBehavior(abc.ABC):
    """Decision rule for one conditional branch."""

    @abc.abstractmethod
    def next_outcome(self, rng: DeterministicRng) -> bool:
        """Return ``True`` if the branch is taken on this execution.

        Args:
            rng: the executor's random stream for this block (unused by
                deterministic behaviours).
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget any per-run state (visit counters)."""

    def clone(self) -> "BranchBehavior":
        """Return a fresh instance with the same parameters and no state."""
        return self  # stateless behaviours can share themselves


class FixedTrip(BranchBehavior):
    """Loop back-edge behaviour: taken ``trip_count - 1`` times, then not.

    Models a loop that runs a fixed number of iterations per entry.  The
    pattern repeats, so re-entering the loop restarts the count.
    """

    def __init__(self, trip_count: int) -> None:
        if trip_count < 1:
            raise ValueError(f"trip_count must be >= 1, got {trip_count}")
        self.trip_count = trip_count
        self._visits = 0

    def next_outcome(self, rng: DeterministicRng) -> bool:
        self._visits += 1
        return self._visits % self.trip_count != 0

    def reset(self) -> None:
        self._visits = 0

    def clone(self) -> "FixedTrip":
        return FixedTrip(self.trip_count)

    def __repr__(self) -> str:
        return f"FixedTrip({self.trip_count})"


class TakenProbability(BranchBehavior):
    """Data-dependent branch taken with a fixed probability."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        self.probability = probability

    def next_outcome(self, rng: DeterministicRng) -> bool:
        return rng.coin(self.probability)

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"TakenProbability({self.probability})"


class AlwaysTaken(BranchBehavior):
    """Branch taken on every execution."""

    def next_outcome(self, rng: DeterministicRng) -> bool:
        return True

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "AlwaysTaken()"


class NeverTaken(BranchBehavior):
    """Branch never taken (always falls through)."""

    def next_outcome(self, rng: DeterministicRng) -> bool:
        return False

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NeverTaken()"
