"""Functions: named, ordered collections of basic blocks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.program.basicblock import BasicBlock


@dataclass
class Function:
    """One function of a program.

    Attributes:
        name: program-unique function name.
        blocks: the function body in source/layout order; the first block
            is the entry.
    """

    name: str
    blocks: list[BasicBlock]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("function needs a non-empty name")
        if not self.blocks:
            raise ConfigurationError(f"function {self.name!r} has no blocks")
        seen: set[str] = set()
        for block in self.blocks:
            if block.name in seen:
                raise ConfigurationError(
                    f"function {self.name!r}: duplicate block {block.name!r}"
                )
            seen.add(block.name)
        self._block_map = {block.name: block for block in self.blocks}

    @property
    def entry(self) -> BasicBlock:
        """The function's entry block."""
        return self.blocks[0]

    @property
    def size(self) -> int:
        """Function code size in bytes."""
        return sum(block.size for block in self.blocks)

    def block(self, name: str) -> BasicBlock:
        """Look up a block by name.

        Raises:
            KeyError: if the function has no such block.
        """
        return self._block_map[name]

    def __contains__(self, block_name: str) -> bool:
        return block_name in self._block_map

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def validate_local_targets(self) -> None:
        """Check that branch/jump targets and fallthroughs stay in-function.

        Raises:
            ConfigurationError: on a dangling edge.
        """
        for block in self.blocks:
            for successor in block.successors():
                if successor not in self._block_map:
                    raise ConfigurationError(
                        f"function {self.name!r}: block {block.name!r} "
                        f"targets unknown block {successor!r}"
                    )
