"""Deterministic CFG execution.

The executor replaces the paper's ARMulator run: it walks a program's
control-flow graph, resolving conditional branches through each block's
:class:`~repro.program.behavior.BranchBehavior`, and records the sequence
of executed basic blocks.  The memory-hierarchy simulator later expands
that block sequence into an instruction-fetch address stream for a given
layout — so one profiled execution can be replayed against any memory
hierarchy, exactly like a recorded instruction trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.program.profile import ProfileData
from repro.program.program import Program
from repro.utils.rng import DeterministicRng

#: Default upper bound on executed blocks, guarding against accidental
#: infinite loops in hand-written workloads.
DEFAULT_MAX_STEPS = 50_000_000


@dataclass
class ExecutionResult:
    """Outcome of one program execution.

    Attributes:
        block_sequence: names of basic blocks in execution order.
        profile: aggregated block/edge/call frequencies.
        instruction_count: total original (non-padding) instructions
            executed.
    """

    block_sequence: list[str]
    profile: ProfileData
    instruction_count: int

    @property
    def num_block_executions(self) -> int:
        """Length of the block sequence."""
        return len(self.block_sequence)


def execute_program(
    program: Program,
    seed: int = 0,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ExecutionResult:
    """Execute *program* from its entry function until it returns.

    Args:
        program: the program to run (must pass :meth:`Program.validate`).
        seed: seed for probabilistic branch behaviours; fixed-trip
            behaviours are unaffected.
        max_steps: abort threshold on the number of executed blocks.

    Returns:
        The executed block sequence plus profile data.

    Raises:
        SimulationError: if execution exceeds *max_steps* (runaway loop)
            or returns with a corrupted call stack.
    """
    rng_root = DeterministicRng(seed)
    # Per-block behaviour instances: clone so repeated executions of the
    # same Program object start from fresh trip counters.
    behaviors = {
        block.name: block.behavior.clone()
        for block in program.all_blocks()
        if block.behavior is not None
    }
    block_rngs: dict[str, DeterministicRng] = {}

    sequence: list[str] = []
    profile = ProfileData()
    instruction_count = 0
    call_stack: list[str] = []

    current = program.entry_block.name
    steps = 0
    while True:
        steps += 1
        if steps > max_steps:
            raise SimulationError(
                f"execution exceeded {max_steps} blocks - "
                "likely an unbounded loop in the workload"
            )
        block = program.block(current)
        sequence.append(current)
        profile.block_counts[current] += 1
        instruction_count += block.num_instructions

        if block.ends_with_return:
            if not call_stack:
                break  # entry function returned: program ends
            nxt = call_stack.pop()
        elif block.ends_with_call:
            callee = block.call_target
            assert callee is not None and block.fallthrough is not None
            profile.call_counts[(current, callee)] += 1
            call_stack.append(block.fallthrough)
            nxt = program.function(callee).entry.name
        elif block.ends_with_jump:
            nxt = block.branch_target
            assert nxt is not None
            profile.edge_counts[(current, nxt)] += 1
        elif block.ends_with_branch:
            behavior = behaviors[current]
            rng = block_rngs.get(current)
            if rng is None:
                rng = rng_root.fork(len(block_rngs))
                block_rngs[current] = rng
            if behavior.next_outcome(rng):
                nxt = block.branch_target
            else:
                nxt = block.fallthrough
            assert nxt is not None
            profile.edge_counts[(current, nxt)] += 1
        else:
            nxt = block.fallthrough
            assert nxt is not None
            profile.edge_counts[(current, nxt)] += 1
        current = nxt

    return ExecutionResult(
        block_sequence=sequence,
        profile=profile,
        instruction_count=instruction_count,
    )
