"""Typed stage artifacts with content-addressed digests.

Every expensive stage of the experimental flow (figure 3) produces one
artifact — execution, trace formation, baseline cache simulation,
conflict-graph construction, allocation evaluation.  An artifact's
digest is a deterministic hash of *everything that influences its
content*: the program's structural fingerprint, the executor seed, the
trace-formation and cache configurations, the allocator identity and
the scratchpad size.  Two runs that would compute the same artifact
therefore compute the same digest, in any process, on any machine —
the property the :mod:`repro.engine.store` needs to reuse results
across sweeps, figures, benchmarks and operating-system processes.

Digests chain: a downstream stage's digest includes its upstream
stage's digest, so changing any input invalidates exactly the suffix
of the pipeline that depends on it.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, ClassVar

from repro.core.conflict_graph import ConflictGraph
from repro.memory.cache import CacheConfig
from repro.memory.kernel.stream import FetchStream
from repro.memory.stats import SimulationReport
from repro.program.profile import ProfileData
from repro.program.program import Program
from repro.traces.memory_object import MemoryObject
from repro.traces.tracegen import TraceGenConfig

#: Bump whenever the *meaning* of a stage's output changes (e.g. a
#: simulator fix): every digest embeds it, so old cached artifacts are
#: orphaned rather than silently reused.
SCHEMA_VERSION = 1

#: Hex digits kept from the sha256 digest (128 bits — collision-safe
#: for any realistic design-space size, short enough for filenames).
_DIGEST_LENGTH = 32


def canonical(value: Any) -> Any:
    """Reduce *value* to deterministic JSON-serialisable primitives.

    Dataclasses become sorted field dictionaries tagged with the class
    name, enums their values, floats their ``repr`` (so ``1`` and
    ``1.0`` canonicalise differently from ``"1"`` but identically to
    each other after a ``float()`` normalisation by the caller).
    """
    if is_dataclass(value) and not isinstance(value, type):
        reduced = {
            field.name: canonical(getattr(value, field.name))
            for field in fields(value)
        }
        reduced["__class__"] = type(value).__name__
        return reduced
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical(item) for item in value)
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if value is None or isinstance(value, (str, int, bool)):
        return value
    return repr(value)


def digest_inputs(stage: str, **inputs: Any) -> str:
    """Content digest of one stage invocation.

    Args:
        stage: stage name (``execution``, ``trace``, ...).
        **inputs: everything that determines the stage's output.

    Returns:
        A hex digest stable across processes and Python versions.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "stage": stage,
        "inputs": canonical(inputs),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:_DIGEST_LENGTH]


def fingerprint_program(program: Program) -> str:
    """Structural fingerprint of a program.

    Hashes everything the executor and trace generator observe: the
    function/block layout, every instruction's opcode and target, the
    fall-through links and the branch behaviours (whose ``repr`` spells
    out trip counts and probabilities).  Workload ``scale`` therefore
    reaches the fingerprint through the trip counts it changes.  The
    result is memoised on the program instance.
    """
    cached = getattr(program, "_engine_fingerprint", None)
    if cached is not None:
        return cached
    spec: list[Any] = [program.name, program.entry]
    for function in program.functions:
        blocks = []
        for block in function:
            blocks.append([
                block.name,
                [[instr.opcode.value, instr.target or ""]
                 for instr in block.instructions],
                block.fallthrough or "",
                repr(block.behavior) if block.behavior else "",
            ])
        spec.append([function.name, blocks])
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    fingerprint = hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()[:_DIGEST_LENGTH]
    program._engine_fingerprint = fingerprint
    return fingerprint


# -- digest constructors, one per stage ---------------------------------------


def execution_digest(program: Program, seed: int) -> str:
    """Digest of the profiling execution stage."""
    return digest_inputs(
        "execution",
        program=fingerprint_program(program),
        seed=seed,
    )


def trace_digest(execution: str, tracegen: TraceGenConfig) -> str:
    """Digest of the trace-formation stage."""
    return digest_inputs("trace", execution=execution, tracegen=tracegen)


def stream_digest(trace: str, spm_resident: frozenset[str],
                  placement: Any,
                  main_base: int, spm_base: int) -> str:
    """Digest of one compiled fetch stream (per program + layout).

    The stream is a pure function of the executed block sequence
    (chained through *trace*, which embeds the execution digest) and
    the linked image's layout inputs — the scratchpad-resident set,
    placement policy and base addresses.  Neither the cache
    configuration nor the scratchpad capacity participates: every
    cache geometry of a sweep replays the same stream, and the
    capacity only gates which resident sets are legal.
    """
    return digest_inputs(
        "stream",
        trace=trace,
        spm_resident=spm_resident,
        placement=placement,
        main_base=main_base,
        spm_base=spm_base,
    )


def baseline_digest(trace: str, cache: CacheConfig,
                    main_base: int, spm_base: int) -> str:
    """Digest of the baseline (cache-only) simulation stage."""
    return digest_inputs(
        "baseline",
        trace=trace,
        cache=cache,
        main_base=main_base,
        spm_base=spm_base,
    )


def graph_digest(baseline: str) -> str:
    """Digest of the conflict-graph construction stage."""
    return digest_inputs("graph", baseline=baseline)


def result_digest(graph: str, algorithm: str, spm_size: int,
                  options: dict[str, Any] | None = None) -> str:
    """Digest of one allocation decision's evaluated result.

    Args:
        graph: the conflict-graph digest (which chains every upstream
            input).
        algorithm: allocator identifier (``casa``, ``steinke``, ...).
        spm_size: scratchpad / loop-cache capacity in bytes.
        options: extra allocator parameters (e.g. Ross's
            ``max_regions``) that change the decision.
    """
    return digest_inputs(
        "result",
        graph=graph,
        algorithm=algorithm,
        spm_size=spm_size,
        options=options or {},
    )


def grid_sim_digest(stream: str, axis: list[Any]) -> str:
    """Digest of one grid simulation: a stream under a whole cache axis.

    Args:
        stream: the compiled fetch stream's digest (which chains the
            trace and layout inputs).
        axis: the JSON-friendly description of the cache axis — a
            :meth:`repro.memory.kernel.grid.SweepGrid.describe` value.

    One ``grid_sim`` artifact covers the *entire* axis, so a sweep
    stores one stack-distance profile's worth of reports instead of N
    independent baseline simulations.
    """
    return digest_inputs("grid_sim", stream=stream, axis=axis)


def grid_digest(graph: str, algorithm: str,
                spm_sizes: tuple[int, ...],
                options: dict[str, Any] | None = None) -> str:
    """Digest identifying one allocation grid (a whole capacity axis).

    Args:
        graph: the conflict-graph digest (chains every upstream input).
        algorithm: allocator identifier (``casa``, ``steinke``, ...).
        spm_sizes: every scratchpad / loop-cache capacity of the axis,
            ascending.
        options: extra allocator parameters (e.g. Ross's
            ``max_regions``).

    The grid digest embeds the *whole* capacity axis: warm-started
    solves make each step's solver telemetry a function of its
    neighbours, so grid results are keyed separately from the
    per-point ``result`` digests (whose artifacts stay cold-solve).
    """
    return digest_inputs(
        "grid",
        graph=graph,
        algorithm=algorithm,
        spm_sizes=list(spm_sizes),
        options=options or {},
    )


def grid_result_digest(grid: str, spm_size: int) -> str:
    """Digest of one capacity step's result within an allocation grid.

    Args:
        grid: the :func:`grid_digest` of the surrounding capacity axis.
        spm_size: this step's capacity in bytes.

    The artifact lands in the ``result`` stage like per-point results,
    but its digest chains the grid identity, so the grid path and the
    per-point path never serve each other's entries — which keeps the
    ``repro verify-grid`` differential honest even on a shared store.
    """
    return digest_inputs("result", grid=grid, spm_size=spm_size)


def workbench_digest(workload: str, scale: float, seed: int,
                     cache: CacheConfig, tracegen: TraceGenConfig,
                     backend: str | None = None) -> str:
    """Digest identifying one profiled workbench (in-memory memo key).

    The *backend* knob participates here — the memoised workbench
    carries its backend in its configuration, so requests for
    different backends must not share a memo — but deliberately not
    in any stage digest: both backends produce bit-identical
    artifacts, which therefore stay shared across backends.
    """
    return digest_inputs(
        "workbench",
        workload=workload,
        scale=float(scale),
        seed=seed,
        cache=cache,
        tracegen=tracegen,
        backend=backend or "",
    )


# -- artifact containers ------------------------------------------------------


@dataclass(frozen=True)
class ExecutionArtifact:
    """Output of the profiling execution stage."""

    #: Store stage name.
    STAGE: ClassVar[str] = "execution"
    digest: str
    block_sequence: list[str]
    profile: ProfileData


@dataclass(frozen=True)
class TraceArtifact:
    """Output of profile-guided trace formation."""

    #: Store stage name.
    STAGE: ClassVar[str] = "trace"
    digest: str
    memory_objects: list[MemoryObject]


@dataclass(frozen=True)
class StreamArtifact:
    """A compiled fetch stream (the vector kernel's input form)."""

    #: Store stage name.
    STAGE: ClassVar[str] = "stream"
    digest: str
    stream: FetchStream


@dataclass(frozen=True)
class BaselineSimArtifact:
    """Output of the cache-only baseline simulation."""

    #: Store stage name.
    STAGE: ClassVar[str] = "baseline"
    digest: str
    report: SimulationReport


@dataclass(frozen=True)
class GridSimArtifact:
    """One stream replayed under a whole cache axis, as one artifact.

    The payload is the grid-ordered report list of
    :func:`repro.memory.kernel.grid.simulate_grid`: storing the axis as
    a single entry means a DSE-shaped sweep pays one store round-trip
    (and one stack-distance profile) for N cache configurations.
    """

    #: Store stage name.
    STAGE: ClassVar[str] = "grid_sim"
    digest: str
    reports: list[SimulationReport]


@dataclass(frozen=True)
class ConflictGraphArtifact:
    """Output of conflict-graph construction."""

    #: Store stage name.
    STAGE: ClassVar[str] = "graph"
    digest: str
    graph: ConflictGraph


@dataclass(frozen=True)
class AllocationArtifact:
    """One allocation decision, evaluated end to end.

    The payload is the :class:`repro.core.pipeline.ExperimentResult`
    (typed loosely here to avoid a circular import with the pipeline
    façade that produces it).
    """

    #: Store stage name.
    STAGE: ClassVar[str] = "result"
    digest: str
    result: Any
