"""Tiered content-addressed artifact store over pluggable backends.

The store composes two tiers behind the :class:`StorageBackend`
protocol (``get`` / ``put`` / ``delete`` / ``entries`` / ``usage``):

* a front :class:`MemoryBackend` — an in-process LRU with an optional
  byte budget (admission *and* eviction are size-aware once a budget
  is set), what ``functools.lru_cache`` used to approximate;
* an optional persistent tier — by default the :class:`DiskBackend`,
  one pickle per artifact under a cache directory (default
  ``.casa_cache/``) that survives processes and is shared by parallel
  sweep workers; any other registered backend
  (:func:`register_backend` / :func:`make_backend`) slots in the same
  place, e.g. the :class:`KeyValueBackend` adapter for remote stores.

Backends are selected by **spec string** — ``"memory[:bytes]"``,
``"disk[:path]"``, ``"kv"`` or any registered name — mirroring the
``make_policy`` / ``make_allocator`` registries, with a typed
:class:`~repro.errors.UnknownBackendError` for unknown names.  Each
backend counts its own hits/misses/puts/evictions and reports them as
``store.backend.<name>.*`` metrics.

Disk entries are versioned and corruption-safe: a file that fails to
unpickle, carries the wrong schema version or the wrong digest is
moved into a ``quarantine/`` subdirectory (preserved for post-mortem
inspection), logged as a typed
:class:`~repro.errors.CacheCorruptionError`, and treated as a miss, so
the caller simply recomputes.  Writes are atomic (write-to-temp +
``os.replace``); temp files orphaned by killed processes are removed
when a store opens the directory, rate-limited by a marker file so a
daemon creating per-tenant stores does not rescan the tree per
request.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, MutableMapping, Protocol, \
    runtime_checkable

from repro.engine.artifacts import SCHEMA_VERSION
from repro.errors import CacheCorruptionError, ConfigurationError, \
    InjectedFault, UnknownBackendError
from repro.obs import metrics
from repro.resilience.faults import maybe_inject

#: Subdirectory of the cache dir where corrupt entries are preserved.
QUARANTINE_DIR = "quarantine"

#: Exceptions that mean "this pickle is corrupt or stale", as opposed
#: to programming errors that must propagate.  Unpickling arbitrary
#: bytes can raise most of these; anything else re-raises.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    ImportError,
    MemoryError,
    OSError,
    InjectedFault,
)

#: Default number of artifacts kept by the in-memory tier.
DEFAULT_MEMORY_ITEMS = 256

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "CASA_CACHE_DIR"

#: Marker file recording when a directory last had its write-temp
#: orphans swept (see :meth:`DiskBackend.sweep_orphans`).
SWEEP_MARKER = ".orphan_sweep"

#: Seconds between orphan sweeps of one cache directory.  A daemon
#: building per-tenant stores constructs :class:`DiskBackend` objects
#: far more often than writers die, so sweeps are rate-limited.
SWEEP_INTERVAL_S = 300.0


@dataclass
class BackendStats:
    """Hit/miss counters of one :class:`StorageBackend`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    errors: int = 0
    quarantined: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.puts} puts, {self.evictions} evictions"
        )


@runtime_checkable
class StorageBackend(Protocol):
    """One tier of artifact storage, keyed by ``(stage, digest)``.

    The protocol is deliberately small — five methods plus a ``name``
    and a :class:`BackendStats` — so remote stores (key-value
    services, object stores) can adapt in a page of code; see
    :class:`KeyValueBackend` for the reference adapter and
    :func:`register_backend` for the registry hook.
    """

    #: Identity used in ``store.backend.<name>.*`` metrics.
    name: str
    #: Per-backend hit/miss accounting.
    stats: BackendStats

    def get(self, stage: str, digest: str) -> Any | None:
        """Return the artifact for (*stage*, *digest*) or ``None``."""
        ...

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        """Store *artifact* under (*stage*, *digest*)."""
        ...

    def delete(self, stage: str, digest: str) -> bool:
        """Drop one entry; return whether it existed."""
        ...

    def entries(self) -> list[tuple[str, str]]:
        """Every stored ``(stage, digest)`` key, sorted."""
        ...

    def usage(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` held by this backend."""
        ...


def _count(backend: "StorageBackend", event: str,
           amount: float = 1.0) -> None:
    """Emit one per-backend metric (no-op without a registry)."""
    metrics.inc(f"store.backend.{backend.name}.{event}", amount)


class MemoryBackend:
    """In-process LRU tier with item and optional byte budgets.

    Args:
        max_items: LRU capacity in artifacts.
        max_bytes: byte budget; ``None`` disables size accounting
            entirely (no serialisation cost per put).  With a budget,
            each artifact is sized by its pickle length — an artifact
            larger than the whole budget is *not admitted* (the caller
            keeps its reference; the cache stays useful), and puts
            evict from the LRU tail until the budget holds.
            Unpicklable artifacts (e.g. memory-only workbench memos)
            count as zero bytes and stay item-bounded only.
        name: metric identity (``store.backend.<name>.*``).
    """

    def __init__(self, max_items: int = DEFAULT_MEMORY_ITEMS,
                 max_bytes: int | None = None,
                 name: str = "memory") -> None:
        self.name = name
        self.max_items = max_items
        self.max_bytes = max_bytes
        self.stats = BackendStats()
        self._entries: OrderedDict[tuple[str, str],
                                   tuple[Any, int]] = OrderedDict()
        self._bytes = 0

    def _size_of(self, artifact: Any) -> int:
        if self.max_bytes is None:
            return 0
        try:
            return len(pickle.dumps(
                artifact, protocol=pickle.HIGHEST_PROTOCOL))
        except (pickle.PicklingError, TypeError, AttributeError):
            return 0

    def get(self, stage: str, digest: str) -> Any | None:
        """Return the artifact for (*stage*, *digest*) or ``None``."""
        key = (stage, digest)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            _count(self, "misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        _count(self, "hits")
        return entry[0]

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        """Admit *artifact*, evicting from the LRU tail as needed."""
        size = self._size_of(artifact)
        if self.max_bytes is not None and size > self.max_bytes:
            _count(self, "rejected")
            return
        key = (stage, digest)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (artifact, size)
        self._bytes += size
        self.stats.puts += 1
        _count(self, "puts")
        while len(self._entries) > self.max_items or (
            self.max_bytes is not None and self._bytes > self.max_bytes
        ):
            _, (_, dropped) = self._entries.popitem(last=False)
            self._bytes -= dropped
            self.stats.evictions += 1
            _count(self, "evictions")

    def delete(self, stage: str, digest: str) -> bool:
        """Drop one entry; return whether it existed."""
        entry = self._entries.pop((stage, digest), None)
        if entry is None:
            return False
        self._bytes -= entry[1]
        return True

    def entries(self) -> list[tuple[str, str]]:
        """Every cached ``(stage, digest)`` key, sorted."""
        return sorted(self._entries)

    def usage(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` (bytes 0 without a budget)."""
        return len(self._entries), self._bytes

    def clear(self) -> int:
        """Drop every entry; return how many were dropped."""
        removed = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        return removed


class DiskBackend:
    """On-disk pickle tier: one versioned envelope per artifact.

    Bit-compatible with every ``.casa_cache/`` layout this repository
    has ever written: entries live at ``{dir}/{stage}-{digest}.pkl``
    as ``{schema, stage, digest, artifact}`` pickles; corrupt or stale
    files are quarantined under ``quarantine/`` and recorded in
    :attr:`corruptions`; writes are atomic (temp + ``os.replace``).

    Args:
        cache_dir: directory of the tier (created on first write).
        sweep_interval_s: minimum seconds between orphan-temp sweeps
            of this directory (marker-file rate limit).
        name: metric identity (``store.backend.<name>.*``).
    """

    def __init__(self, cache_dir: str | os.PathLike,
                 sweep_interval_s: float = SWEEP_INTERVAL_S,
                 name: str = "disk") -> None:
        self.name = name
        self.cache_dir = Path(cache_dir)
        self.stats = BackendStats()
        self.corruptions: list[CacheCorruptionError] = []
        self.sweep_interval_s = sweep_interval_s
        self.sweep_orphans()

    # -- protocol -------------------------------------------------------------

    def get(self, stage: str, digest: str) -> Any | None:
        """Load one entry, quarantining it if corrupt or stale."""
        path = self._entry_path(stage, digest)
        if not path.is_file():
            self.stats.misses += 1
            _count(self, "misses")
            return None
        try:
            maybe_inject("store.read", stage=stage, digest=digest)
            with path.open("rb") as handle:
                envelope = pickle.load(handle)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("stage") != stage
                or envelope.get("digest") != digest
            ):
                raise ValueError("stale or foreign cache entry")
            self.stats.hits += 1
            _count(self, "hits")
            return envelope["artifact"]
        except _CORRUPTION_ERRORS as error:
            # Corrupt, truncated, stale-schema or unreadable entry:
            # quarantine it and let the caller recompute.  Anything
            # outside _CORRUPTION_ERRORS is a real bug and propagates.
            self._quarantine(path, stage, digest, error)
            self.stats.misses += 1
            _count(self, "misses")
            return None

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        """Write one entry atomically; failures never propagate."""
        path = self._entry_path(stage, digest)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            maybe_inject("store.write", stage=stage, digest=digest)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            envelope = {
                "schema": SCHEMA_VERSION,
                "stage": stage,
                "digest": digest,
                "artifact": artifact,
            }
            with temp.open("wb") as handle:
                pickle.dump(envelope, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
            self.stats.puts += 1
            _count(self, "puts")
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError, InjectedFault):
            # A read-only or full filesystem (or unpicklable artifact)
            # must not break experiments; the memory tier still holds
            # the artifact.  Unexpected errors propagate.
            self.stats.errors += 1
            _count(self, "errors")
            try:
                temp.unlink()
            except OSError:
                pass

    def delete(self, stage: str, digest: str) -> bool:
        """Unlink one entry; return whether it existed."""
        try:
            self._entry_path(stage, digest).unlink()
            return True
        except OSError:
            return False

    def entries(self) -> list[tuple[str, str]]:
        """Every stored ``(stage, digest)`` key, sorted."""
        keys = []
        for path in self.paths():
            stem = path.name[: -len(".pkl")]
            stage, _, digest = stem.partition("-")
            if digest:
                keys.append((stage, digest))
        return sorted(keys)

    def usage(self) -> tuple[int, int]:
        """``(file_count, total_bytes)`` of the on-disk tier."""
        paths = self.paths()
        return len(paths), sum(path.stat().st_size for path in paths)

    # -- maintenance ----------------------------------------------------------

    def paths(self) -> list[Path]:
        """Paths of every on-disk artifact file, sorted."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.pkl"))

    def quarantined_paths(self) -> list[Path]:
        """Paths of every quarantined (corrupt) artifact file."""
        quarantine = self.cache_dir / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(path for path in quarantine.iterdir()
                      if path.is_file())

    def clear(self) -> int:
        """Remove every entry (and the quarantine); return the count."""
        removed = 0
        if not self.cache_dir.is_dir():
            return removed
        for path in self.paths() + self.quarantined_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def sweep_orphans(self, force: bool = False) -> None:
        """Remove temp files orphaned by killed writer processes.

        Atomic writes go through ``<entry>.tmp.<pid>``; a process that
        dies mid-write leaves the temp file behind.  Files belonging
        to the current process are left alone (a concurrent write may
        be in flight).  The scan is rate-limited through the
        :data:`SWEEP_MARKER` file's mtime — one sweep per
        ``sweep_interval_s`` per directory, however many stores open
        it — unless *force* is true.
        """
        if not self.cache_dir.is_dir():
            return
        marker = self.cache_dir / SWEEP_MARKER
        if not force:
            try:
                age = time.time() - marker.stat().st_mtime
                if 0 <= age < self.sweep_interval_s:
                    return
            except OSError:
                pass  # no marker yet: sweep and create it
        own_suffix = f".tmp.{os.getpid()}"
        for path in self.cache_dir.glob("*.tmp.*"):
            if path.name.endswith(own_suffix):
                continue
            try:
                path.unlink()
            except OSError:
                pass
        try:
            marker.touch()
            os.utime(marker)
        except OSError:
            pass  # read-only tree: sweep ran, rate limit just won't

    # -- internals ------------------------------------------------------------

    def _entry_path(self, stage: str, digest: str) -> Path:
        return self.cache_dir / f"{stage}-{digest}.pkl"

    def _quarantine(self, path: Path, stage: str, digest: str,
                    error: BaseException) -> None:
        """Move a corrupt entry aside and log a typed corruption record."""
        self.stats.errors += 1
        self.stats.quarantined += 1
        _count(self, "errors")
        metrics.inc("store.quarantined")
        try:
            quarantine = self.cache_dir / QUARANTINE_DIR
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            # Quarantining is best-effort; at minimum get the bad
            # entry out of the lookup path.
            try:
                path.unlink()
            except OSError:
                pass
        self.corruptions.append(CacheCorruptionError(
            f"corrupt cache entry for stage {stage!r}: "
            f"{type(error).__name__}: {error}",
            stage=stage, digest=digest, path=str(path),
        ))


class KeyValueBackend:
    """Reference adapter from the protocol to a key-value service.

    Stores the same versioned pickle envelopes the disk tier writes,
    but as *bytes under string keys* in any mutable mapping — the
    shape of every remote key-value store (Redis, memcached, an
    object store bucket).  A real remote backend supplies a mapping
    proxy whose ``__getitem__`` / ``__setitem__`` do network I/O and
    registers itself under a name (:func:`register_backend`); this
    in-process dict variant is what the backend contract test runs
    and doubles as a shared-nothing tier for tests and demos.

    Args:
        mapping: the key → envelope-bytes mapping (default a dict).
        name: metric identity (``store.backend.<name>.*``).
    """

    def __init__(self, mapping: MutableMapping[str, bytes] | None = None,
                 name: str = "kv") -> None:
        self.name = name
        self.stats = BackendStats()
        self.mapping: MutableMapping[str, bytes] = \
            mapping if mapping is not None else {}

    @staticmethod
    def _key(stage: str, digest: str) -> str:
        return f"{stage}-{digest}"

    def get(self, stage: str, digest: str) -> Any | None:
        """Fetch and unpickle one envelope; corrupt values are misses."""
        raw = self.mapping.get(self._key(stage, digest))
        if raw is None:
            self.stats.misses += 1
            _count(self, "misses")
            return None
        try:
            envelope = pickle.loads(raw)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("stage") != stage
                or envelope.get("digest") != digest
            ):
                raise ValueError("stale or foreign cache entry")
        except _CORRUPTION_ERRORS:
            self.mapping.pop(self._key(stage, digest), None)
            self.stats.errors += 1
            self.stats.misses += 1
            _count(self, "errors")
            return None
        self.stats.hits += 1
        _count(self, "hits")
        return envelope["artifact"]

    def put(self, stage: str, digest: str, artifact: Any) -> None:
        """Pickle one envelope into the mapping (skip unpicklables)."""
        envelope = {
            "schema": SCHEMA_VERSION,
            "stage": stage,
            "digest": digest,
            "artifact": artifact,
        }
        try:
            raw = pickle.dumps(envelope,
                               protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            self.stats.errors += 1
            _count(self, "errors")
            return
        self.mapping[self._key(stage, digest)] = raw
        self.stats.puts += 1
        _count(self, "puts")

    def delete(self, stage: str, digest: str) -> bool:
        """Drop one entry; return whether it existed."""
        return self.mapping.pop(
            self._key(stage, digest), None) is not None

    def entries(self) -> list[tuple[str, str]]:
        """Every stored ``(stage, digest)`` key, sorted."""
        keys = []
        for key in self.mapping:
            stage, _, digest = key.partition("-")
            if digest:
                keys.append((stage, digest))
        return sorted(keys)

    def usage(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` of the mapping."""
        return len(self.mapping), sum(
            len(raw) for raw in self.mapping.values())

    def clear(self) -> int:
        """Drop every entry; return how many were dropped."""
        removed = len(self.mapping)
        self.mapping.clear()
        return removed


# -- backend registry ----------------------------------------------------------


def _default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or ".casa_cache"


def _make_memory(arg: str | None) -> MemoryBackend:
    if arg is None:
        return MemoryBackend()
    try:
        budget = int(arg)
    except ValueError:
        raise ConfigurationError(
            f"memory backend wants a byte budget, got {arg!r}"
        )
    return MemoryBackend(max_bytes=budget)


def _make_disk(arg: str | None) -> DiskBackend:
    return DiskBackend(arg if arg else _default_cache_dir())


def _make_kv(arg: str | None) -> KeyValueBackend:
    del arg  # the in-process variant has nothing to configure
    return KeyValueBackend()


_BACKENDS: dict[str, Callable[[str | None], Any]] = {
    "memory": _make_memory,
    "disk": _make_disk,
    "kv": _make_kv,
}


def register_backend(name: str,
                     factory: Callable[[str | None], Any]) -> None:
    """Register a storage backend *factory* under *name*.

    The hook for remote backends: *factory* receives the text after
    the first ``:`` of a spec (or ``None``) and returns a
    :class:`StorageBackend`.  Registered names are accepted anywhere
    a backend spec is — ``ArtifactStore(backend=...)``,
    ``default_store(backend=...)``, ``repro serve --store-backend``.
    """
    _BACKENDS[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (feeds errors and CLI help)."""
    return tuple(sorted(_BACKENDS))


def make_backend(spec: str) -> Any:
    """Build one :class:`StorageBackend` from a spec string.

    Grammar: ``name[:arg]`` — ``"memory"``, ``"memory:1048576"``
    (byte budget), ``"disk"``, ``"disk:/var/cache/casa"``, or any
    :func:`register_backend` name with its argument.

    Raises:
        UnknownBackendError: for a name outside the registry.
        ConfigurationError: for a malformed argument.
    """
    name, _, arg = spec.partition(":")
    factory = _BACKENDS.get(name)
    if factory is None:
        raise UnknownBackendError(name, available_backends())
    return factory(arg if arg else None)


# -- the two-tier store --------------------------------------------------------


@dataclass
class StoreStats:
    """Hit/miss counters of one :class:`ArtifactStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_errors: int = 0
    quarantined: int = 0
    per_stage: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.memory_hits} memory hits, {self.disk_hits} disk "
            f"hits, {self.misses} misses, {self.puts} puts, "
            f"{self.disk_errors} corrupt entries dropped"
        )


class ArtifactStore:
    """Memory LRU plus an optional persistent backend, keyed by digest.

    Args:
        cache_dir: directory for a :class:`DiskBackend` persistent
            tier; ``None`` disables it (memory-only store).  Ignored
            when *backend* names a tier of its own.
        memory_items: LRU item capacity of the in-memory tier.
        backend: the persistent tier as a spec string
            (``"memory[:bytes]"``, ``"disk[:path]"``, a registered
            name — see :func:`make_backend`) or a ready
            :class:`StorageBackend`.  ``"memory[:bytes]"`` configures
            the *front* tier instead (a memory-only store, optionally
            byte-budgeted).
        memory_bytes: byte budget of the in-memory tier (``None`` =
            item-bounded only).
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 memory_items: int = DEFAULT_MEMORY_ITEMS, *,
                 backend: "str | StorageBackend | None" = None,
                 memory_bytes: int | None = None) -> None:
        persist: Any = None
        if isinstance(backend, str):
            name, _, arg = backend.partition(":")
            if name == "memory":
                if arg:
                    memory_bytes = _make_memory(arg).max_bytes
            else:
                if name == "disk" and not arg and cache_dir is not None:
                    persist = DiskBackend(cache_dir)
                else:
                    persist = make_backend(backend)
        elif backend is not None:
            persist = backend
        elif cache_dir is not None:
            persist = DiskBackend(cache_dir)
        self._memory = MemoryBackend(max_items=memory_items,
                                     max_bytes=memory_bytes)
        self._persist = persist
        self.cache_dir: Path | None = getattr(persist, "cache_dir",
                                              None)
        self.stats = StoreStats()

    @property
    def memory_backend(self) -> MemoryBackend:
        """The in-memory front tier."""
        return self._memory

    @property
    def persistent_backend(self) -> Any:
        """The persistent tier, or ``None`` for memory-only stores."""
        return self._persist

    @property
    def corruptions(self) -> list[CacheCorruptionError]:
        """Corruption records of the persistent tier (may be empty)."""
        return getattr(self._persist, "corruptions", [])

    # -- lookup ---------------------------------------------------------------

    def get(self, stage: str, digest: str, *,
            disk: bool = True) -> Any | None:
        """Return the cached artifact for (*stage*, *digest*) or ``None``.

        Consults the memory tier first, then (when enabled and
        *disk* is true) the persistent tier, promoting its hits into
        memory.
        """
        artifact = self._memory.get(stage, digest)
        if artifact is not None:
            self.stats.memory_hits += 1
            return artifact
        if disk and self._persist is not None:
            artifact = self._persist.get(stage, digest)
            self._sync_persist_stats()
            if artifact is not None:
                self.stats.disk_hits += 1
                self._memory.put(stage, digest, artifact)
                self.stats.evictions = self._memory.stats.evictions
                return artifact
        self.stats.misses += 1
        return None

    def put(self, stage: str, digest: str, artifact: Any, *,
            disk: bool = True) -> None:
        """Cache *artifact* under (*stage*, *digest*) in both tiers."""
        self.stats.puts += 1
        self.stats.per_stage[stage] = self.stats.per_stage.get(stage, 0) + 1
        self._memory.put(stage, digest, artifact)
        self.stats.evictions = self._memory.stats.evictions
        if disk and self._persist is not None:
            self._persist.put(stage, digest, artifact)
            self._sync_persist_stats()

    def get_or_compute(self, stage: str, digest: str,
                       compute: Callable[[], Any], *,
                       disk: bool = True) -> tuple[Any, bool]:
        """Load-or-recompute: return ``(artifact, was_cached)``.

        A corrupted or version-mismatched persistent entry counts as a
        miss — *compute* runs and its result replaces the bad entry.
        """
        artifact = self.get(stage, digest, disk=disk)
        if artifact is not None:
            return artifact, True
        artifact = compute()
        self.put(stage, digest, artifact, disk=disk)
        return artifact, False

    # -- maintenance ----------------------------------------------------------

    def clear(self, *, memory: bool = True, disk: bool = True) -> int:
        """Drop cached artifacts; return persistent entries removed.

        Clearing the disk tier also empties the quarantine directory.
        """
        if memory:
            self._memory.clear()
        removed = 0
        if disk and self._persist is not None:
            removed = self._persist.clear()
        return removed

    def disk_entries(self) -> list[Path]:
        """Paths of every on-disk artifact (empty for non-disk tiers)."""
        if isinstance(self._persist, DiskBackend):
            return self._persist.paths()
        return []

    def quarantined_entries(self) -> list[Path]:
        """Paths of every quarantined (corrupt) artifact file."""
        if isinstance(self._persist, DiskBackend):
            return self._persist.quarantined_paths()
        return []

    def disk_usage(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` of the persistent tier."""
        if self._persist is None:
            return 0, 0
        return self._persist.usage()

    # -- internals ------------------------------------------------------------

    def _sync_persist_stats(self) -> None:
        """Mirror the persistent tier's error counters into stats."""
        persist = self._persist
        self.stats.disk_errors = persist.stats.errors
        self.stats.quarantined = persist.stats.quarantined


# -- process-wide default store ----------------------------------------------

_DEFAULT_STORE: ArtifactStore | None = None


def default_store(backend: str | None = None) -> ArtifactStore:
    """The process-wide store used when no store is passed explicitly.

    Created on first use: from the *backend* spec when one is given
    (``"memory[:bytes]"`` / ``"disk[:path]"`` / a registered name —
    see :func:`make_backend`), otherwise memory-only unless the
    :data:`CACHE_DIR_ENV` environment variable names a cache
    directory (the CLI configures a disk-backed store explicitly via
    :func:`set_default_store`).  Once a store exists, it is returned
    as-is; pass a spec to :func:`set_default_store` to replace it.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        if backend is not None:
            _DEFAULT_STORE = ArtifactStore(backend=backend)
        else:
            _DEFAULT_STORE = ArtifactStore(
                cache_dir=os.environ.get(CACHE_DIR_ENV) or None
            )
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore | str | None
                      ) -> ArtifactStore | None:
    """Replace the process-wide store; returns the previous one.

    Accepts a ready :class:`ArtifactStore`, a backend spec string
    (``"disk:/tmp/cache"`` builds the store for you), or ``None`` to
    drop the current store (the next :func:`default_store` call
    creates a fresh one).
    """
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    if isinstance(store, str):
        store = ArtifactStore(backend=store)
    _DEFAULT_STORE = store
    return previous
