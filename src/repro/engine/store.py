"""Two-tier content-addressed artifact store.

Tier 1 is an in-memory LRU shared by everything in the process (what
``functools.lru_cache`` used to approximate, minus the blindness to
config changes).  Tier 2 is an optional on-disk cache — one pickle per
artifact under a cache directory (default ``.casa_cache/``) — that
survives processes and is shared by parallel sweep workers.

Disk entries are versioned and corruption-safe: a file that fails to
unpickle, carries the wrong schema version or the wrong digest is
moved into a ``quarantine/`` subdirectory (preserved for post-mortem
inspection), logged as a typed
:class:`~repro.errors.CacheCorruptionError`, and treated as a miss, so
the caller simply recomputes.  Writes are atomic (write-to-temp +
``os.replace``) and temp files orphaned by killed processes are
removed when a store opens the directory.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.engine.artifacts import SCHEMA_VERSION
from repro.errors import CacheCorruptionError, InjectedFault
from repro.obs import metrics
from repro.resilience.faults import maybe_inject

#: Subdirectory of the cache dir where corrupt entries are preserved.
QUARANTINE_DIR = "quarantine"

#: Exceptions that mean "this pickle is corrupt or stale", as opposed
#: to programming errors that must propagate.  Unpickling arbitrary
#: bytes can raise most of these; anything else re-raises.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    ImportError,
    MemoryError,
    OSError,
    InjectedFault,
)

#: Default number of artifacts kept by the in-memory tier.
DEFAULT_MEMORY_ITEMS = 256

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "CASA_CACHE_DIR"


@dataclass
class StoreStats:
    """Hit/miss counters of one :class:`ArtifactStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_errors: int = 0
    quarantined: int = 0
    per_stage: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.memory_hits} memory hits, {self.disk_hits} disk "
            f"hits, {self.misses} misses, {self.puts} puts, "
            f"{self.disk_errors} corrupt entries dropped"
        )


class ArtifactStore:
    """In-memory LRU plus optional on-disk pickle cache, keyed by digest.

    Args:
        cache_dir: directory for the on-disk tier; ``None`` disables it
            (memory-only store).
        memory_items: LRU capacity of the in-memory tier.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 memory_items: int = DEFAULT_MEMORY_ITEMS) -> None:
        self._memory: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._memory_items = memory_items
        self.cache_dir: Path | None = (
            Path(cache_dir) if cache_dir is not None else None
        )
        self.stats = StoreStats()
        self.corruptions: list[CacheCorruptionError] = []
        self._sweep_orphans()

    # -- lookup ---------------------------------------------------------------

    def get(self, stage: str, digest: str, *,
            disk: bool = True) -> Any | None:
        """Return the cached artifact for (*stage*, *digest*) or ``None``.

        Consults the memory tier first, then (when enabled and
        *disk* is true) the on-disk tier, promoting disk hits into
        memory.
        """
        key = (stage, digest)
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        if disk and self.cache_dir is not None:
            artifact = self._disk_load(stage, digest)
            if artifact is not None:
                self.stats.disk_hits += 1
                self._memory_put(key, artifact)
                return artifact
        self.stats.misses += 1
        return None

    def put(self, stage: str, digest: str, artifact: Any, *,
            disk: bool = True) -> None:
        """Cache *artifact* under (*stage*, *digest*) in both tiers."""
        self.stats.puts += 1
        self.stats.per_stage[stage] = self.stats.per_stage.get(stage, 0) + 1
        self._memory_put((stage, digest), artifact)
        if disk and self.cache_dir is not None:
            self._disk_store(stage, digest, artifact)

    def get_or_compute(self, stage: str, digest: str,
                       compute: Callable[[], Any], *,
                       disk: bool = True) -> tuple[Any, bool]:
        """Load-or-recompute: return ``(artifact, was_cached)``.

        A corrupted or version-mismatched disk entry counts as a miss —
        *compute* runs and its result replaces the bad entry.
        """
        artifact = self.get(stage, digest, disk=disk)
        if artifact is not None:
            return artifact, True
        artifact = compute()
        self.put(stage, digest, artifact, disk=disk)
        return artifact, False

    # -- maintenance ----------------------------------------------------------

    def clear(self, *, memory: bool = True, disk: bool = True) -> int:
        """Drop cached artifacts; return the number of disk files removed.

        Clearing the disk tier also empties the quarantine directory.
        """
        if memory:
            self._memory.clear()
        removed = 0
        if disk and self.cache_dir is not None and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.quarantined_entries():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def disk_entries(self) -> list[Path]:
        """Paths of every on-disk artifact (empty for memory-only)."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.pkl"))

    def quarantined_entries(self) -> list[Path]:
        """Paths of every quarantined (corrupt) artifact file."""
        if self.cache_dir is None:
            return []
        quarantine = self.cache_dir / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(path for path in quarantine.iterdir()
                      if path.is_file())

    def disk_usage(self) -> tuple[int, int]:
        """``(file_count, total_bytes)`` of the on-disk tier."""
        entries = self.disk_entries()
        return len(entries), sum(path.stat().st_size for path in entries)

    # -- internals ------------------------------------------------------------

    def _memory_put(self, key: tuple[str, str], artifact: Any) -> None:
        if key in self._memory:
            self._memory.move_to_end(key)
        self._memory[key] = artifact
        while len(self._memory) > self._memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _entry_path(self, stage: str, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{stage}-{digest}.pkl"

    def _disk_load(self, stage: str, digest: str) -> Any | None:
        path = self._entry_path(stage, digest)
        if not path.is_file():
            return None
        try:
            maybe_inject("store.read", stage=stage, digest=digest)
            with path.open("rb") as handle:
                envelope = pickle.load(handle)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("stage") != stage
                or envelope.get("digest") != digest
            ):
                raise ValueError("stale or foreign cache entry")
            return envelope["artifact"]
        except _CORRUPTION_ERRORS as error:
            # Corrupt, truncated, stale-schema or unreadable entry:
            # quarantine it and let the caller recompute.  Anything
            # outside _CORRUPTION_ERRORS is a real bug and propagates.
            self._quarantine(path, stage, digest, error)
            return None

    def _quarantine(self, path: Path, stage: str, digest: str,
                    error: BaseException) -> None:
        """Move a corrupt entry aside and log a typed corruption record."""
        assert self.cache_dir is not None
        self.stats.disk_errors += 1
        self.stats.quarantined += 1
        metrics.inc("store.quarantined")
        try:
            quarantine = self.cache_dir / QUARANTINE_DIR
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            # Quarantining is best-effort; at minimum get the bad
            # entry out of the lookup path.
            try:
                path.unlink()
            except OSError:
                pass
        self.corruptions.append(CacheCorruptionError(
            f"corrupt cache entry for stage {stage!r}: "
            f"{type(error).__name__}: {error}",
            stage=stage, digest=digest, path=str(path),
        ))

    def _sweep_orphans(self) -> None:
        """Remove temp files orphaned by killed writer processes.

        Atomic writes go through ``<entry>.tmp.<pid>``; a process that
        dies mid-write leaves the temp file behind.  Files belonging to
        the current process are left alone (a concurrent write may be
        in flight).
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        own_suffix = f".tmp.{os.getpid()}"
        for path in self.cache_dir.glob("*.tmp.*"):
            if path.name.endswith(own_suffix):
                continue
            try:
                path.unlink()
            except OSError:
                pass

    def _disk_store(self, stage: str, digest: str, artifact: Any) -> None:
        assert self.cache_dir is not None
        path = self._entry_path(stage, digest)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            maybe_inject("store.write", stage=stage, digest=digest)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            envelope = {
                "schema": SCHEMA_VERSION,
                "stage": stage,
                "digest": digest,
                "artifact": artifact,
            }
            with temp.open("wb") as handle:
                pickle.dump(envelope, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError, InjectedFault):
            # A read-only or full filesystem (or unpicklable artifact)
            # must not break experiments; the memory tier still holds
            # the artifact.  Unexpected errors propagate.
            self.stats.disk_errors += 1
            try:
                temp.unlink()
            except OSError:
                pass


# -- process-wide default store ----------------------------------------------

_DEFAULT_STORE: ArtifactStore | None = None


def default_store() -> ArtifactStore:
    """The process-wide store used when no store is passed explicitly.

    Memory-only unless the :data:`CACHE_DIR_ENV` environment variable
    names a cache directory (the CLI configures a disk-backed store
    explicitly via :func:`set_default_store`).
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore(
            cache_dir=os.environ.get(CACHE_DIR_ENV) or None
        )
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """Replace the process-wide store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous
